"""Process-sharded serving: multi-process front end over shared-memory rings.

The thread-based :class:`~repro.serving.scheduler.RequestScheduler`
scales until the GIL says stop — the NumPy kernels hold it for most of
a micro-cell run, so ``workers=4`` buys little over ``workers=1``.
:class:`ShardedScheduler` is the process-level answer: it spawns N
worker **processes**, each owning its own
:class:`~repro.serving.pool.ArenaPool` and
:class:`~repro.serving.scheduler.RequestScheduler` (every serving knob
— ``batch_size``, ``spill``, ``prefetch``, ``link`` — passes through),
behind the same ``submit() -> Future`` API, so ``run_load``, ``serve``
and ``bench-serve`` drive it unchanged.

Two properties make it more than ``multiprocessing.Pool``:

* **Sticky model → shard routing.** Models are assigned to shards by a
  rendezvous (highest-random-weight) hash of their canonical *graph
  signature*: stable across runs, minimally disturbed when the shard
  count changes, and deterministic — so every request for a model
  lands on the one shard whose arenas are already warm, and
  ``preload()`` never builds the same model twice.
* **Zero-copy tensor rings.** Feed and output tensors never pickle.
  Each shard owns two ``multiprocessing.shared_memory`` ring buffers
  (request and response) carved into fixed-size slots; the front end
  writes feed tensors into a request slot and sends only fixed-size
  ``(name, dtype, shape, offset)`` descriptors over the control pipe,
  the worker maps them back as NumPy views straight into the executor,
  and output tensors come back the same way. The pickled control
  message is the same size for a 1 KB and a 1 GB tensor.

Lifecycle is explicit and safe: ``SIGTERM``/``SIGINT`` in a worker
drains its in-flight requests before exit, ``close()`` is idempotent,
the parent always unlinks every shared-memory segment (with a
``weakref.finalize`` backstop), and a shard that dies — during preload
or mid-load — fails fast: its in-flight futures error with
:class:`~repro.exceptions.ServingError` instead of hanging, and other
shards keep serving.

The scheduler is also **self-healing** (``supervise=True``, default):

* a supervisor thread detects dead shards (process exit) and *wedged*
  ones (alive but no heartbeat for ``wedge_timeout_s``) and respawns
  them with jittered exponential backoff — same rings, fresh slot
  window, warm preload of the models currently routed there;
* K rapid failures in a row trip a crash-loop **circuit breaker**: the
  shard is marked permanently failed and removed from the rendezvous
  routing, so its models rehash onto the survivors (HRW makes that
  minimal-movement by construction) and service continues;
* requests carry **deadlines** (swept in flight by the supervisor,
  shed pre-compute in the worker) and are **retried** with reroute
  when the shard under them dies (``retries=N``, bounded, jittered,
  surfaced in ``RequestStats.attempts``), while per-shard in-flight
  caps (``max_inflight``) turn unbounded blocking into immediate typed
  :class:`~repro.exceptions.OverloadedError` rejections;
* every recovery action is counted — ``restarts``/``retries``/
  ``expired``/``shed`` in :class:`ShardStats` and the aggregate
  :class:`~repro.serving.scheduler.ServingStats` — and the whole story
  is provable on demand via ``repro.serving.faults.FaultPlan``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import os
import random
import shutil
import signal
import tempfile
import threading
import time
import weakref
from concurrent.futures import Future
from dataclasses import asdict, dataclass, replace
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ShardFailedError,
)
from repro.memsim import OffchipLink
from repro.serving.faults import (
    DelayResponse,
    DropResponse,
    FaultPlan,
    KillMidResponse,
    KillShard,
    WedgeShard,
)
from repro.serving.pool import ArenaPool, PoolStats
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    InferenceResult,
    RequestScheduler,
    RequestStats,
    ServingStats,
)

__all__ = [
    "ShardStats",
    "ShardedScheduler",
    "balanced_routing",
    "rendezvous_shard",
]

#: alignment of every tensor payload inside a ring slot (cache line)
_ALIGN = 64

_START_METHOD = "fork" if "fork" in get_all_start_methods() else "spawn"
_MP = get_context(_START_METHOD)


# ----------------------------------------------------------------------
# sticky routing: rendezvous hashing on the graph signature
# ----------------------------------------------------------------------
def _rendezvous_score(key: str, shard: int) -> int:
    digest = hashlib.blake2b(
        f"{key}|{shard}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_shard(key: str, shards: int) -> int:
    """Highest-random-weight shard for ``key`` (deterministic).

    Unlike ``hash(key) % shards`` this is stable across interpreter
    runs (no hash randomisation) and rebalances *minimally*: going from
    ``n`` to ``n + 1`` shards moves only the keys whose new shard wins
    the rendezvous — roughly ``1 / (n + 1)`` of them — and every moved
    key moves *to the new shard*, never between surviving ones.
    """
    if shards < 1:
        raise ServingError(f"shards must be >= 1, got {shards}")
    return max(range(shards), key=lambda i: _rendezvous_score(key, i))


def balanced_routing(
    keys: Mapping[str, str], shards: int | Sequence[int]
) -> dict[str, int]:
    """Sticky, balanced model→shard assignment for a whole registry.

    Pure rendezvous on a *small* model set can pile everything onto one
    shard by hash luck — which would quietly erase the sharding win.
    This keeps the rendezvous preference (each model goes to its
    highest-scoring shard) but restricts the choice to the currently
    least-loaded shards, so ``n`` models spread over ``min(n, shards)``
    shards. Models are placed in signature order, so the assignment is
    deterministic for a given (model set, shard count) — every restart
    routes the same model to the same warm shard.

    ``shards`` is a shard count *or* an explicit list of eligible shard
    ids: when the circuit breaker removes a failed shard, routing is
    recomputed over the survivors, and rendezvous scoring guarantees
    that models already on a survivor stay put — only the failed
    shard's models move.
    """
    if isinstance(shards, int):
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        ids = list(range(shards))
    else:
        ids = list(shards)
    if not ids:
        raise ServingError("routing needs at least one eligible shard")
    if len(set(ids)) != len(ids) or min(ids) < 0:
        raise ServingError(f"invalid shard id list {ids}")
    load = {i: 0 for i in ids}
    routing: dict[str, int] = {}
    for name in sorted(keys, key=lambda n: (keys[n], n)):
        floor = min(load.values())
        candidates = [i for i in ids if load[i] == floor]
        shard = max(
            candidates, key=lambda i: _rendezvous_score(keys[name], i)
        )
        routing[name] = shard
        load[shard] += 1
    return routing


# ----------------------------------------------------------------------
# shared-memory tensor rings
# ----------------------------------------------------------------------
def _attach_shm(name: str) -> SharedMemory:
    """Attach to an existing segment a worker does not own.

    Pre-3.13 ``SharedMemory`` registers the segment with the resource
    tracker on *attach*, not just create (bpo-39959). Under ``spawn``
    the child has its own tracker, which would warn "leaked
    shared_memory" at exit — worse, *unlink* the parent's live segment
    while cleaning up — so the child must unregister. Under ``fork``
    the tracker process is shared with the parent: the attach-side
    re-register is an idempotent set-add, and unregistering here would
    strip the parent's entry and break its own ``unlink``. Python 3.13
    grew ``track=False`` for exactly this dance.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        shm = SharedMemory(name=name)
        if _START_METHOD == "spawn":
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class _TensorRing:
    """A shared-memory segment carved into fixed-size tensor slots.

    ``write`` packs a dict of arrays into one slot and returns the
    fixed-size descriptors ``(name, dtype, shape, offset)`` that cross
    the control pipe; ``read`` maps descriptors back to zero-copy NumPy
    views over the segment. Slot bookkeeping (who may write which slot)
    lives with the writing side — :class:`_SlotPool` — not here.
    """

    def __init__(
        self, slot_bytes: int, slots: int, *, name: str | None = None
    ) -> None:
        self.slot_bytes = slot_bytes
        self.slots = slots
        if name is None:
            self.shm = SharedMemory(create=True, size=slot_bytes * slots)
            self.owner = True
        else:
            self.shm = _attach_shm(name)
            self.owner = False

    @property
    def name(self) -> str:
        return self.shm.name

    def write(
        self, slot: int, arrays: Mapping[str, np.ndarray]
    ) -> tuple[tuple[str, str, tuple[int, ...], int], ...]:
        """Pack ``arrays`` into ``slot``; returns pipe descriptors."""
        base = slot * self.slot_bytes
        cursor = 0
        descs = []
        for name, array in arrays.items():
            a = np.ascontiguousarray(array)
            cursor = _align(cursor)
            if cursor + a.nbytes > self.slot_bytes:
                raise ServingError(
                    f"tensor payload exceeds the ring slot: {name!r} at "
                    f"offset {cursor} + {a.nbytes} bytes > slot "
                    f"{self.slot_bytes} bytes"
                )
            if a.size:
                view = np.frombuffer(
                    self.shm.buf,
                    dtype=a.dtype,
                    count=a.size,
                    offset=base + cursor,
                )
                view[...] = a.ravel()
            descs.append((name, a.dtype.str, tuple(a.shape), base + cursor))
            cursor += a.nbytes
        return tuple(descs)

    def read(
        self, descs: Iterable[tuple[str, str, tuple[int, ...], int]]
    ) -> dict[str, np.ndarray]:
        """Descriptors back to zero-copy views into the segment."""
        out: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in descs:
            dt = np.dtype(dtype)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            out[name] = np.frombuffer(
                self.shm.buf, dtype=dt, count=count, offset=offset
            ).reshape(shape)
        return out

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:
            # a NumPy view over the segment is still alive somewhere;
            # the mapping is released when the last view dies (or the
            # process exits) — unlink below does not need it closed
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass


class _SlotPool:
    """Free-slot bookkeeping for one ring (the writing side owns it)."""

    def __init__(self, slots: int) -> None:
        self.slots = slots
        self._free = set(range(slots))
        self._cond = threading.Condition()
        self._dead = False
        self.peak = 0

    def acquire(self, timeout: float | None = 30.0) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._free:
                if self._dead:
                    raise ShardFailedError("ring is closed (the shard died)")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if (
                    remaining is not None and remaining <= 0.0
                ) or not self._cond.wait(timeout=remaining):
                    raise OverloadedError(
                        f"timed out after {timeout}s waiting for a free "
                        f"ring slot ({self.slots} slots all in flight)"
                    )
            if self._dead:
                raise ShardFailedError("ring is closed (the shard died)")
            slot = self._free.pop()
            self.peak = max(self.peak, self.slots - len(self._free))
            return slot

    def release(self, slot: int) -> None:
        with self._cond:
            self._free.add(slot)
            self._cond.notify()

    def in_use(self) -> int:
        with self._cond:
            return self.slots - len(self._free)

    def kill(self) -> None:
        """Wake every waiter with an error (the shard died)."""
        with self._cond:
            self._dead = True
            self._cond.notify_all()


def _slot_bytes_for(models: Iterable) -> int:
    """One slot must hold any request or response payload of ``models``:
    the sum of every node's (aligned) float64 tensor bytes bounds both
    the feeds and any requested output subset."""
    worst = 4096
    for model in models:
        total = 0
        for node in model.graph:
            elems = int(np.prod(node.output.shape, dtype=np.int64))
            total += _align(max(1, elems) * 8)
        worst = max(worst, total)
    return worst


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardConfig:
    """Everything a worker process needs to build its serving stack.

    Only primitives, paths and small frozen dataclasses — picklable
    under ``spawn`` as well as ``fork``. Models arrive as artifact
    *paths* (re-opened and signature-verified in the child), never as
    pickled graphs.
    """

    shard: int
    models: tuple[tuple[str, str], ...]  # (serving name, artifact path)
    workers: int
    max_batch: int
    batch_size: int
    budget_bytes: int | None
    seed: int
    scrub: str
    spill: str
    spill_policy: str
    tile_bytes: int | None
    prefetch: bool
    link: OffchipLink | None
    preload: bool
    req_ring: tuple[str, int, int]  # (shm name, slot_bytes, slots)
    resp_ring: tuple[str, int, int]
    #: models to warm on preload — every shard *loads* all artifacts
    #: (so rerouted models can be served after a peer fails) but warms
    #: only the ones currently routed to it
    preload_models: tuple[str, ...] = ()
    #: which life of this shard this is (0 = first); fault plans use it
    #: to fire only in chosen incarnations
    incarnation: int = 0
    #: seconds between ("hb",) heartbeats to the parent
    heartbeat_s: float = 0.25
    #: deterministic fault schedule (test/chaos only)
    faults: FaultPlan | None = None


def _shard_worker_main(cfg: _ShardConfig, conn) -> None:  # pragma: no cover
    # covered by the cross-process tests; coverage can't see children
    try:
        _ShardWorker(cfg, conn).run()
    except BaseException as exc:
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


class _ShardWorker:
    """The event loop that runs inside one shard process."""

    def __init__(self, cfg: _ShardConfig, conn) -> None:
        self.cfg = cfg
        self.conn = conn
        self._send_lock = threading.Lock()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._draining = False
        self._last_hb = time.monotonic()
        self.injector = (
            cfg.faults.injector(cfg.shard, cfg.incarnation)
            if cfg.faults is not None
            else None
        )

        registry = ModelRegistry()
        for name, path in cfg.models:
            registry.load(path, name)
        self.pool = ArenaPool(
            registry,
            cfg.budget_bytes,
            seed=cfg.seed,
            scrub=cfg.scrub,
            reuse=True,
            batch_size=cfg.batch_size,
            spill=cfg.spill,
            spill_policy=cfg.spill_policy,
            tile_bytes=cfg.tile_bytes,
            prefetch=cfg.prefetch,
            link=cfg.link,
        )
        self.scheduler = RequestScheduler(
            registry,
            self.pool,
            workers=cfg.workers,
            max_batch=cfg.max_batch,
        )
        if self.injector is not None:
            self.scheduler.run_hook = self._run_hook
        self.scheduler.start()
        preloaded = (
            self.pool.preload(cfg.preload_models) if cfg.preload else []
        )

        req_name, req_slot_bytes, req_slots = cfg.req_ring
        resp_name, resp_slot_bytes, resp_slots = cfg.resp_ring
        self.req_ring = _TensorRing(req_slot_bytes, req_slots, name=req_name)
        self.resp_ring = _TensorRing(
            resp_slot_bytes, resp_slots, name=resp_name
        )
        self.resp_slots = _SlotPool(resp_slots)

        signal.signal(signal.SIGTERM, self._signal)
        signal.signal(signal.SIGINT, self._signal)
        self._send(("ready", os.getpid(), tuple(preloaded)))

    # ------------------------------------------------------------------
    def _signal(self, signum, frame) -> None:
        # drain: finish everything already accepted, then exit; the
        # main loop keeps answering free_resp so responses can retire
        self._draining = True

    def _run_hook(self) -> None:
        """Scheduler dispatch hook: injects pending engine stalls."""
        if self.injector is None:
            return
        stall = self.injector.take_stall()
        if stall is not None:
            time.sleep(stall)

    def _send(self, msg: tuple) -> None:
        with self._send_lock:
            self.conn.send(msg)

    def _send_error(self, req_id: int, exc: BaseException, req_slot: int) -> None:
        try:
            self._send(("err", req_id, exc, req_slot))
        except Exception:
            # unpicklable exception: degrade to a string-carrying one
            try:
                self._send(
                    (
                        "err",
                        req_id,
                        ServingError(f"{type(exc).__name__}: {exc}"),
                        req_slot,
                    )
                )
            except Exception:  # parent is gone; nothing left to tell
                pass

    # ------------------------------------------------------------------
    def _on_request(
        self, req_id: int, model, outputs, descs, req_slot, deadline_s=None
    ) -> None:
        if self.injector is not None:
            # fault hooks fire before the request is accepted: a kill
            # here is the hard-crash case the supervisor must survive
            for fault in self.injector.on_request(req_id):
                if isinstance(fault, WedgeShard):
                    time.sleep(fault.stall_s)
                elif isinstance(fault, KillShard):
                    os.kill(os.getpid(), signal.SIGKILL)
        if self._draining:
            self._send_error(
                req_id, ShardFailedError("shard is draining"), req_slot
            )
            return
        try:
            feeds = self.req_ring.read(descs)
            future = self.scheduler.submit(
                model, feeds, outputs, deadline_s=deadline_s
            )
        except Exception as exc:
            self._send_error(req_id, exc, req_slot)
            return
        with self._pending_lock:
            self._pending += 1
        future.add_done_callback(
            lambda fut: self._on_done(req_id, req_slot, fut)
        )

    def _on_done(self, req_id: int, req_slot: int, future: Future) -> None:
        """Runs on a scheduler worker thread when a request resolves."""
        try:
            exc = future.exception()
            if exc is not None:
                self._send_error(req_id, exc, req_slot)
                return
            result: InferenceResult = future.result()
            try:
                resp_slot = self.resp_slots.acquire(timeout=60.0)
            except ServingError as slot_exc:
                self._send_error(req_id, slot_exc, req_slot)
                return
            try:
                descs = self.resp_ring.write(resp_slot, result.outputs)
            except Exception as write_exc:
                self.resp_slots.release(resp_slot)
                self._send_error(req_id, write_exc, req_slot)
                return
            if self.injector is not None:
                for fault in self.injector.response_faults(req_id):
                    if isinstance(fault, KillMidResponse):
                        # the partial-response crash window: payload
                        # written, parent never notified
                        os.kill(os.getpid(), signal.SIGKILL)
                    elif isinstance(fault, DelayResponse):
                        time.sleep(fault.delay_s)
                    elif isinstance(fault, DropResponse):
                        self.resp_slots.release(resp_slot)
                        return
            self._send(
                ("res", req_id, result.stats, descs, req_slot, resp_slot)
            )
        finally:
            with self._pending_lock:
                self._pending -= 1

    def _stats_doc(self) -> dict[str, Any]:
        stats = self.scheduler.stats()
        return {
            "requests": stats.requests,
            "errors": stats.errors,
            "batches": stats.batches,
            "expired": stats.expired,
            "spill_bytes": stats.spill_bytes,
            "spill_stall_s": stats.spill_stall_s,
            "spill_hidden_s": stats.spill_hidden_s,
            "queue_depth": self.scheduler.queue_depth,
            "resp_ring_peak": self.resp_slots.peak,
            "pool": asdict(stats.pool) if stats.pool is not None else None,
        }

    # ------------------------------------------------------------------
    def run(self) -> None:
        shutdown = False
        while True:
            if (shutdown or self._draining) and self._pending_count() == 0:
                break
            now = time.monotonic()
            if now - self._last_hb >= self.cfg.heartbeat_s:
                # liveness signal: a wedged event loop stops sending
                # these, which is exactly what the parent's wedge
                # detector keys on
                self._last_hb = now
                try:
                    self._send(("hb",))
                except Exception:
                    pass
            if not self.conn.poll(0.05):
                continue
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                break  # parent is gone: drain and leave
            kind = msg[0]
            if kind == "req":
                _, req_id, model, outputs, descs, req_slot, deadline_s = msg
                if shutdown:
                    self._send_error(
                        req_id, ShardFailedError("shard is draining"), req_slot
                    )
                else:
                    self._on_request(
                        req_id, model, outputs, descs, req_slot, deadline_s
                    )
            elif kind == "free_resp":
                self.resp_slots.release(msg[1])
            elif kind == "stats":
                self._send(("stats_res", msg[1], self._stats_doc()))
            elif kind == "shutdown":
                shutdown = True
        # answer whatever is still sitting unread in the pipe: requests
        # that lost the race against the drain decision get a clean
        # error here instead of silently dying with the EOF
        while True:
            try:
                if not self.conn.poll(0):
                    break
                msg = self.conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "req":
                self._send_error(
                    msg[1], ShardFailedError("shard is draining"), msg[5]
                )
            elif msg[0] == "free_resp":
                self.resp_slots.release(msg[1])
        self.scheduler.shutdown(wait=True)
        self.pool.close()
        self.req_ring.close()
        self.resp_ring.close()
        try:
            self._send(("bye",))
        except Exception:
            pass
        self.conn.close()

    def _pending_count(self) -> int:
        with self._pending_lock:
            return self._pending


# ----------------------------------------------------------------------
# front-end side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardStats:
    """One shard's slice of the serving run (see
    :meth:`ShardedScheduler.shard_stats`)."""

    shard: int
    pid: int
    alive: bool
    #: models the rendezvous hash routes to this shard
    models: tuple[str, ...]
    #: requests completed through this shard (front-end count)
    requests: int
    errors: int
    #: most requests ever in flight to this shard at once
    inflight_peak: int
    #: child-side scheduler queue depth at snapshot time
    queue_depth: int
    #: executor runs inside the child (requests / batches = stacking)
    batches: int
    spill_bytes: int
    spill_stall_s: float
    spill_hidden_s: float
    #: request-ring occupancy: slots, high-water mark
    req_slots: int
    req_ring_peak: int
    resp_slots: int
    resp_ring_peak: int
    pool: PoolStats | None
    #: times the supervisor respawned this shard's process
    restarts: int = 0
    #: retry dispatches routed to this shard after a peer (or an
    #: earlier life of this shard) failed with the request in flight
    retries: int = 0
    #: requests that missed their deadline on this shard (swept in
    #: flight by the parent, or shed pre-compute by the child)
    expired: int = 0
    #: requests rejected immediately by overload control
    shed: int = 0
    #: circuit breaker open: crash-looped past the strike limit and
    #: permanently removed from routing (its models rehashed away)
    failed: bool = False
    #: which life of the process the stats describe (0 = never died)
    incarnation: int = 0

    def to_doc(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["pool"] = asdict(self.pool) if self.pool is not None else None
        doc["models"] = list(self.models)
        return doc


@dataclass
class _PendingRequest:
    """One client request across all its submission attempts."""

    model: str
    feeds: Mapping[str, np.ndarray]
    outputs: list[str] | None
    future: Future
    #: ``time.perf_counter()`` at first submit — the latency base
    enqueued_at: float
    #: absolute ``time.monotonic()`` deadline, or ``None``
    deadline: float | None
    retries_left: int
    attempts: int = 0

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


@dataclass
class _Inflight:
    """One attempt of a pending request, live on a specific shard."""

    pending: _PendingRequest
    shard: int
    req_slot: int


class _ShardHandle:
    """Parent-side state for one worker process."""

    def __init__(
        self,
        shard: int,
        models: tuple[str, ...],
        req_ring: _TensorRing,
        resp_ring: _TensorRing,
    ) -> None:
        self.shard = shard
        self.models = models
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.req_slots = _SlotPool(req_ring.slots)
        self.process = None
        self.conn = None
        self.pid = -1
        self.alive = False
        self.byed = False
        self.send_lock = threading.Lock()
        self.receiver: threading.Thread | None = None
        # front-end accounting (guarded by the scheduler's lock)
        self.completed = 0
        self.errors = 0
        self.inflight = 0
        self.inflight_peak = 0
        #: last child stats doc (refreshed by stats(); kept after death)
        self.child_doc: dict[str, Any] = {}
        # --- supervision state (touched by the supervisor thread) ---
        #: which life of the process is (or was) running
        self.incarnation = 0
        #: monotonic time of the last message received from the child
        self.last_hb = 0.0
        #: monotonic time the current incarnation reported ready
        self.last_ready = 0.0
        #: when the next respawn attempt is due (None = not scheduled)
        self.restart_due: float | None = None
        #: consecutive rapid failures (crash-loop strikes)
        self.strikes = 0
        #: completed respawns
        self.restarts = 0
        #: circuit breaker open — permanently out of routing
        self.failed = False
        # recovery accounting (guarded by the scheduler's lock)
        self.retries = 0
        self.expired = 0
        self.shed = 0

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)


def _unlink_segments(names: list[str]) -> None:
    """finalizer backstop: never leak a segment, even without close()."""
    for name in names:
        try:
            shm = SharedMemory(name=name)
        except FileNotFoundError:
            continue
        shm.close()
        shm.unlink()


class ShardedScheduler:
    """Process-sharded serving front end with the thread scheduler's API.

    >>> with ShardedScheduler(registry, shards=4, workers=2) as server:
    ...     result = server.submit("rw-micro-a", feeds).result()

    Parameters mirror :class:`~repro.serving.scheduler.RequestScheduler`
    plus the :class:`~repro.serving.pool.ArenaPool` knobs, which pass
    through to every shard's private pool (``budget`` bounds each shard
    separately — a shard *is* a device). ``preload=True`` warms each
    shard's arenas for exactly the models routed to it, so preloads are
    never duplicated across shards.

    ``ring_slots`` bounds the per-shard in-flight window: the request
    ring has that many tensor slots, and ``submit`` exerts backpressure
    (blocks up to ``submit_timeout``) when all are in flight.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        shards: int,
        workers: int = 4,
        max_batch: int = 1,
        batch_size: int | None = None,
        budget=None,
        seed: int = 0,
        scrub: str = "never",
        reuse: bool = True,
        spill: str = "never",
        spill_policy: str = "belady",
        tile_bytes: int | None = None,
        prefetch: bool = True,
        link: OffchipLink | None = None,
        preload: bool = False,
        ring_slots: int = 16,
        submit_timeout: float = 30.0,
        start_timeout: float = 120.0,
        deadline_s: float | None = None,
        retries: int = 0,
        max_inflight: int | None = None,
        supervise: bool = True,
        heartbeat_s: float = 0.25,
        wedge_timeout_s: float | None = 10.0,
        restart_backoff_s: float = 0.25,
        restart_backoff_max_s: float = 4.0,
        crashloop_window_s: float = 5.0,
        crashloop_threshold: int = 3,
        retry_backoff_s: float = 0.05,
        faults: FaultPlan | None = None,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        if deadline_s is not None and deadline_s <= 0:
            raise ServingError(f"deadline_s must be > 0, got {deadline_s}")
        if retries < 0:
            raise ServingError(f"retries must be >= 0, got {retries}")
        if max_inflight is not None and max_inflight < 1:
            raise ServingError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if heartbeat_s <= 0:
            raise ServingError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if wedge_timeout_s is not None and wedge_timeout_s <= heartbeat_s:
            raise ServingError(
                "wedge_timeout_s must exceed heartbeat_s "
                f"({wedge_timeout_s} <= {heartbeat_s})"
            )
        if crashloop_threshold < 1:
            raise ServingError(
                f"crashloop_threshold must be >= 1, got {crashloop_threshold}"
            )
        if not reuse:
            raise ServingError(
                "sharded serving requires arena reuse: each shard keeps "
                "its routed models' arenas warm (reuse=False is the "
                "single-process baseline; run it without shards)"
            )
        if not registry.names():
            raise ServingError("registry has no models to shard")
        if ring_slots < 1:
            raise ServingError(f"ring_slots must be >= 1, got {ring_slots}")
        self.registry = registry
        self.shards = shards
        self.workers = workers
        self.max_batch = max_batch
        self.batch_size = max_batch if batch_size is None else batch_size
        self.budget_bytes = (
            budget if budget is None or isinstance(budget, int)
            else budget.sram_bytes
        )
        self.seed = seed
        self.scrub = scrub
        self.spill = spill
        self.spill_policy = spill_policy
        self.tile_bytes = tile_bytes
        self.prefetch = prefetch
        self.link = link
        self.preload = preload
        self.ring_slots = ring_slots
        self.submit_timeout = submit_timeout
        self.start_timeout = start_timeout
        self.deadline_s = deadline_s
        self.retries = retries
        self.max_inflight = max_inflight
        self.supervise = supervise
        self.heartbeat_s = heartbeat_s
        self.wedge_timeout_s = wedge_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.crashloop_window_s = crashloop_window_s
        self.crashloop_threshold = crashloop_threshold
        self.retry_backoff_s = retry_backoff_s
        self.faults = faults

        #: sticky routing table: model name -> shard id, by rendezvous
        #: hash of the model's canonical graph signature under a
        #: least-loaded balance constraint (see :func:`balanced_routing`)
        self.routing = balanced_routing(
            {name: registry.get(name).signature for name in registry.names()},
            shards,
        )
        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._inflight: dict[int, _Inflight] = {}
        self._latencies: list[float] = []
        self._completed = 0
        self._errors = 0
        self._restarts = 0
        self._retries = 0
        self._expired = 0
        self._shed = 0
        self._breaker_trips = 0
        self._stats_waiters: dict[int, tuple[threading.Event, list]] = {}
        self._stats_tokens = itertools.count()
        self._handles: list[_ShardHandle] = []
        self._spool_dir: Path | None = None
        self._started = False
        self._closed = False
        self._finalizer: weakref.finalize | None = None
        # retry machinery: a due-time heap drained by one daemon thread;
        # the condition shares self._lock so heap and counters stay
        # consistent under one mutex
        self._retry_cond = threading.Condition(self._lock)
        self._retry_heap: list[tuple[float, int, _PendingRequest, Exception]] = []
        self._retry_seq = itertools.count()
        self._rng = random.Random(seed ^ 0x5EED)
        self._supervisor: threading.Thread | None = None
        self._retryer: threading.Thread | None = None
        self._paths: dict[str, str] = {}
        self._slot_bytes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spool_models(self) -> dict[str, str]:
        """Artifact path per model, re-openable from a child process.

        Models the registry loaded from disk are re-opened by their
        original path; in-memory registrations are spooled once to a
        private directory the scheduler owns (and removes on close).
        """
        paths: dict[str, str] = {}
        for name in self.registry.names():
            path = self.registry.path_of(name)
            if path is None:
                if self._spool_dir is None:
                    self._spool_dir = Path(
                        tempfile.mkdtemp(prefix="repro-shards-")
                    )
                path = self._spool_dir / f"model-{len(paths)}.json"
                self.registry.get(name).save(path)
            paths[name] = str(path)
        return paths

    def start(self) -> "ShardedScheduler":
        if self._started:
            return self
        if self._closed:
            raise ServingError("sharded scheduler is closed")
        self._paths = self._spool_models()
        # one slot must fit ANY model's payload: after a breaker trip a
        # surviving shard can inherit any model, so rings are sized to
        # the registry-wide worst case up front
        self._slot_bytes = _slot_bytes_for(
            self.registry.get(name) for name in self.registry.names()
        )
        by_shard: dict[int, list[str]] = {i: [] for i in range(self.shards)}
        for name, shard in self.routing.items():
            by_shard[shard].append(name)
        segment_names: list[str] = []
        try:
            for shard in range(self.shards):
                models = tuple(sorted(by_shard[shard]))
                req_ring = _TensorRing(self._slot_bytes, self.ring_slots)
                segment_names.append(req_ring.name)
                resp_ring = _TensorRing(self._slot_bytes, self.ring_slots)
                segment_names.append(resp_ring.name)
                handle = _ShardHandle(shard, models, req_ring, resp_ring)
                # registered before spawn so a failed start tears the
                # rings down (and unlinks them) with everything else
                self._handles.append(handle)
                self._spawn_child(handle)
            self._await_ready()
        except BaseException:
            self._closed = True
            self._teardown(force=True)
            raise
        self._finalizer = weakref.finalize(
            self, _unlink_segments, segment_names
        )
        for handle in self._handles:
            self._start_receiver(handle)
        self._started = True
        self._supervisor = threading.Thread(
            target=self._supervisor_loop, name="shard-supervisor", daemon=True
        )
        self._supervisor.start()
        self._retryer = threading.Thread(
            target=self._retry_loop, name="shard-retry", daemon=True
        )
        self._retryer.start()
        return self

    def _make_cfg(self, handle: _ShardHandle) -> _ShardConfig:
        """Worker config for (this incarnation of) one shard: every
        artifact is loadable, only the currently-routed models warm."""
        with self._lock:
            preload_models = tuple(
                sorted(
                    name
                    for name, shard in self.routing.items()
                    if shard == handle.shard
                )
            )
        return _ShardConfig(
            shard=handle.shard,
            models=tuple(sorted(self._paths.items())),
            workers=self.workers,
            max_batch=self.max_batch,
            batch_size=self.batch_size,
            budget_bytes=self.budget_bytes,
            seed=self.seed,
            scrub=self.scrub,
            spill=self.spill,
            spill_policy=self.spill_policy,
            tile_bytes=self.tile_bytes,
            prefetch=self.prefetch,
            link=self.link,
            preload=self.preload,
            req_ring=(handle.req_ring.name, self._slot_bytes, self.ring_slots),
            resp_ring=(
                handle.resp_ring.name,
                self._slot_bytes,
                self.ring_slots,
            ),
            preload_models=preload_models,
            incarnation=handle.incarnation,
            heartbeat_s=self.heartbeat_s,
            faults=self.faults,
        )

    def _spawn_child(self, handle: _ShardHandle) -> None:
        """Fork/spawn one worker process and wire its pipe into
        ``handle`` (used by first start and by respawn alike)."""
        parent_conn, child_conn = _MP.Pipe()
        cfg = self._make_cfg(handle)
        process = _MP.Process(
            target=_shard_worker_main,
            args=(cfg, child_conn),
            name=f"serve-shard-{handle.shard}-i{handle.incarnation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with handle.send_lock:
            old_conn = handle.conn
            handle.conn = parent_conn
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:
                pass
        handle.process = process
        handle.byed = False

    def _start_receiver(self, handle: _ShardHandle) -> None:
        handle.receiver = threading.Thread(
            target=self._receiver_loop,
            args=(handle, handle.conn),
            name=f"shard-recv-{handle.shard}-i{handle.incarnation}",
            daemon=True,
        )
        handle.receiver.start()

    def _await_ready(self) -> None:
        """Block until every shard reports ready — or explain why not.

        A worker that dies during startup (artifact load failure, OOM
        during preload, import crash) must surface as a clear error
        here, never as futures that hang later.
        """
        deadline = time.monotonic() + self.start_timeout
        for handle in self._handles:
            error = self._wait_ready(handle, deadline)
            if error is not None:
                raise ServingError(error)

    def _wait_ready(self, handle: _ShardHandle, deadline: float) -> str | None:
        """Wait for one shard's ready message; ``None`` on success, an
        error description otherwise (initial start raises it, respawn
        treats it as another crash-loop strike)."""
        while True:
            if self._closed:
                return f"shard {handle.shard} start aborted by shutdown"
            if handle.conn.poll(0.1):
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    msg = None
                if msg is not None and msg[0] == "ready":
                    handle.pid = msg[1]
                    now = time.monotonic()
                    handle.last_hb = now
                    handle.last_ready = now
                    handle.alive = True
                    return None
                if msg is not None and msg[0] == "hb":
                    continue
                detail = (
                    f": {msg[1]}" if msg is not None and msg[0] == "fatal"
                    else ""
                )
                handle.process.join(timeout=5.0)
                return (
                    f"shard {handle.shard} died during startup"
                    f"{detail} (exit code {handle.process.exitcode}, "
                    f"models {list(handle.models)})"
                )
            if not handle.process.is_alive():
                return (
                    f"shard {handle.shard} died during startup "
                    f"(exit code {handle.process.exitcode}, models "
                    f"{list(handle.models)})"
                )
            if time.monotonic() > deadline:
                return (
                    f"shard {handle.shard} did not become ready "
                    f"within {self.start_timeout}s"
                )

    def shutdown(self, wait: bool = True) -> None:
        """Drain every shard, stop the workers, unlink all segments.

        Idempotent; also reachable as :meth:`close` and ``__exit__``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._started = False
            # wake the retry thread so it can fail its pending requests
            self._retry_cond.notify_all()
        for handle in self._handles:
            if handle.alive:
                try:
                    handle.send(("shutdown",))
                except (OSError, ValueError):
                    pass
        if wait:
            deadline = time.monotonic() + 30.0
            for handle in self._handles:
                if handle.process is not None:
                    handle.process.join(
                        timeout=max(0.1, deadline - time.monotonic())
                    )
        self._teardown(force=True)

    close = shutdown

    def _teardown(self, force: bool) -> None:
        current = threading.current_thread()
        for thread in (self._supervisor, self._retryer):
            if thread is not None and thread is not current:
                thread.join(timeout=10.0)
        self._supervisor = None
        self._retryer = None
        for handle in self._handles:
            if handle.process is not None and handle.process.is_alive():
                if force:
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            handle.alive = False
            handle.req_slots.kill()
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            if (
                handle.receiver is not None
                and handle.receiver is not threading.current_thread()
            ):
                handle.receiver.join(timeout=5.0)
            handle.req_ring.close()
            handle.resp_ring.close()
            handle.req_ring.unlink()
            handle.resp_ring.unlink()
        self._fail_inflight(
            None, ServingError("sharded scheduler shut down")
        )
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None

    def __enter__(self) -> "ShardedScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def route(self, model: str) -> int:
        """The shard ``model`` is sticky-routed to."""
        shard = self.routing.get(model)
        if shard is None:
            self.registry.get(model)  # raises the canonical unknown-model
            raise ServingError(f"model {model!r} has no route")
        return shard

    def submit(
        self,
        model: str,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        *,
        deadline_s: float | None = None,
        retries: int | None = None,
    ) -> Future:
        """Enqueue one inference on the model's sticky shard; resolves
        to an :class:`~repro.serving.scheduler.InferenceResult`. The
        feed tensors are written into the shard's shared-memory request
        ring — only descriptors cross the pipe.

        ``deadline_s`` (default: the scheduler's) bounds the request
        end to end: past it, the future fails with
        :class:`~repro.exceptions.DeadlineExceededError` — whether the
        request is queued in the child (shed before compute) or in
        flight on a dead shard (swept by the supervisor). ``retries``
        (default: the scheduler's) resubmits the request — rerouted
        through the *current* routing table — when a shard dies or
        drains with it in flight; the attempt count is surfaced in
        ``result.stats.attempts``. With ``retries == 0`` a dead shard
        raises :class:`~repro.exceptions.ShardFailedError`
        synchronously, as before; an overloaded shard always raises
        :class:`~repro.exceptions.OverloadedError` synchronously —
        flow control must push back, not buffer."""
        self.route(model)  # fail fast on unknown models
        if deadline_s is None:
            deadline_s = self.deadline_s
        if retries is None:
            retries = self.retries
        pending = _PendingRequest(
            model=model,
            feeds=feeds,
            outputs=list(outputs) if outputs is not None else None,
            future=Future(),
            enqueued_at=time.perf_counter(),
            deadline=(
                None if deadline_s is None else time.monotonic() + deadline_s
            ),
            retries_left=retries,
        )
        try:
            self._send_attempt(pending)
        except ShardFailedError as exc:
            # dying shard on the FIRST attempt: with retries budgeted,
            # absorb it — schedule the retry and hand back the future
            if pending.retries_left > 0 and not pending.expired():
                self._schedule_retry(pending, exc)
            else:
                raise
        return pending.future

    def _send_attempt(self, pending: _PendingRequest, retry: bool = False) -> None:
        """One submission attempt of ``pending`` to its current shard.

        Raises :class:`~repro.exceptions.ShardFailedError` (retryable),
        :class:`~repro.exceptions.OverloadedError` (shed), or plain
        :class:`~repro.exceptions.ServingError`. Every failure path
        releases anything it acquired — most importantly the ring slot,
        which used to leak if the pipe send raised."""
        pending.attempts += 1
        if not self._started or self._closed:
            raise ServingError(
                "sharded scheduler is not running (call start())"
            )
        shard = self.route(pending.model)
        handle = self._handles[shard]
        if handle.failed:
            raise ShardFailedError(
                f"shard {shard} is dead (circuit breaker open); requests "
                f"for {pending.model!r} cannot be served"
            )
        if not handle.alive:
            raise ShardFailedError(
                f"shard {shard} is dead; requests for {pending.model!r} "
                "cannot be served"
            )
        if self.max_inflight is not None:
            with self._lock:
                if handle.inflight >= self.max_inflight:
                    self._shed += 1
                    handle.shed += 1
                    raise OverloadedError(
                        f"shard {shard} is at its in-flight cap "
                        f"({self.max_inflight}); request for "
                        f"{pending.model!r} shed"
                    )
        if retry:
            with self._lock:
                self._retries += 1
                handle.retries += 1
        try:
            req_slot = handle.req_slots.acquire(timeout=self.submit_timeout)
        except OverloadedError:
            with self._lock:
                self._shed += 1
                handle.shed += 1
            raise
        req_id = next(self._req_ids)
        try:
            descs = handle.req_ring.write(req_slot, pending.feeds)
            deadline_rem = (
                None
                if pending.deadline is None
                else pending.deadline - time.monotonic()
            )
            with self._lock:
                self._inflight[req_id] = _Inflight(pending, shard, req_slot)
                handle.inflight += 1
                handle.inflight_peak = max(
                    handle.inflight_peak, handle.inflight
                )
            try:
                handle.send(
                    (
                        "req",
                        req_id,
                        pending.model,
                        pending.outputs,
                        descs,
                        req_slot,
                        deadline_rem,
                    )
                )
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise ShardFailedError(
                    f"shard {shard} died mid-send: {exc}"
                ) from exc
        except BaseException:
            with self._lock:
                if self._inflight.pop(req_id, None) is not None:
                    handle.inflight -= 1
            handle.req_slots.release(req_slot)
            raise

    # ------------------------------------------------------------------
    # retries
    # ------------------------------------------------------------------
    def _retry_delay(self, attempts: int) -> float:
        """Jittered exponential backoff for the Nth retry."""
        base = self.retry_backoff_s * (2 ** max(0, attempts - 1))
        return min(base, 2.0) * (0.5 + self._rng.random())

    def _schedule_retry(
        self, pending: _PendingRequest, exc: Exception
    ) -> None:
        """Queue ``pending`` for resubmission after a jittered delay.

        Caller must NOT hold ``self._lock``. Consumes one retry."""
        resolve_now = False
        with self._retry_cond:
            if self._closed:
                resolve_now = True
            else:
                pending.retries_left -= 1
                due = time.monotonic() + self._retry_delay(pending.attempts)
                heapq.heappush(
                    self._retry_heap,
                    (due, next(self._retry_seq), pending, exc),
                )
                self._retry_cond.notify_all()
        if resolve_now:
            self._resolve_error(pending, exc)

    def _retry_loop(self) -> None:
        """Drain the retry heap: redispatch each due request through
        the *current* routing (reroute is free: the breaker rewrites
        ``self.routing`` and the next attempt follows it)."""
        while True:
            with self._retry_cond:
                while True:
                    if self._closed:
                        drained = [
                            (p, e) for (_, _, p, e) in self._retry_heap
                        ]
                        self._retry_heap.clear()
                        break
                    now = time.monotonic()
                    if self._retry_heap and self._retry_heap[0][0] <= now:
                        _, _, pending, exc = heapq.heappop(self._retry_heap)
                        drained = None
                        break
                    timeout = (
                        self._retry_heap[0][0] - now
                        if self._retry_heap
                        else None
                    )
                    self._retry_cond.wait(timeout=timeout)
            if drained is not None:
                for pending, exc in drained:
                    self._resolve_error(
                        pending,
                        ServingError("sharded scheduler shut down"),
                    )
                return
            if pending.future.done():
                continue  # swept by the deadline sweeper meanwhile
            if pending.expired():
                self._resolve_error(
                    pending,
                    DeadlineExceededError(
                        f"request for {pending.model!r} missed its deadline "
                        f"after {pending.attempts} attempt(s)"
                    ),
                )
                continue
            try:
                self._send_attempt(pending, retry=True)
            except (ShardFailedError, OverloadedError) as exc2:
                if pending.retries_left > 0 and not pending.expired():
                    self._schedule_retry(pending, exc2)
                else:
                    self._resolve_error(pending, exc2)
            except Exception as exc2:
                self._resolve_error(pending, exc2)

    # ------------------------------------------------------------------
    # resolution (exactly-once per pending request)
    # ------------------------------------------------------------------
    def _resolve_result(
        self,
        pending: _PendingRequest,
        handle: _ShardHandle,
        outputs: dict[str, np.ndarray],
        stats: RequestStats,
    ) -> None:
        if pending.future.done():
            return
        if not pending.future.set_running_or_notify_cancel():
            return
        if pending.attempts > 1:
            stats = replace(stats, attempts=pending.attempts)
        latency = time.perf_counter() - pending.enqueued_at
        with self._lock:
            self._completed += 1
            handle.completed += 1
            self._latencies.append(latency)
        pending.future.set_result(
            InferenceResult(outputs=outputs, stats=stats)
        )

    def _resolve_error(
        self,
        pending: _PendingRequest,
        exc: Exception,
        shard: int | None = None,
    ) -> None:
        if pending.future.done():
            return
        if not pending.future.set_running_or_notify_cancel():
            return
        latency = time.perf_counter() - pending.enqueued_at
        with self._lock:
            self._errors += 1
            if isinstance(exc, DeadlineExceededError):
                self._expired += 1
            if shard is not None:
                self._handles[shard].errors += 1
                if isinstance(exc, DeadlineExceededError):
                    self._handles[shard].expired += 1
            self._latencies.append(latency)
        pending.future.set_exception(exc)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervisor_loop(self) -> None:
        """Monitor thread: sweeps in-flight deadlines every tick and —
        when ``supervise`` — detects dead/wedged shards, respawns them
        with jittered exponential backoff, and trips the crash-loop
        circuit breaker."""
        tick = min(0.05, self.heartbeat_s / 2.0)
        while not self._closed:
            self._sweep_deadlines()
            if self.supervise:
                now = time.monotonic()
                for handle in self._handles:
                    try:
                        self._check_handle(handle, now)
                    except Exception:
                        # supervision must never die with the patient
                        pass
            time.sleep(tick)

    def _sweep_deadlines(self) -> None:
        """Fail in-flight futures whose deadline passed — the guarantee
        that no client blocks past its deadline even when the shard
        under the request is wedged or mid-respawn. The ring slot is
        deliberately NOT released here: the child may still be reading
        the feed views lazily. It is reclaimed by the child's eventual
        response (popped entry, no-op resolve) or by the fresh slot
        window a respawn installs."""
        now = time.monotonic()
        with self._lock:
            ripe = [
                entry
                for entry in self._inflight.values()
                if entry.pending.deadline is not None
                and entry.pending.deadline <= now
                and not entry.pending.future.done()
            ]
        for entry in ripe:
            self._resolve_error(
                entry.pending,
                DeadlineExceededError(
                    f"request for {entry.pending.model!r} missed its "
                    f"deadline in flight on shard {entry.shard} after "
                    f"{entry.pending.attempts} attempt(s)"
                ),
                shard=entry.shard,
            )

    def _backoff(self, strikes: int) -> float:
        """Jittered exponential respawn backoff for the Nth strike."""
        base = min(
            self.restart_backoff_max_s,
            self.restart_backoff_s * (2 ** max(0, strikes - 1)),
        )
        return base * (0.5 + self._rng.random())

    def _check_handle(self, handle: _ShardHandle, now: float) -> None:
        """One supervision step for one shard: wedge detection while
        alive; strike accounting, breaker, and backoff-gated respawn
        once dead."""
        if handle.failed:
            return
        if handle.alive:
            if (
                self.wedge_timeout_s is not None
                and handle.pid > 0
                and now - handle.last_hb > self.wedge_timeout_s
            ):
                # wedged: the process is up but its event loop stopped
                # heartbeating. SIGKILL it and let the normal death
                # path (receiver EOF → _fail_inflight → respawn) run.
                try:
                    os.kill(handle.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, OSError):
                    pass
                handle.last_hb = now  # one kill per wedge, not per tick
            return
        if handle.restart_due is None:
            # just noticed this death: account the strike and decide
            # between breaker and backoff
            rapid = (now - handle.last_ready) < self.crashloop_window_s
            handle.strikes = handle.strikes + 1 if rapid else 1
            if handle.strikes >= self.crashloop_threshold:
                self._trip_breaker(handle)
                return
            handle.restart_due = now + self._backoff(handle.strikes)
        elif now >= handle.restart_due:
            self._respawn(handle)

    def _respawn(self, handle: _ShardHandle) -> None:
        """Bring one dead shard back: fresh process, fresh pipe, fresh
        slot window over the same rings, warm preload of whatever is
        routed to it *now*."""
        if self._closed:
            return
        handle.restart_due = None
        handle.incarnation += 1
        # every pre-death slot is either free or pinned by a swept
        # request the child will never answer; the new incarnation gets
        # a clean window
        handle.req_slots = _SlotPool(handle.req_ring.slots)
        try:
            self._spawn_child(handle)
            error = self._wait_ready(
                handle, time.monotonic() + self.start_timeout
            )
        except Exception as exc:
            error = f"shard {handle.shard} respawn failed: {exc}"
        if error is not None:
            # a respawn that cannot reach ready is another strike
            handle.strikes += 1
            if handle.strikes >= self.crashloop_threshold:
                self._trip_breaker(handle)
            else:
                handle.restart_due = (
                    time.monotonic() + self._backoff(handle.strikes)
                )
            return
        self._start_receiver(handle)
        with self._lock:
            handle.restarts += 1
            self._restarts += 1

    def _trip_breaker(self, handle: _ShardHandle) -> None:
        """Crash-loop circuit breaker: give up on this shard for good
        and rehash its models onto the survivors (rendezvous keeps
        every survivor's existing assignment in place)."""
        handle.failed = True
        handle.alive = False
        handle.restart_due = None
        survivors = [
            h.shard for h in self._handles if not h.failed
        ]
        with self._lock:
            self._breaker_trips += 1
            if survivors:
                sigs = {
                    name: self.registry.get(name).signature
                    for name in self.registry.names()
                }
                self.routing = balanced_routing(sigs, survivors)
        # in-flight requests on the broken shard reroute (with retry
        # budget) or fail typed — never hang
        self._fail_inflight(
            handle.shard,
            ShardFailedError(
                f"shard {handle.shard} is crash-looping "
                f"({handle.strikes} rapid failures); circuit breaker "
                "open, models rerouted to surviving shards"
            ),
        )
        if not survivors:
            self._fail_inflight(
                None,
                ShardFailedError(
                    "every shard is dead; circuit breaker open on all"
                ),
            )

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _receiver_loop(self, handle: _ShardHandle, conn) -> None:
        # bound to ONE incarnation's pipe: a respawn starts a fresh
        # receiver on the fresh pipe, and this one drains out
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            handle.last_hb = time.monotonic()
            kind = msg[0]
            if kind == "hb":
                continue
            if kind == "res":
                self._on_result(handle, *msg[1:])
            elif kind == "err":
                self._on_error(handle, *msg[1:])
            elif kind == "stats_res":
                self._on_stats(handle, msg[1], msg[2])
            elif kind == "bye":
                handle.byed = True
        # the shard is gone (clean or not): fail or retry only ITS
        # in-flight requests, wake its slot waiters, leave other shards
        # serving. Even after a clean "bye" nothing may remain
        # unresolved — a request can lose the race against the child's
        # drain
        handle.alive = False
        handle.req_slots.kill()
        detail = (
            "exited while the request was in flight"
            if handle.byed
            else "died; its in-flight requests are lost"
        )
        self._fail_inflight(
            handle.shard,
            ShardFailedError(
                f"shard {handle.shard} (pid {handle.pid}) {detail}"
            ),
        )
        # unblock any stats() call waiting on this shard
        with self._lock:
            waiters = list(self._stats_waiters.values())
        for event, _sink in waiters:
            event.set()

    def _pop_inflight(self, handle: _ShardHandle, req_id: int):
        with self._lock:
            entry = self._inflight.pop(req_id, None)
            if entry is not None:
                handle.inflight -= 1
        return entry

    def _on_result(
        self, handle, req_id, stats: RequestStats, descs, req_slot, resp_slot
    ) -> None:
        entry = self._pop_inflight(handle, req_id)
        views = handle.resp_ring.read(descs)
        outputs = {name: view.copy() for name, view in views.items()}
        try:
            handle.send(("free_resp", resp_slot))
        except (OSError, ValueError):
            pass
        handle.req_slots.release(req_slot)
        if entry is None:
            return
        self._resolve_result(entry.pending, handle, outputs, stats)

    def _on_error(self, handle, req_id, exc, req_slot) -> None:
        entry = self._pop_inflight(handle, req_id)
        handle.req_slots.release(req_slot)
        if entry is None:
            return
        pending = entry.pending
        if (
            isinstance(exc, ShardFailedError)
            and pending.retries_left > 0
            and not pending.expired()
        ):
            self._schedule_retry(pending, exc)
            return
        self._resolve_error(pending, exc, shard=handle.shard)

    def _fail_inflight(self, shard: int | None, exc: Exception) -> None:
        """Pop every in-flight entry on ``shard`` (all shards when
        ``None``) and either reschedule it — a :class:`ShardFailedError`
        with retry budget left — or fail its future. Requests whose
        deadline already passed fail as
        :class:`~repro.exceptions.DeadlineExceededError` instead of
        burning retries on work nobody is waiting for."""
        with self._lock:
            doomed = [
                (req_id, entry)
                for req_id, entry in self._inflight.items()
                if shard is None or entry.shard == shard
            ]
            for req_id, entry in doomed:
                del self._inflight[req_id]
                self._handles[entry.shard].inflight -= 1
        for _req_id, entry in doomed:
            pending = entry.pending
            if pending.expired():
                self._resolve_error(
                    pending,
                    DeadlineExceededError(
                        f"request for {pending.model!r} missed its "
                        f"deadline on failed shard {entry.shard}"
                    ),
                    shard=entry.shard,
                )
            elif (
                isinstance(exc, ShardFailedError)
                and pending.retries_left > 0
                and not self._closed
            ):
                self._schedule_retry(pending, exc)
            else:
                self._resolve_error(pending, exc, shard=entry.shard)

    def _on_stats(self, handle: _ShardHandle, token: int, doc: dict) -> None:
        handle.child_doc = doc
        with self._lock:
            waiter = self._stats_waiters.get(token)
        if waiter is not None:
            event, sink = waiter
            sink.append(handle.shard)
            if len(sink) >= sum(1 for h in self._handles if h.alive):
                event.set()

    def _refresh_child_stats(self, timeout: float = 5.0) -> None:
        live = [h for h in self._handles if h.alive]
        if not live:
            return
        token = next(self._stats_tokens)
        event = threading.Event()
        with self._lock:
            self._stats_waiters[token] = (event, [])
        try:
            for handle in live:
                try:
                    handle.send(("stats", token))
                except (OSError, ValueError):
                    pass
            event.wait(timeout)
        finally:
            with self._lock:
                self._stats_waiters.pop(token, None)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def shard_stats(self, refresh: bool = True) -> list[ShardStats]:
        """A :class:`ShardStats` snapshot per shard (live child-side
        numbers are fetched over the control pipe; a dead shard reports
        its last known ones)."""
        if refresh and self._started:
            self._refresh_child_stats()
        out = []
        with self._lock:
            for handle in self._handles:
                doc = handle.child_doc
                pool_doc = doc.get("pool")
                out.append(
                    ShardStats(
                        shard=handle.shard,
                        pid=handle.pid,
                        alive=handle.alive,
                        models=handle.models,
                        requests=handle.completed,
                        errors=handle.errors,
                        inflight_peak=handle.inflight_peak,
                        queue_depth=doc.get("queue_depth", 0),
                        batches=doc.get("batches", 0),
                        spill_bytes=doc.get("spill_bytes", 0),
                        spill_stall_s=doc.get("spill_stall_s", 0.0),
                        spill_hidden_s=doc.get("spill_hidden_s", 0.0),
                        req_slots=handle.req_slots.slots,
                        req_ring_peak=handle.req_slots.peak,
                        resp_slots=handle.resp_ring.slots,
                        resp_ring_peak=doc.get("resp_ring_peak", 0),
                        pool=(
                            PoolStats(**pool_doc)
                            if pool_doc is not None
                            else None
                        ),
                        restarts=handle.restarts,
                        retries=handle.retries,
                        # parent-side count is complete: child-shed
                        # requests come back as DeadlineExceededError
                        # responses and are counted on arrival
                        expired=handle.expired,
                        shed=handle.shed,
                        failed=handle.failed,
                        incarnation=handle.incarnation,
                    )
                )
        return out

    def stats(self) -> ServingStats:
        """Aggregate :class:`ServingStats` across every shard.

        Latencies are *end-to-end* (submit to response, IPC included);
        batches, spill accounting and pool stats are summed from the
        shards' own schedulers.
        """
        shards = self.shard_stats()
        pool = None
        pools = [s.pool for s in shards if s.pool is not None]
        if pools:
            pool = PoolStats(
                **{
                    field: sum(getattr(p, field) for p in pools)
                    for field in PoolStats.__dataclass_fields__
                }
            )
        with self._lock:
            return ServingStats(
                requests=self._completed,
                errors=self._errors,
                batches=sum(s.batches for s in shards),
                latencies_s=tuple(self._latencies),
                pool=pool,
                spill_bytes=sum(s.spill_bytes for s in shards),
                spill_stall_s=sum(s.spill_stall_s for s in shards),
                spill_hidden_s=sum(s.spill_hidden_s for s in shards),
                restarts=self._restarts,
                retries=self._retries,
                expired=self._expired,
                shed=self._shed,
            )
