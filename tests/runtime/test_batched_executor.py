"""Batch-native PlanExecutor: per-sample bitwise parity across the
suite, strided N x arena accounting, partial batches, static overflow."""

from dataclasses import replace

import numpy as np
import pytest

from repro.allocator.arena import plan_allocation
from repro.exceptions import ExecutionError
from repro.models.suite import suite_cells
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.plan_executor import PlanExecutor
from repro.scheduler.registry import run_strategy
from repro.scheduler.schedule import Schedule

BATCH_WIDTHS = (1, 2, 8)
#: the two persistent-arena scrub policies (``fresh`` reallocates and
#: is covered separately)
SCRUBS = ("never", "zero")


def stack_feeds(graph, n, seed=0):
    """n per-sample feed dicts plus their stacked (n, ...) form."""
    feeds = [random_feeds(graph, seed=seed + i) for i in range(n)]
    stacked = {k: np.stack([f[k] for f in feeds]) for k in feeds[0]}
    return feeds, stacked


@pytest.fixture(scope="module")
def compiled_suite():
    """One greedy compilation + reference outputs per cell, shared by
    every (batch width, scrub) combination in this module."""
    cache: dict = {}

    def get(key: str):
        if key not in cache:
            spec = next(c for c in suite_cells() if c.key == key)
            out = run_strategy("greedy", spec.factory())
            graph = out.scheduled_graph
            plan = plan_allocation(graph, out.schedule)
            params = init_params(graph, seed=0)
            cache[key] = {
                "graph": graph,
                "schedule": out.schedule,
                "plan": plan,
                "params": params,
                "ref": Executor(graph, params=params),
                "want": {},  # (n,) -> list of per-sample reference outputs
            }
        return cache[key]

    return get


class TestSuiteBatchedParity:
    """Every benchmark cell, batched at N in {1, 2, 8}, under both
    persistent-arena scrub policies: sample b of every stacked output is
    bitwise the reference executor's — twice, the second run over the
    first run's stale arena bytes."""

    @pytest.mark.parametrize("scrub", SCRUBS)
    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    @pytest.mark.parametrize("key", [c.key for c in suite_cells()])
    def test_cell_batched_parity(self, compiled_suite, key, n, scrub):
        cell = compiled_suite(key)
        graph = cell["graph"]
        if n not in cell["want"]:
            feeds, stacked = stack_feeds(graph, n)
            cell["want"][n] = (
                feeds,
                stacked,
                [cell["ref"].run(f) for f in feeds],
            )
        feeds, stacked, want = cell["want"][n]
        px = PlanExecutor(
            graph,
            cell["schedule"],
            cell["plan"],
            params=cell["params"],
            batch_size=n,
            scrub=scrub,
        )
        for round_ in range(2):
            got = px.run_batch(stacked)
            assert set(got) == set(want[0])
            for b in range(n):
                for name in want[b]:
                    assert got[name].shape == (n,) + want[b][name].shape
                    np.testing.assert_array_equal(want[b][name], got[name][b])
            stats = px.last_stats
            assert stats is not None
            assert stats.batch == n
            assert stats.measured_peak_bytes <= cell["plan"].arena_bytes
            assert stats.arena_reused == (round_ > 0)


class TestBatchedArenaLayout:
    def compiled(self, graph):
        schedule = Schedule.of(graph, graph.node_names)
        return schedule, plan_allocation(graph, schedule)

    def test_arena_is_batch_times_per_sample_rows(self, chain_graph):
        schedule, plan = self.compiled(chain_graph)
        solo = PlanExecutor(chain_graph, schedule, plan)
        batched = PlanExecutor(chain_graph, schedule, plan, batch_size=8)
        assert batched.arena_nbytes == 8 * solo.arena_nbytes

    def test_batched_sites_are_views_of_one_arena(self, chain_graph):
        """Stacked execution must not silently copy: every (n, ...)
        site is a strided view into the executor's single allocation."""
        schedule, plan = self.compiled(chain_graph)
        px = PlanExecutor(chain_graph, schedule, plan, batch_size=4)
        for n in (1, 3, 4):
            for site in px._sites_for(n).values():
                assert site.base is not None
                assert np.shares_memory(site, px._arena)
        # the solo row-0 views share the same bytes as batched row 0
        solo_sites = px._sites_for(0)
        for name, site in px._sites_for(4).items():
            assert np.shares_memory(site[0], solo_sites[name])

    def test_run_on_batched_executor_stays_solo_bitwise(self, diamond_graph):
        """run() on a batch-capable executor is the plain row-0 path."""
        schedule, plan = self.compiled(diamond_graph)
        params = init_params(diamond_graph, seed=0)
        ref = Executor(diamond_graph, params=params)
        px = PlanExecutor(
            diamond_graph, schedule, plan, params=params, batch_size=8
        )
        feeds = random_feeds(diamond_graph)
        got = px.run(feeds)
        want = ref.run(feeds)
        for name in want:
            np.testing.assert_array_equal(want[name], got[name])
        assert px.last_stats.batch == 1

    def test_interleaved_solo_and_batched_runs(self, diamond_graph):
        """Solo and stacked runs share the arena; neither corrupts the
        other's results across interleavings."""
        schedule, plan = self.compiled(diamond_graph)
        params = init_params(diamond_graph, seed=0)
        ref = Executor(diamond_graph, params=params)
        px = PlanExecutor(
            diamond_graph, schedule, plan, params=params, batch_size=3
        )
        feeds, stacked = stack_feeds(diamond_graph, 3)
        for _ in range(2):
            got_solo = px.run(feeds[1])
            got_batch = px.run_batch(stacked)
            want = ref.run(feeds[1])
            for name in want:
                np.testing.assert_array_equal(want[name], got_solo[name])
                np.testing.assert_array_equal(want[name], got_batch[name][1])

    def test_fresh_scrub_reallocates_batched_arena(self, diamond_graph):
        schedule, plan = self.compiled(diamond_graph)
        params = init_params(diamond_graph, seed=0)
        ref = Executor(diamond_graph, params=params)
        px = PlanExecutor(
            diamond_graph, schedule, plan, params=params,
            batch_size=2, scrub="fresh",
        )
        feeds, stacked = stack_feeds(diamond_graph, 2)
        for _ in range(2):
            got = px.run_batch(stacked)
            for b in range(2):
                want = ref.run(feeds[b])
                for name in want:
                    np.testing.assert_array_equal(want[name], got[name][b])
            assert px.last_stats.arena_reused is False


class TestPartialBatches:
    def test_partial_batch_runs_at_true_size(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        params = init_params(chain_graph, seed=0)
        ref = Executor(chain_graph, params=params)
        px = PlanExecutor(
            chain_graph, schedule, plan, params=params, batch_size=8
        )
        feeds, _ = stack_feeds(chain_graph, 8)
        for n in (1, 3, 8):
            stacked = {
                k: np.stack([feeds[i][k] for i in range(n)]) for k in feeds[0]
            }
            got = px.run_batch(stacked)
            assert px.last_stats.batch == n
            for b in range(n):
                want = ref.run(feeds[b])
                for name in want:
                    assert got[name].shape[0] == n
                    np.testing.assert_array_equal(want[name], got[name][b])

    def test_output_subset_prunes_batched_run(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        px = PlanExecutor(chain_graph, schedule, plan, batch_size=2)
        _, stacked = stack_feeds(chain_graph, 2)
        got = px.run_batch(stacked, outputs=["r"])
        assert set(got) == {"r"}
        assert px.last_stats.steps < len(chain_graph)

    def test_batch_width_over_capacity_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        px = PlanExecutor(chain_graph, schedule, plan, batch_size=2)
        _, stacked = stack_feeds(chain_graph, 3)
        with pytest.raises(ExecutionError, match="capacity"):
            px.run_batch(stacked)

    def test_inconsistent_feed_widths_rejected(self, diamond_graph):
        # diamond has one input; build a two-input graph inline
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("two-in")
        x = b.input("x", (2, 4, 4))
        y = b.input("y", (2, 4, 4))
        b.add(x, y, name="sum")
        g = b.build()
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        px = PlanExecutor(g, schedule, plan, batch_size=4)
        feeds = {
            "x": np.zeros((2, 2, 4, 4)),
            "y": np.zeros((3, 2, 4, 4)),
        }
        with pytest.raises(ExecutionError, match="batch width"):
            px.run_batch(feeds)

    def test_misshapen_stacked_feed_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        px = PlanExecutor(chain_graph, schedule, plan, batch_size=2)
        bad = {"x": np.zeros((2, 4, 8, 7))}  # wrong W
        with pytest.raises(ExecutionError, match="shape"):
            px.run_batch(bad)

    def test_invalid_batch_size_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="batch_size"):
            PlanExecutor(chain_graph, schedule, plan, batch_size=0)


class TestStaticOverflow:
    def test_undersized_plan_rejected_before_batched_kernels(self, chain_graph):
        """The N x arena's per-row peak is a property of the compiled
        plan: an understated plan raises at run_batch before any kernel
        executes, at every batch width."""
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        lying = replace(plan, arena_bytes=plan.arena_bytes // 2)
        px = PlanExecutor(chain_graph, schedule, lying, batch_size=8)
        _, stacked = stack_feeds(chain_graph, 8)
        # the arena holds no data yet: failure must be the static check
        with pytest.raises(ExecutionError, match="arena overflow"):
            px.run_batch(stacked)
        assert px.runs == 0
        assert not px._arena.any()  # no kernel ever touched the rows
