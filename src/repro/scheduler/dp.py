"""Dynamic-programming memory-optimal scheduler (paper Algorithm 1).

The search sweeps *search steps* ``i = 0 .. n-1``; the states at step
``i`` are the downsets (scheduled sets) of size ``i``, keyed by bitmask.
The paper keys states by the zero-indegree set ``z``; the two are
equivalent (``z`` uniquely determines the downset — see
:meth:`repro.graph.analysis.GraphIndex.downset_of_frontier`) and the
downset mask is cheaper to maintain incrementally. Per state we memoise
the best-known ``(mu, mu_peak)`` and a parent pointer for schedule
reconstruction; among schedules reaching the same downset it is
sufficient to keep one with minimal peak (paper Theorem 1 — re-proved
against brute force in the test suite, including for graphs with
buffer aliasing).

Supports the two pruning controls Algorithm 2 (adaptive soft budgeting)
drives:

* ``budget`` — discard transitions whose running peak exceeds the soft
  budget ``tau``; may render the problem infeasible, raising
  :class:`~repro.exceptions.NoSolutionError` (the paper's "no solution").
* ``max_states_per_step`` / ``step_timeout_s`` — deterministic and
  wall-clock caps per search step, raising
  :class:`~repro.exceptions.StepTimeoutError` (the paper's "timeout").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.exceptions import NoSolutionError, StepTimeoutError
from repro.graph.analysis import bits
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["DPScheduler", "DPResult", "dp_schedule"]


@dataclass(frozen=True)
class DPResult:
    """Outcome of one DP run."""

    schedule: Schedule
    peak_bytes: int
    #: transitions evaluated (expanded edges of the search DAG)
    states_expanded: int
    #: unique memoised states summed over all search steps
    states_memoized: int
    #: widest single search step (max unique states at any step)
    max_step_states: int
    wall_time_s: float
    #: soft budget in force, if any
    budget: int | None = None

    @property
    def peak_kib(self) -> float:
        return self.peak_bytes / 1024.0


@dataclass
class DPScheduler:
    """Configurable Algorithm 1 runner.

    Parameters
    ----------
    budget:
        Soft peak-memory budget ``tau`` in bytes; ``None`` disables
        pruning (pure Algorithm 1).
    max_states_per_step:
        Deterministic cap on unique states per search step — the
        reproducible stand-in for the paper's per-step wall-clock limit
        ``T`` (still available as ``step_timeout_s``).
    preallocated:
        Node names whose buffers are live before scheduling starts (used
        by divide-and-conquer: the upstream cut activation). They must
        form a valid schedulable prefix (typically ``input`` stubs).
    """

    budget: int | None = None
    max_states_per_step: int | None = None
    step_timeout_s: float | None = None
    preallocated: tuple[str, ...] = ()

    def schedule(self, graph: Graph, model: BufferModel | None = None) -> DPResult:
        t0 = time.perf_counter()
        model = model or BufferModel.of(graph)
        idx = model.index
        n = idx.n
        budget = self.budget

        # --- seed state (possibly with preallocated entry tensors) -----
        scheduled0, mu0, peak0 = 0, 0, 0
        for name in self.preallocated:
            u = idx.index[name]
            if idx.preds_mask[u] & ~scheduled0:
                raise NoSolutionError(
                    budget or 0,
                    f"preallocated node {name!r} has unscheduled predecessors",
                )
            transient, mu0, scheduled0 = model.step(scheduled0, mu0, u)
            peak0 = max(peak0, transient)
        frontier0 = idx.frontier_of(scheduled0)

        # state: mask -> [mu, peak, frontier, adjacency-penalty];
        # parent: mask -> (pmask, u). The adjacency penalty (0 when the
        # chosen node consumes the previously scheduled node's output) is
        # a tie-break among equal-peak paths: producer->consumer
        # adjacency costs nothing in peak but improves cache locality of
        # the emitted schedule (measured in Fig 11).
        states: dict[int, list[int]] = {scheduled0: [mu0, peak0, frontier0, 0]}
        parents: dict[int, tuple[int, int]] = {}
        expanded = 0
        memoized = 1
        max_step_states = 1
        preset = scheduled0.bit_count()

        succs = idx.succs
        preds_mask = idx.preds_mask
        step_fn = model.step

        for step in range(preset, n):
            step_start = time.perf_counter() if self.step_timeout_s else 0.0
            nxt: dict[int, list[int]] = {}
            nxt_parents: dict[int, tuple[int, int]] = {}
            for mask, (mu, peak, frontier, _) in states.items():
                prev = parents.get(mask)
                prev_u = prev[1] if prev is not None else -1
                for u in bits(frontier):
                    transient, mu2, new_mask = step_fn(mask, mu, u)
                    new_peak = peak if peak >= transient else transient
                    if budget is not None and new_peak > budget:
                        continue
                    expanded += 1
                    adj = 0 if prev_u >= 0 and (preds_mask[u] >> prev_u) & 1 else 1
                    cur = nxt.get(new_mask)
                    if cur is None:
                        new_frontier = frontier & ~(1 << u)
                        for s in succs[u]:
                            if not (preds_mask[s] & ~new_mask):
                                new_frontier |= 1 << s
                        nxt[new_mask] = [mu2, new_peak, new_frontier, adj]
                        nxt_parents[new_mask] = (mask, u)
                        if self.max_states_per_step is not None and len(nxt) > self.max_states_per_step:
                            raise StepTimeoutError(step, len(nxt))
                    elif (new_peak, adj) < (cur[1], cur[3]):
                        cur[0], cur[1], cur[3] = mu2, new_peak, adj
                        nxt_parents[new_mask] = (mask, u)
                if (
                    self.step_timeout_s is not None
                    and time.perf_counter() - step_start > self.step_timeout_s
                ):
                    raise StepTimeoutError(step, len(nxt))
            if not nxt:
                raise NoSolutionError(
                    budget if budget is not None else 0,
                    f"search step {step}: every path exceeds the budget",
                )
            parents.update(nxt_parents)
            states = nxt
            memoized += len(nxt)
            if len(nxt) > max_step_states:
                max_step_states = len(nxt)

        # --- reconstruct -------------------------------------------------
        (final_mask, (mu, peak, _, _)) = next(iter(states.items()))
        assert final_mask == idx.full_mask
        rev: list[int] = []
        mask = final_mask
        while mask != scheduled0:
            pmask, u = parents[mask]
            rev.append(u)
            mask = pmask
        order = list(self.preallocated) + [idx.order[u] for u in reversed(rev)]
        return DPResult(
            schedule=Schedule(tuple(order), graph.name),
            peak_bytes=int(peak),
            states_expanded=expanded,
            states_memoized=memoized,
            max_step_states=max_step_states,
            wall_time_s=time.perf_counter() - t0,
            budget=budget,
        )


def dp_schedule(graph: Graph, **kwargs) -> DPResult:
    """Convenience wrapper: ``DPScheduler(**kwargs).schedule(graph)``."""
    return DPScheduler(**kwargs).schedule(graph)
