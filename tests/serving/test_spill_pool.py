"""Off-chip-aware serving: spill knob on the pool, stats surfacing."""

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import AdmissionError, ServingError
from repro.models.suite import serving_suite
from repro.runtime.executor import Executor, random_feeds
from repro.serving import ModelRegistry, run_load
from repro.serving.pool import ArenaPool
from repro.serving.scheduler import RequestScheduler


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    for name, factory in serving_suite().items():
        reg.register(pipeline.compile(factory()), name=name)
    return reg


def _tight_budget(registry) -> int:
    """A budget above every model's staging floor but below every
    arena — spilling is both necessary and possible."""
    floors = [registry.get(n).spill_floor_bytes for n in registry.names()]
    arenas = [registry.get(n).arena_bytes for n in registry.names()]
    budget = max(floors) + 16
    assert budget < min(arenas), "serving suite geometry changed"
    return budget


class TestAdmissionMessages:
    def test_refusal_names_needed_vs_available_and_hints_spill(self, registry):
        budget = _tight_budget(registry)
        pool = ArenaPool(registry, budget)
        name = registry.names()[0]
        need = registry.get(name).arena_bytes
        with pytest.raises(AdmissionError) as err:
            pool.acquire(name)
        message = str(err.value)
        assert str(need) in message  # needed bytes
        assert str(budget) in message  # available bytes
        assert str(need - budget) in message  # the shortfall
        assert "spill='auto'" in message  # the knob hint

    def test_below_floor_refused_even_with_spill(self, registry):
        pool = ArenaPool(registry, 64, spill="auto")
        with pytest.raises(AdmissionError, match="even with spilling"):
            pool.acquire(registry.names()[0])

    def test_unknown_spill_mode_rejected(self, registry):
        with pytest.raises(ServingError, match="spill mode"):
            ArenaPool(registry, spill="sometimes")


class TestSpilledAdmission:
    def test_auto_degrades_over_budget_to_spilled_executor(self, registry):
        budget = _tight_budget(registry)
        pool = ArenaPool(registry, budget, spill="auto")
        name = registry.names()[0]
        executor = pool.acquire(name)
        try:
            assert executor.spill is not None
            assert not executor.spill.is_trivial
            stats = pool.stats()
            assert stats.spilled_builds == 1
            # admission priced at resident bytes, within budget
            assert stats.resident_bytes <= budget
            graph = registry.get(name).graph
            feeds = random_feeds(graph, seed=3)
            got = executor.run(feeds)
            ref = Executor(graph, params=executor.params).run(feeds)
            for k in ref:
                np.testing.assert_array_equal(ref[k], got[k])
            assert executor.last_stats.spill_bytes_total > 0
        finally:
            pool.release(name, executor)

    def test_auto_keeps_fitting_models_resident(self, registry):
        name = registry.names()[0]
        pool = ArenaPool(
            registry, registry.get(name).arena_bytes * 4, spill="auto"
        )
        executor = pool.acquire(name)
        try:
            assert executor.spill is None
            assert pool.stats().spilled_builds == 0
        finally:
            pool.release(name, executor)

    def test_always_spill_plans_fitting_models_trivially(self, registry):
        name = registry.names()[0]
        pool = ArenaPool(
            registry, registry.get(name).arena_bytes * 4, spill="always"
        )
        executor = pool.acquire(name)
        try:
            assert executor.spill is not None
            assert executor.spill.is_trivial
            # a trivial plan moves no bytes: not a degraded build
            assert pool.stats().spilled_builds == 0
        finally:
            pool.release(name, executor)

    def test_batched_rows_spill_before_batch_refused(self, registry):
        """An N x footprint over budget stages cold rows' buffers
        instead of refusing the whole batch."""
        name = registry.names()[0]
        model = registry.get(name)
        batch = 2
        # room for the floors of both rows, not for both full arenas
        budget = batch * (model.spill_floor_bytes + 16)
        assert budget < model.arena_bytes_for(batch)
        pool = ArenaPool(registry, budget, spill="auto", batch_size=batch)
        executor = pool.acquire(name)
        try:
            assert executor.spill is not None
            feeds = [random_feeds(model.graph, seed=i) for i in range(batch)]
            stacked = {
                k: np.stack([f[k] for f in feeds]) for k in feeds[0]
            }
            got = executor.run_batch(stacked)
            ref = Executor(model.graph, params=executor.params)
            for b in range(batch):
                want = ref.run(feeds[b])
                for k in want:
                    np.testing.assert_array_equal(want[k], got[k][b])
            assert executor.last_stats.spill_bytes_total > 0
        finally:
            pool.release(name, executor)


@pytest.fixture(scope="module")
def tiled_registry():
    """The micro serving cells' buffers are smaller than one tile, so
    tile streaming cannot drop their floor; tile admission needs a
    real suite cell with multi-tile buffers."""
    from repro.models.suite import get_cell

    reg = ModelRegistry()
    reg.register(
        CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        ),
        name="rw-c10-b",
    )
    return reg


class TestTileStreamingAdmission:
    """tile_bytes on the pool: admission below the whole-buffer floor."""

    TILE = 8192

    @classmethod
    def _tile_bounds(cls, registry, name):
        model = registry.get(name)
        floor = model.spill_floor_bytes
        tile_floor = model.spill_floor_for(cls.TILE)
        below = max(tile_floor, min(floor - 1, tile_floor * 2))
        assert below < floor, "fixture cell must have tile headroom"
        return below, floor

    def test_tiled_pool_admits_below_whole_floor(self, tiled_registry):
        name = tiled_registry.names()[0]
        below, _ = self._tile_bounds(tiled_registry, name)
        # whole-buffer staging refuses this budget outright
        whole = ArenaPool(tiled_registry, below, spill="auto")
        with pytest.raises(AdmissionError, match="even with spilling"):
            whole.acquire(name)
        pool = ArenaPool(
            tiled_registry, below, spill="auto", tile_bytes=self.TILE
        )
        executor = pool.acquire(name)
        try:
            assert executor.spill is not None
            assert executor.spill.tile_bytes == self.TILE
            graph = tiled_registry.get(name).graph
            feeds = random_feeds(graph, seed=5)
            got = executor.run(feeds)
            ref = Executor(graph, params=executor.params).run(feeds)
            for k in ref:
                np.testing.assert_array_equal(ref[k], got[k])
            assert executor.last_stats.tile_bytes == self.TILE
            assert executor.last_stats.spill_bytes_total > 0
        finally:
            pool.release(name, executor)

    def test_run_load_threads_tile_bytes(self, tiled_registry):
        name = tiled_registry.names()[0]
        below, _ = self._tile_bounds(tiled_registry, name)
        report = run_load(
            tiled_registry,
            requests=8,
            clients=2,
            workers=1,
            max_batch=1,
            budget=below,
            spill="auto",
            tile_bytes=self.TILE,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert report.tile_bytes == self.TILE
        assert report.spill_bytes > 0

    def test_untiled_report_has_no_tile_bytes(self, registry):
        report = run_load(
            registry, requests=4, clients=1, workers=1, max_batch=1
        )
        assert report.tile_bytes is None


class TestServingStatsSurface:
    def test_run_load_spill_auto_serves_and_accounts(self, registry):
        budget = _tight_budget(registry)
        report = run_load(
            registry,
            requests=16,
            clients=2,
            workers=2,
            max_batch=1,
            budget=budget,
            spill="auto",
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert report.spill == "auto"
        assert report.spill_bytes > 0
        assert report.pool.spilled_builds >= 1
        assert "off-chip spill traffic" in report.summary()

    def test_request_stats_carry_spill_bytes(self, registry):
        budget = _tight_budget(registry)
        pool = ArenaPool(registry, budget, spill="auto")
        name = registry.names()[0]
        graph = registry.get(name).graph
        with RequestScheduler(registry, pool, workers=1) as server:
            result = server.submit(
                name, random_feeds(graph, seed=0)
            ).result(timeout=30)
            assert result.stats.spill_bytes > 0
            stats = server.stats()
        assert stats.spill_bytes >= result.stats.spill_bytes
        pool.close()

    def test_never_mode_reports_zero_spill(self, registry):
        report = run_load(
            registry, requests=8, clients=2, workers=1, max_batch=1
        )
        assert report.spill == "never"
        assert report.spill_bytes == 0
        assert report.pool.spilled_builds == 0
        assert "off-chip spill traffic" not in report.summary()


class TestPreloadSpillPricing:
    def test_preload_auto_prices_resident_bytes_not_arenas(self, registry):
        """Under spill='auto' a preloaded executor must charge its
        spill plan's resident bytes against the budget, not the full
        arena it no longer provisions."""
        budget = _tight_budget(registry)
        pool = ArenaPool(registry, budget, spill="auto")
        built = pool.preload()
        try:
            assert built, "tight budget should still admit spilled builds"
            stats = pool.stats()
            assert stats.spilled_builds >= 1
            priced = sum(pool._arena_cost(name) for name in built)
            assert stats.resident_bytes == priced
            assert stats.resident_bytes <= budget
            arenas = sum(registry.get(name).arena_bytes for name in built)
            assert stats.resident_bytes < arenas  # spill pricing, not arenas
        finally:
            pool.close()
