"""PlanExecutor: bitwise parity with the reference executor, arena
accounting, and aliasing edge cases feeding the arena."""

import numpy as np
import pytest

from repro.allocator.arena import plan_allocation
from repro.compiler import CompilationPipeline
from repro.exceptions import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec
from repro.models.suite import suite_cells
from repro.rewriting import rewrite_graph
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.plan_executor import PlanExecutor, intra_buffer_offsets
from repro.runtime.verify import verify_execution
from repro.scheduler.memory import BufferModel
from repro.scheduler.registry import run_strategy
from repro.scheduler.schedule import Schedule


def assert_parity(graph, schedule, plan, seed=0):
    """Both executors, same weights/feeds: outputs must be bitwise equal."""
    params = init_params(graph, seed=seed)
    feeds = random_feeds(graph, seed=seed)
    ref = Executor(graph, params=params).run(feeds)
    px = PlanExecutor(graph, schedule, plan, params=params)
    got = px.run(feeds)
    assert set(ref) == set(got)
    for name in ref:
        np.testing.assert_array_equal(ref[name], got[name])
    assert px.last_stats is not None
    assert px.last_stats.measured_peak_bytes <= plan.arena_bytes
    return px


def compile_with(graph, strategy="greedy", allocator="first_fit"):
    out = run_strategy(strategy, graph)
    plan = plan_allocation(
        out.scheduled_graph, out.schedule, strategy=allocator
    )
    return out.scheduled_graph, out.schedule, plan


class TestSuiteParity:
    """Every benchmark cell executes identically under the arena plan."""

    @pytest.mark.parametrize(
        "key", [c.key for c in suite_cells()]
    )
    def test_cell_parity(self, key):
        spec = next(c for c in suite_cells() if c.key == key)
        graph, schedule, plan = compile_with(spec.factory(), "greedy")
        assert_parity(graph, schedule, plan)

    @pytest.mark.parametrize(
        "key", [c.key for c in suite_cells()]
    )
    def test_cell_parity_greedy_by_size_arena(self, key):
        spec = next(c for c in suite_cells() if c.key == key)
        graph, schedule, plan = compile_with(
            spec.factory(), "kahn", allocator="greedy_by_size"
        )
        assert_parity(graph, schedule, plan)

    def test_rewritten_cell_parity(self):
        # serenity-fast rewrites: inplace partial-conv chains and view
        # gather concats execute inside the arena
        spec = next(c for c in suite_cells() if c.key == "swiftnet-c")
        graph, schedule, plan = compile_with(spec.factory(), "serenity-fast")
        assert any(n.memory.aliases for n in graph)
        assert_parity(graph, schedule, plan)


class TestAliasingEdgeCases:
    def test_inplace_chain(self):
        """acc += style chains share one buffer at one offset."""
        b = GraphBuilder("inplace")
        x = b.input("x", (4, 4, 4))
        b.relu(x, name="r")
        b.sigmoid(x, name="s")
        g = b.build()
        g.add(
            Node(
                name="acc",
                op="add",
                inputs=("r", "s"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        g.add(
            Node(
                name="acc2",
                op="add",
                inputs=("acc", "s"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        idx = model.index
        assert (
            model.buffer_of[idx.index["r"]]
            == model.buffer_of[idx.index["acc"]]
            == model.buffer_of[idx.index["acc2"]]
        )
        assert intra["r"] == intra["acc"] == intra["acc2"] == 0
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_view_concat_offsets_and_parity(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        assert g.node("cat").memory.view
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        # operands land at their slice offsets inside the concat buffer
        assert intra["cat"] == 0
        assert intra["l"] == 0
        assert intra["m"] == g.node("l").output.bytes
        assert intra["r"] == intra["m"] + g.node("m").output.bytes
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_partial_view_copied_operand(self):
        """A graph-input operand stays outside the view buffer and is
        copied at concat time (``view_inputs`` partial aliasing)."""
        from repro.graph.transforms import mark_concat_views

        b = GraphBuilder("partial-view")
        x = b.input("x", (2, 4, 4))
        l = b.relu(x, name="l")
        cat = b.concat([x, l], name="cat")
        b.relu(cat, name="out")
        g = mark_concat_views(b.build())
        cat_node = g.node("cat")
        assert cat_node.memory.view and cat_node.attrs["view_inputs"] == (1,)
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        # l aliases at its slice past x's (copied) region; x keeps its
        # own buffer at offset 0
        assert intra["l"] == g.node("x").output.bytes
        assert intra["x"] == 0
        idx = model.index
        assert model.buffer_of[idx.index["x"]] != model.buffer_of[idx.index["cat"]]
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_rewritten_graphs_parity(self, concat_conv_graph, concat_depthwise_graph):
        for base in (concat_conv_graph, concat_depthwise_graph):
            g = rewrite_graph(base).graph
            assert any(n.memory.aliases for n in g)
            schedule = Schedule.of(g, g.node_names)
            assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_zero_use_outputs_persist(self):
        """A sink nobody consumes still occupies its planned bytes and
        is returned intact at the end."""
        b = GraphBuilder("multi-sink")
        x = b.input("x", (2, 4, 4))
        b.relu(x, name="dead_end")  # zero consumers
        c = b.conv2d(x, 4, kernel=3, name="c")
        b.relu(c, name="main")
        g = b.build()
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        px = assert_parity(g, schedule, plan)
        out = px.run(random_feeds(g))
        assert set(out) == {"dead_end", "main"}

    def test_inplace_overwrite_before_sibling_reader_rejected(self):
        """A schedule that runs an in-place writer before another
        consumer of its target would silently corrupt that read — the
        executor must refuse it (and accept the safe order)."""
        b = GraphBuilder("hazard")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="r")
        g = b.build()
        g.add(
            Node(
                name="over",
                op="sigmoid",
                inputs=("r",),
                output=TensorSpec((2, 2, 2)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        g.add(
            Node(
                name="z", op="relu", inputs=("r",), output=TensorSpec((2, 2, 2))
            )
        )
        unsafe = Schedule.of(g, ("x", "r", "over", "z"))
        with pytest.raises(ExecutionError, match="unsafe"):
            PlanExecutor(g, unsafe, plan_allocation(g, unsafe))
        safe = Schedule.of(g, ("x", "r", "z", "over"))
        assert_parity(g, safe, plan_allocation(g, safe))

    def test_two_inplace_writers_on_one_target_rejected(self):
        """Two independent in-place writers over the same bytes: in any
        order, the later one reads a clobbered target — every pair in
        the buffer must be checked, not just the first."""
        b = GraphBuilder("double-writer")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="t")
        g = b.build()
        for name, op in (("wa", "sigmoid"), ("wb", "tanh")):
            g.add(
                Node(
                    name=name,
                    op=op,
                    inputs=("t",),
                    output=TensorSpec((2, 2, 2)),
                    memory=MemorySemantics(inplace_of=0),
                )
            )
        for order in (("x", "t", "wa", "wb"), ("x", "t", "wb", "wa")):
            schedule = Schedule.of(g, order)
            with pytest.raises(ExecutionError, match="unsafe"):
                PlanExecutor(g, schedule, plan_allocation(g, schedule))

    def test_intermediate_snapshot_before_inplace_overwrite(self):
        """Requesting a tensor that an in-place consumer later clobbers
        returns the as-produced value (reference semantics)."""
        b = GraphBuilder("snap")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="r")
        g = b.build()
        g.add(
            Node(
                name="over",
                op="sigmoid",
                inputs=("r",),
                output=TensorSpec((2, 2, 2)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        feeds = random_feeds(g)
        params = init_params(g)
        ref = Executor(g, params=params).run(feeds, outputs=["r", "over"])
        got = PlanExecutor(g, schedule, plan, params=params).run(
            feeds, outputs=["r", "over"]
        )
        np.testing.assert_array_equal(ref["r"], got["r"])
        np.testing.assert_array_equal(ref["over"], got["over"])


class TestPlanExecutorErrors:
    def test_plan_graph_mismatch_rejected(self, chain_graph, diamond_graph):
        from repro.exceptions import ReproError

        schedule = Schedule.of(diamond_graph, diamond_graph.node_names)
        plan = plan_allocation(diamond_graph, schedule)
        with pytest.raises(ReproError):
            PlanExecutor(chain_graph, schedule, plan)

    def test_missing_feed(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="missing feed"):
            PlanExecutor(chain_graph, schedule, plan).run({})

    def test_unknown_output_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="never computed"):
            PlanExecutor(chain_graph, schedule, plan).run(
                random_feeds(chain_graph), outputs=["nope"]
            )

    def test_mixed_itemsize_rejected(self):
        g = Graph("mixed")
        g.add(Node(name="x", op="input", inputs=(), output=TensorSpec((2, 2))))
        g.add(
            Node(
                name="y",
                op="identity",
                inputs=("x",),
                output=TensorSpec((2, 2), "int8"),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        with pytest.raises(ExecutionError, match="itemsize"):
            PlanExecutor(g, schedule, plan)

    def test_undersized_plan_overflows(self, chain_graph):
        """A plan whose arena lies about its capacity is caught mid-run."""
        from dataclasses import replace

        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        lying = replace(plan, arena_bytes=plan.arena_bytes // 2)
        with pytest.raises(ExecutionError, match="arena overflow"):
            PlanExecutor(chain_graph, schedule, lying).run(
                random_feeds(chain_graph)
            )


class TestVerifyExecution:
    def test_verify_execution_reports_equivalence(self, diamond_graph):
        model = CompilationPipeline("greedy").compile(diamond_graph)
        report = verify_execution(model)
        assert report.equivalent
        assert report.max_abs_error == 0.0
