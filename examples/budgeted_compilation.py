"""Compiling against a hard device budget with adaptive soft budgeting.

Run:  python examples/budgeted_compilation.py

Shows the machinery behind Algorithm 2: probing the DP scheduler with
different soft budgets ``tau``, watching the 'timeout' / 'no solution' /
'solution' outcomes bracket the optimum (Fig 8(b)), and using the result
to answer a deployment question — what is the smallest device this
network can run on?
"""

from repro import DPScheduler, NoSolutionError, kahn_schedule, simulate_schedule
from repro.models import swiftnet_cell_a
from repro.scheduler.budget import AdaptiveSoftBudgetScheduler


def manual_probes(graph) -> None:
    """Probe a few budgets by hand to see the feasibility frontier."""
    kahn_peak = simulate_schedule(graph, kahn_schedule(graph)).peak_bytes
    print(f"hard budget (Kahn's peak) : {kahn_peak / 1024:7.1f}KB")
    print(f"\n  {'budget':>10}  {'outcome':>12}  {'states':>8}")
    for frac in (1.0, 0.75, 0.6, 0.5, 0.4):
        tau = int(kahn_peak * frac)
        try:
            res = DPScheduler(budget=tau).schedule(graph)
            outcome, states = f"{res.peak_kib:.1f}KB", res.states_expanded
        except NoSolutionError:
            outcome, states = "no solution", 0
        print(f"  {tau / 1024:>8.1f}KB  {outcome:>12}  {states:>8,}")


def adaptive(graph) -> None:
    print("\nadaptive soft budgeting trajectory "
          "(deliberately tight per-step allowance):")
    asb = AdaptiveSoftBudgetScheduler(max_states_per_step=40)
    result = asb.schedule(graph)
    for i, probe in enumerate(result.probes):
        print(f"  probe {i}: tau={probe.tau / 1024:7.1f}KB -> {probe.outcome}")
    print(f"optimal peak: {result.peak_bytes / 1024:.1f}KB "
          f"(hard budget was {result.hard_budget / 1024:.1f}KB)")
    print(f"\n=> smallest device this cell runs on: "
          f"{result.peak_bytes / 1024:.0f}KB of activation SRAM")


def main() -> None:
    graph = swiftnet_cell_a()
    print(f"graph: {graph.name} ({len(graph)} nodes)\n")
    manual_probes(graph)
    adaptive(graph)


if __name__ == "__main__":
    main()
