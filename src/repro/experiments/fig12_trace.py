"""Fig 12: memory footprint over time for SwiftNet Cell A.

Two panels:

* (a) *with* the memory allocator — arena occupancy per execution step
  under the first-fit plan (the quantity a device would observe);
* (b) *without* the allocator — the sum of live activations (the
  scheduler's objective).

Each panel shows the DP schedule and the DP + graph rewriting schedule;
the deltas between their peaks are the paper's red arrows (25.1 KB and
12.5 KB respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocator.arena import plan_allocation
from repro.experiments.common import compiled
from repro.models.suite import get_cell
from repro.scheduler.serenity import SerenityReport

__all__ = ["TracePair", "run", "render", "arena_occupancy"]

#: paper reference peaks for SwiftNet Cell A (KB)
PAPER = {
    "tflite_alloc": 551.0,
    "dp_alloc": 250.9,
    "gr_alloc": 225.8,
    "dp_noalloc": 200.7,
    "gr_noalloc": 188.2,
}


def arena_occupancy(report: SerenityReport) -> np.ndarray:
    """Arena bytes in use after each execution step (panel (a) curve):
    the high-water mark of offsets of buffers live at that step."""
    plan = plan_allocation(report.scheduled_graph, report.schedule)
    n = len(report.schedule)
    occupancy = np.zeros(n, dtype=np.int64)
    for lt in plan.lifetimes:
        top = plan.offsets[lt.buffer_id] + lt.size
        occupancy[lt.start : lt.end] = np.maximum(
            occupancy[lt.start : lt.end], top
        )
    return occupancy


@dataclass(frozen=True)
class TracePair:
    """One schedule's footprint curves."""

    label: str
    noalloc: np.ndarray  # settled sum-of-live activations per step
    alloc: np.ndarray  # arena occupancy per step

    @property
    def peak_noalloc_kb(self) -> float:
        return float(self.noalloc.max()) / 1024.0

    @property
    def peak_alloc_kb(self) -> float:
        return float(self.alloc.max()) / 1024.0


def run(cell_key: str = "swiftnet-a") -> dict[str, TracePair]:
    spec = get_cell(cell_key)
    out = {}
    for label, rewrite in (("dp", False), ("dp+rewriting", True)):
        rep = compiled(spec, rewrite=rewrite)
        trace = rep.trace()
        out[label] = TracePair(
            label=label,
            noalloc=trace.transients,
            alloc=arena_occupancy(rep),
        )
    return out


def _sparkline(values: np.ndarray, width: int = 64) -> str:
    """Terminal-friendly sparkline of a footprint curve."""
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        idx = np.linspace(0, len(values) - 1, width).astype(int)
        values = values[idx]
    top = float(values.max()) or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in values)


def render(pairs: dict[str, TracePair]) -> str:
    dp, gr = pairs["dp"], pairs["dp+rewriting"]
    lines = [
        "Fig 12 - SwiftNet Cell A footprint over time",
        "=" * 56,
        "(a) with memory allocator (arena occupancy per step)",
        f"  DP           peak {dp.peak_alloc_kb:7.1f}KB (paper {PAPER['dp_alloc']:.1f})  {_sparkline(dp.alloc)}",
        f"  DP+rewriting peak {gr.peak_alloc_kb:7.1f}KB (paper {PAPER['gr_alloc']:.1f})  {_sparkline(gr.alloc)}",
        f"  rewriting reduction: {dp.peak_alloc_kb - gr.peak_alloc_kb:.1f}KB (paper 25.1KB)",
        "(b) without allocator (sum of live activations)",
        f"  DP           peak {dp.peak_noalloc_kb:7.1f}KB (paper {PAPER['dp_noalloc']:.1f})  {_sparkline(dp.noalloc)}",
        f"  DP+rewriting peak {gr.peak_noalloc_kb:7.1f}KB (paper {PAPER['gr_noalloc']:.1f})  {_sparkline(gr.noalloc)}",
        f"  rewriting reduction: {dp.peak_noalloc_kb - gr.peak_noalloc_kb:.1f}KB (paper 12.5KB)",
    ]
    return "\n".join(lines)


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
