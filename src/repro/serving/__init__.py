"""Concurrent artifact-serving runtime over preallocated arenas.

The deployment story in four layers:

* :class:`~repro.serving.registry.ModelRegistry` — loads and
  signature-verifies :class:`~repro.compiler.model.CompiledModel`
  artifacts;
* :class:`~repro.serving.pool.ArenaPool` — owns reusable preallocated
  :class:`~repro.runtime.plan_executor.PlanExecutor` workers per model,
  bounded by a device memory budget with admission control;
* :class:`~repro.serving.scheduler.RequestScheduler` — dispatches
  concurrent requests to pooled executors across threads, with optional
  micro-batching of same-model requests and per-request stats;
* :class:`~repro.serving.shard.ShardedScheduler` — the process-level
  multiplier: N worker processes (one pool + scheduler each), sticky
  rendezvous model→shard routing, zero-copy shared-memory tensor
  rings, behind the same ``submit() -> Future`` API — and
  **self-healing**: dead/wedged shards respawn under supervision,
  crash loops trip a circuit breaker that reroutes models to the
  survivors, requests carry deadlines and bounded retries, and the
  whole story is provable with a deterministic
  :class:`~repro.serving.faults.FaultPlan`.

>>> registry = ModelRegistry()
>>> registry.load("model.json")
>>> pool = ArenaPool(registry, budget=SPARKFUN_EDGE)
>>> with RequestScheduler(registry, pool, workers=4) as server:
...     outputs = server.submit("model", feeds).result().outputs
"""

from repro.serving.faults import (
    DelayResponse,
    DropResponse,
    FaultPlan,
    KillMidResponse,
    KillShard,
    StallEngine,
    WedgeShard,
)
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.pool import ArenaPool, PoolStats
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    InferenceResult,
    RequestScheduler,
    RequestStats,
    ServingStats,
)
from repro.serving.shard import (
    ShardedScheduler,
    ShardStats,
    balanced_routing,
    rendezvous_shard,
)

__all__ = [
    "ArenaPool",
    "DelayResponse",
    "DropResponse",
    "FaultPlan",
    "InferenceResult",
    "KillMidResponse",
    "KillShard",
    "LoadReport",
    "ModelRegistry",
    "PoolStats",
    "RequestScheduler",
    "RequestStats",
    "ServingStats",
    "ShardStats",
    "ShardedScheduler",
    "StallEngine",
    "WedgeShard",
    "balanced_routing",
    "rendezvous_shard",
    "run_load",
]
