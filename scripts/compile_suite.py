"""Compile every benchmark-suite cell into an on-disk artifact.

The CI ``verify-plan`` gate runs this first: each cell is compiled,
tiered-arena spill plans (with prefetch layouts) are embedded at the
capacity floor and at 50%/75% of the arena — plus one tile-streaming
plan at a capacity *below* the whole-buffer floor — and the artifacts
are written as JSON. ``python -m repro.cli verify-plan <dir>/*.json`` then
statically proves every one of them race-free and byte-sound — the
gate fails if any compiled plan violates an invariant the runtime
would only have caught (or worse, missed) at execution time.

Usage: python scripts/compile_suite.py [outdir] [--strategy NAME]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("outdir", nargs="?", default="artifacts")
    ap.add_argument("--strategy", default="greedy")
    ap.add_argument(
        "--prefetch-lead",
        type=int,
        default=8,
        help="max transfer-engine lead granted to embedded spill plans",
    )
    ap.add_argument(
        "--tile-bytes",
        type=int,
        default=8192,
        help="tile size for the below-floor tiled spill plan each "
        "artifact also embeds",
    )
    args = ap.parse_args(argv)

    from repro.allocator.spill import min_capacity_bytes, plan_spill
    from repro.compiler.pipeline import CompilationPipeline
    from repro.models.suite import suite_cells

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    pipeline = CompilationPipeline(args.strategy)
    written = 0
    for cell in suite_cells():
        model = pipeline.compile(cell.factory())
        floor = min_capacity_bytes(model.graph, model.schedule)
        caps = sorted(
            {
                max(floor, model.plan.arena_bytes // 2),
                max(floor, model.plan.arena_bytes * 3 // 4),
                floor,
            }
        )
        spills = [
            plan_spill(
                model.graph,
                model.schedule,
                model.plan,
                cap,
                policy="belady",
                prefetch_lead=args.prefetch_lead,
            )
            for cap in caps
        ]
        # one tiled plan per cell, at a capacity the whole-buffer path
        # cannot admit — the verify-plan gate proves the tile invariants
        tile_floor = min_capacity_bytes(
            model.graph, model.schedule, tile_bytes=args.tile_bytes
        )
        tiled_cap = max(tile_floor, min(floor - 1, tile_floor * 2))
        if tiled_cap < floor:
            spills.append(
                plan_spill(
                    model.graph,
                    model.schedule,
                    model.plan,
                    tiled_cap,
                    policy="belady",
                    prefetch_lead=args.prefetch_lead,
                    tile_bytes=args.tile_bytes,
                )
            )
        path = (
            replace(model, spill_plans=tuple(spills))
            .save(outdir / f"{cell.key}.json")
        )
        written += 1
        tiled_note = (
            f", tiled {tiled_cap} B @ {args.tile_bytes} B tiles"
            if tiled_cap < floor
            else ""
        )
        print(
            f"{cell.key}: arena {model.plan.arena_bytes} B, "
            f"floor {floor} B, spill capacities {caps}{tiled_note} "
            f"-> {path}"
        )
    print(f"wrote {written} artifact(s) to {outdir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
