"""Plain-text table rendering and small statistics helpers.

All experiment harnesses print through these helpers so the
``paper vs measured`` tables share one look (monospace, right-aligned
numerics, explicit units).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["geomean", "format_table", "format_kib", "ratio_str"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregate the paper reports in Figs 10/11)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_kib(nbytes: float) -> str:
    return f"{nbytes / 1024.0:.1f}KB"


def ratio_str(value: float | None) -> str:
    return "N/A" if value is None else f"{value:.2f}x"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    lines += [fmt(cells[0]), sep]
    lines += [fmt(row) for row in cells[1:]]
    return "\n".join(lines)
