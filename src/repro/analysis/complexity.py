"""Search-space complexity analysis (paper Appendix D, Figs 5/16).

The paper's tractability argument rests on three quantities:

* ``O(|V|!)`` — the recursive topological-ordering search the DP
  replaces; measured here as the *recursion-tree size* (number of
  partial schedules the naive search visits);
* ``O(|V| * 2^|V|)`` — the DP's analytic upper bound;
* the number of **unique zero-indegree signatures** the DP actually
  memoises — usually orders of magnitude below both, because real cells
  are far from the worst-case topology of Fig 16.

``complexity_of`` measures all three on a graph (the first one exactly
up to a node budget, since it is literally factorial), reproducing the
Fig 5 "redundant z" collapse quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.analysis import GraphIndex, bits
from repro.graph.graph import Graph

__all__ = ["ComplexityReport", "complexity_of", "naive_recursion_size", "count_downsets"]


def naive_recursion_size(graph: Graph, cap: int = 5_000_000) -> int | None:
    """Number of partial schedules the naive recursive topological
    ordering enumerates (the recursion tree of Fig 5, left). ``None``
    when the count exceeds ``cap`` — i.e. the paper's 'takes days'."""
    idx = GraphIndex.build(graph)
    count = 0

    def recurse(scheduled: int, frontier: int) -> bool:
        nonlocal count
        for u in bits(frontier):
            count += 1
            if count > cap:
                return False
            new_mask = scheduled | (1 << u)
            new_frontier = frontier & ~(1 << u)
            for s in idx.succs[u]:
                if not (idx.preds_mask[s] & ~new_mask):
                    new_frontier |= 1 << s
            if not recurse(new_mask, new_frontier):
                return False
        return True

    ok = recurse(0, idx.initial_frontier())
    return count if ok else None


def count_downsets(graph: Graph, cap: int = 50_000_000) -> int | None:
    """Number of downsets (= unique zero-indegree signatures = DP
    states) by frontier BFS; ``None`` if above ``cap``."""
    idx = GraphIndex.build(graph)
    seen = 1  # the empty downset
    level = {0}
    while level:
        nxt: set[int] = set()
        for mask in level:
            z = idx.frontier_of(mask)
            for u in bits(z):
                nxt.add(mask | (1 << u))
        # each level holds downsets of one cardinality, so levels are
        # disjoint by construction
        seen += len(nxt)
        if seen > cap:
            return None
        level = nxt
    return seen


@dataclass(frozen=True)
class ComplexityReport:
    """Measured vs analytic search-space sizes for one graph."""

    graph_name: str
    nodes: int
    #: measured recursion-tree size of the naive search (None = > cap)
    naive_tree: int | None
    #: measured number of unique DP signatures (downsets)
    dp_states: int
    #: analytic bounds
    factorial_bound: float
    dp_bound: float

    @property
    def collapse_factor(self) -> float | None:
        """How many naive partial schedules map onto one DP signature —
        the redundancy Fig 5 highlights."""
        if self.naive_tree is None:
            return None
        return self.naive_tree / self.dp_states


def complexity_of(graph: Graph, naive_cap: int = 5_000_000) -> ComplexityReport:
    n = len(graph)
    return ComplexityReport(
        graph_name=graph.name,
        nodes=n,
        naive_tree=naive_recursion_size(graph, cap=naive_cap),
        dp_states=count_downsets(graph) or -1,
        factorial_bound=math.factorial(n) if n < 171 else math.inf,
        dp_bound=n * 2.0**n,
    )
