"""Fig 3(b): the schedule-space peak-memory CDF for SwiftNet Cell A.

Paper: only 4.1 % of schedules meet the SparkFun Edge's 250 KB and
0.04 % are optimal. The reproducible shape: feasible-fraction under a
tight (1.25x-optimal) budget is a small minority, and optimal schedules
are rare.
"""

from repro.experiments import fig3_cdf


def test_fig3_schedule_space_cdf(benchmark, save_result):
    result = benchmark.pedantic(
        fig3_cdf.run,
        kwargs={"cell_key": "swiftnet-a", "samples": 4000},
        rounds=1,
        iterations=1,
    )
    save_result("fig03_cdf", fig3_cdf.render(result))

    cdf = result.cdf
    # optimal is rare: under 5% of sampled schedules achieve it
    assert result.fraction_optimal < 0.05
    # the matched relative budget (1.25x optimal, = the paper's 250KB
    # relative to its cell) admits only a minority of schedules
    assert cdf.fraction_within(1.25 * result.optimal_bytes) < 0.5
    # no sampled schedule beats the DP optimum (Theorem 1, in the wild)
    assert cdf.optimal_bytes >= result.optimal_bytes
    # the spread is wide — the figure's motivation
    assert cdf.worst_bytes > 1.5 * result.optimal_bytes
