"""The unified compile pipeline: graph in, :class:`CompiledModel` out.

This is the one front door to everything the compiler side can do.
``CompilationPipeline.compile`` composes, in order:

1. **strategy execution** — any strategy from
   :mod:`repro.scheduler.registry` (rewriting, when the strategy
   declares it, happens inside :func:`~repro.scheduler.registry.run_strategy`),
   served from the persistent :class:`~repro.scheduler.cache.ScheduleCache`
   when a valid entry exists for ``(graph_signature, strategy key)``;
2. **allocation planning** — byte offsets for every buffer under the
   chosen arena allocator, overlap-validated;
3. **validation** — the schedule is checked as a topological order of
   the scheduled graph, and (optionally) the compiled plan is executed
   and compared bitwise against the reference executor;

and freezes the result into a :class:`CompiledModel` artifact that
``serenity run`` (or any future runtime) can execute as-is. Because
cache keys are shared with the :class:`~repro.scheduler.portfolio.PortfolioCompiler`,
a batch compilation warms the cache for subsequent artifact builds and
vice versa.
"""

from __future__ import annotations

import time
from typing import Any

from repro.allocator.arena import plan_allocation
from repro.compiler.model import CompiledModel
from repro.graph.graph import Graph
from repro.graph.serialization import graph_signature
from repro.scheduler.cache import ScheduleCache
from repro.scheduler.device import DeviceSpec
from repro.scheduler.memory import BufferModel
from repro.scheduler.portfolio import outcome_from_cache, store_outcome
from repro.scheduler.registry import StrategyOutcome, get_strategy, run_strategy
from repro.scheduler.serenity import SerenityReport

__all__ = ["CompilationPipeline", "compiled_model_from_report"]


class CompilationPipeline:
    """Compile graphs into frozen, executable :class:`CompiledModel`\\ s.

    Parameters
    ----------
    strategy:
        Registry name of the scheduling strategy (default ``serenity``,
        the paper's full pipeline).
    allocator:
        Arena offset allocator: ``first_fit`` (TFLite simple arena) or
        ``greedy_by_size``.
    device:
        Optional deployment target; recorded in the artifact and used
        for the ``fits`` verdict in the metadata.
    cache:
        A :class:`ScheduleCache` to serve/record schedules, or ``None``
        to always compile fresh.
    verify:
        When true, every compiled plan is executed on random inputs and
        compared bitwise against the reference executor before the
        artifact is returned (slow; off by default).
    """

    def __init__(
        self,
        strategy: str = "serenity",
        *,
        allocator: str = "first_fit",
        device: DeviceSpec | None = None,
        cache: ScheduleCache | None = None,
        verify: bool = False,
    ) -> None:
        self.spec = get_strategy(strategy)  # fail fast on unknown names
        self.allocator = allocator
        self.device = device
        self.cache = cache
        self.verify = verify

    # ------------------------------------------------------------------
    def compile(self, graph: Graph) -> CompiledModel:
        """Run the full pipeline on ``graph``."""
        graph.validate()
        t0 = time.perf_counter()
        signature = graph_signature(graph)

        outcome: StrategyOutcome | None = None
        if self.cache is not None:
            def rewritten() -> Graph:
                from repro.rewriting.rewriter import rewrite_graph

                return rewrite_graph(graph).graph

            outcome = outcome_from_cache(
                self.cache, self.spec, signature, graph, rewritten
            )
        if outcome is None:
            outcome = run_strategy(self.spec.name, graph)
            if self.cache is not None:
                store_outcome(self.cache, signature, self.spec, outcome)

        model = self._freeze(
            graph_sig=signature,
            outcome=outcome,
            source_nodes=len(graph),
            compile_time_s=time.perf_counter() - t0,
        )
        if self.verify:
            self._verify(model)
        return model

    # ------------------------------------------------------------------
    def _freeze(
        self,
        graph_sig: str,
        outcome: StrategyOutcome,
        source_nodes: int,
        compile_time_s: float,
    ) -> CompiledModel:
        target = outcome.scheduled_graph
        outcome.schedule.validate(target)
        buffers = BufferModel.of(target)
        plan = plan_allocation(
            target, outcome.schedule, strategy=self.allocator, model=buffers
        )
        meta: dict[str, Any] = {
            "allocator": self.allocator,
            "cached": outcome.cached,
            "peak_bytes": outcome.peak_bytes,
            "schedule_time_s": outcome.time_s,
            "compile_time_s": compile_time_s,
            "source_nodes": source_nodes,
            "nodes": len(target),
            # batched serving provisions batch_size x this figure: the
            # strided batch layout repeats the per-sample plan per row
            "arena_bytes_per_sample": plan.arena_bytes,
        }
        if self.device is not None:
            meta["fits"] = plan.arena_bytes <= self.device.sram_bytes
        return CompiledModel(
            graph=target,
            schedule=outcome.schedule,
            plan=plan,
            source_signature=graph_sig,
            signature=(
                graph_sig if not self.spec.rewrites else graph_signature(target)
            ),
            strategy=self.spec.name,
            device=self.device,
            meta=meta,
        )

    def _verify(self, model: CompiledModel) -> None:
        from repro.exceptions import ExecutionError
        from repro.runtime.verify import verify_execution

        report = verify_execution(model)
        if not report:
            raise ExecutionError(
                f"compiled plan for {model.graph.name!r} diverges from the "
                f"reference executor (max abs error {report.max_abs_error:g})"
            )


def compiled_model_from_report(
    report: SerenityReport,
    *,
    allocator: str = "first_fit",
    device: DeviceSpec | None = None,
) -> CompiledModel:
    """Freeze an existing :class:`SerenityReport` into an artifact.

    Lets the experiment harnesses (which need the report's search
    statistics and baselines) export the same deployment artifact the
    :class:`CompilationPipeline` produces, without recompiling.
    """
    target = report.scheduled_graph
    buffers = BufferModel.of(target)
    plan = plan_allocation(target, report.schedule, strategy=allocator, model=buffers)
    meta: dict[str, Any] = {
        "allocator": allocator,
        "cached": report.from_cache,
        "peak_bytes": report.peak_bytes,
        "schedule_time_s": report.scheduling_time_s,
        "rewrite_count": report.rewrite_count,
        "source_nodes": len(report.graph),
        "nodes": len(target),
    }
    if device is not None:
        meta["fits"] = plan.arena_bytes <= device.sram_bytes
    return CompiledModel(
        graph=target,
        schedule=report.schedule,
        plan=plan,
        source_signature=graph_signature(report.graph),
        signature=graph_signature(target),
        strategy="serenity" if report.config.rewrite else "serenity-dp",
        device=device,
        meta=meta,
    )
