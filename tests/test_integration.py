"""End-to-end integration across subsystems.

Whole-network compilations, cross-subsystem consistency (scheduler ↔
allocator ↔ memsim ↔ executor), quantised and alternative-generator
variants — the paths a downstream user actually strings together.
"""

import pytest

from repro import (
    DeviceSpec,
    Serenity,
    SerenityConfig,
    cast_graph,
    fit_to_device,
    kahn_schedule,
    offchip_traffic,
    simulate_schedule,
    verify_rewrite,
)
from repro.models import randwire_stage, swiftnet_hpd
from repro.rewriting import rewrite_graph


@pytest.fixture(scope="module")
def hpd_report():
    return Serenity(SerenityConfig(max_states_per_step=20_000)).compile(
        swiftnet_hpd()
    )


class TestFullSwiftNet:
    def test_pipeline_reduces_peak(self, hpd_report):
        assert hpd_report.reduction_with_alloc > 1.5

    def test_rewrites_fired_in_every_cell(self, hpd_report):
        assert hpd_report.rewrite_count == 6  # 2 patterns x 3 cells

    def test_partitioned_into_many_segments(self, hpd_report):
        assert hpd_report.divide is not None
        assert len(hpd_report.divide.partition_sizes) >= 3

    def test_schedule_simulates_to_reported_peak(self, hpd_report):
        sim = simulate_schedule(
            hpd_report.scheduled_graph, hpd_report.schedule, validate=True
        )
        assert sim.peak_bytes == hpd_report.peak_bytes

    def test_rewrite_of_full_network_is_identity(self):
        g = swiftnet_hpd()
        res = rewrite_graph(g)
        report = verify_rewrite(g, res)
        assert report.equivalent
        assert report.max_abs_error < 1e-9

    def test_traffic_improves_at_256kb(self, hpd_report):
        g = hpd_report.graph
        base = offchip_traffic(g, kahn_schedule(g), 256 * 1024).total_bytes
        ours = offchip_traffic(
            hpd_report.scheduled_graph, hpd_report.schedule, 256 * 1024
        ).total_bytes
        assert ours < base

    def test_int8_fits_a_quarter_budget(self, hpd_report):
        g8 = cast_graph(swiftnet_hpd(), "int8")
        fp32_arena = hpd_report.arena_bytes
        fit = fit_to_device(
            g8, DeviceSpec("quarter", fp32_arena // 3), max_states_per_step=20_000
        )
        assert fit.fits


class TestAlternativeGenerators:
    @pytest.mark.parametrize("generator", ["er", "ba"])
    def test_full_pipeline_on_other_random_families(self, generator):
        g = randwire_stage(n=14, channels=8, hw=8, generator=generator, seed=2)
        rep = Serenity(SerenityConfig(max_states_per_step=20_000)).compile(g)
        rep.schedule.validate(rep.scheduled_graph)
        assert rep.peak_bytes <= rep.baseline_peak_bytes
        assert rep.rewrite_count == 0  # no concats in RandWire units


class TestCrossSubsystemConsistency:
    def test_arena_never_below_sum_of_live(self, hpd_report):
        assert hpd_report.arena_bytes >= hpd_report.peak_bytes

    def test_trace_final_footprint_is_outputs(self, hpd_report):
        trace = hpd_report.trace()
        g = hpd_report.scheduled_graph
        from repro.scheduler.memory import BufferModel

        model = BufferModel.of(g)
        persistent = sum(
            model.buf_size[b]
            for b in range(model.n_buffers)
            if model.buf_persistent[b]
        )
        assert trace.final_bytes == persistent

    def test_quantized_graph_full_pipeline(self):
        g8 = cast_graph(swiftnet_hpd(), "int8")
        rep = Serenity(SerenityConfig(max_states_per_step=20_000)).compile(g8)
        assert rep.peak_bytes * 4 == pytest.approx(
            Serenity(SerenityConfig(max_states_per_step=20_000))
            .compile(swiftnet_hpd())
            .peak_bytes,
            rel=1e-12,
        )

    def test_serialization_round_trip_preserves_scheduling(self, tmp_path):
        from repro.graph import load_graph, save_graph
        g = swiftnet_hpd()
        path = tmp_path / "hpd.json"
        save_graph(g, path)
        g2 = load_graph(path)
        from repro.scheduler.divide import DivideAndConquerScheduler

        p1 = DivideAndConquerScheduler().schedule(g).peak_bytes
        p2 = DivideAndConquerScheduler().schedule(g2).peak_bytes
        assert p1 == p2
