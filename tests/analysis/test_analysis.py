"""Analysis utilities: CDFs, network stats, Pareto data, reporting."""

import numpy as np
import pytest

from repro.analysis.cdf import (
    SPARKFUN_EDGE_BYTES,
    enumerate_peak_cdf,
    sample_peak_cdf,
)
from repro.analysis.netstats import network_stats
from repro.analysis.pareto import (
    IMAGENET_POINTS,
    ModelPoint,
    dominance_summary,
    pareto_frontier,
)
from repro.analysis.reporting import format_kib, format_table, geomean, ratio_str


class TestCDF:
    def test_enumerate_matches_manual(self, diamond_graph):
        from repro.scheduler.memory import peak_of
        from repro.scheduler.topological import iter_topological_orders
        from repro.scheduler.schedule import Schedule

        cdf = enumerate_peak_cdf(diamond_graph)
        manual = sorted(
            peak_of(diamond_graph, Schedule(o))
            for o in iter_topological_orders(diamond_graph)
        )
        assert list(cdf.peaks) == manual
        assert cdf.exhaustive

    def test_sample_deterministic(self, hourglass_graph):
        a = sample_peak_cdf(hourglass_graph, samples=50, seed=1)
        b = sample_peak_cdf(hourglass_graph, samples=50, seed=1)
        assert np.array_equal(a.peaks, b.peaks)

    def test_fraction_within_monotone(self, hourglass_graph):
        cdf = sample_peak_cdf(hourglass_graph, samples=100, seed=0)
        assert cdf.fraction_within(cdf.worst_bytes) == 1.0
        assert cdf.fraction_within(0) == 0.0
        assert 0 < cdf.fraction_optimal() <= 1.0

    def test_cdf_points_cover_unit_interval(self, diamond_graph):
        cdf = enumerate_peak_cdf(diamond_graph)
        pts = cdf.cdf_points(resolution=5)
        assert pts[0][1] == 0.0 and pts[-1][1] == 1.0

    def test_limit_respected(self, hourglass_graph):
        cdf = enumerate_peak_cdf(hourglass_graph, limit=7)
        assert cdf.n == 7
        assert not cdf.exhaustive

    def test_sparkfun_constant(self):
        assert SPARKFUN_EDGE_BYTES == 250 * 1024


class TestNetworkStats:
    def test_counts_on_known_graph(self, chain_graph):
        stats = network_stats(chain_graph)
        assert stats.nodes == len(chain_graph)
        assert stats.edges == chain_graph.num_edges
        assert stats.sources == 1 and stats.sinks == 1

    def test_macs_match_registry_sum(self, concat_conv_graph):
        from repro.ops import macs_of

        stats = network_stats(concat_conv_graph)
        assert stats.macs == sum(
            macs_of(concat_conv_graph, n) for n in concat_conv_graph
        )

    def test_unit_properties(self, chain_graph):
        stats = network_stats(chain_graph)
        assert stats.macs_m == stats.macs / 1e6
        assert stats.weights_k == stats.weights / 1e3


class TestPareto:
    def test_frontier_no_dominated_point(self):
        frontier = pareto_frontier(list(IMAGENET_POINTS))
        for p in frontier:
            assert not any(
                q.macs_b <= p.macs_b and q.top1 > p.top1 for q in IMAGENET_POINTS
            )

    def test_synthetic_frontier(self):
        pts = [
            ModelPoint("a", 1.0, 1.0, 70.0, False),
            ModelPoint("b", 2.0, 1.0, 75.0, True),
            ModelPoint("c", 2.0, 1.0, 72.0, False),  # dominated by b
        ]
        names = {p.name for p in pareto_frontier(pts)}
        assert names == {"a", "b"}

    def test_summary_majority_irregular(self):
        s = dominance_summary()
        assert s["irregular_share"] >= 0.5  # the paper's Fig 2 claim

    def test_params_axis_same_trend(self):
        """Fig 14(b): the parameter axis 'displays a similar trend' —
        irregular networks hold a large frontier share and own the
        highest-accuracy frontier point."""
        s = dominance_summary(axis="params")
        assert s["irregular_share"] >= 0.4
        frontier = pareto_frontier(list(IMAGENET_POINTS), axis="params")
        best = max(frontier, key=lambda p: p.top1)
        assert best.irregular

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier(list(IMAGENET_POINTS), axis="flops")


class TestReporting:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_format_kib(self):
        assert format_kib(2048) == "2.0KB"

    def test_ratio_str(self):
        assert ratio_str(None) == "N/A"
        assert ratio_str(1.234) == "1.23x"

    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [("1", "2"), ("33", "44")], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to equal width
