"""SERENITY reproduction: memory-aware scheduling of irregularly wired
neural networks for edge devices (Ahn et al., MLSys 2020).

Quickstart
----------
>>> from repro import GraphBuilder, Serenity
>>> b = GraphBuilder("tiny")
>>> x = b.input("x", (8, 16, 16))
>>> l = b.conv2d(x, 8, kernel=3); r = b.conv2d(x, 8, kernel=3)
>>> y = b.concat([l, r])
>>> report = Serenity().compile(b.build())
>>> report.peak_bytes <= report.baseline_peak_bytes
True

The public surface re-exports the main types; see DESIGN.md for the
module map and EXPERIMENTS.md for the paper-reproduction results.
"""

from repro.exceptions import (
    AdmissionError,
    AllocationError,
    BudgetSearchError,
    CycleError,
    ExecutionError,
    GraphError,
    InvalidScheduleError,
    NoSolutionError,
    ReproError,
    RewriteError,
    SchedulingError,
    ServingError,
    ShapeError,
    StepTimeoutError,
    UnknownOpError,
)
from repro.graph import (
    DType,
    Graph,
    GraphBuilder,
    GraphIndex,
    MemorySemantics,
    Node,
    TensorSpec,
    find_cut_nodes,
    load_graph,
    partition_at_cuts,
    save_graph,
)
from repro.scheduler import (
    SPARKFUN_EDGE,
    AdaptiveSoftBudgetScheduler,
    DeviceSpec,
    anneal_schedule,
    fit_to_device,
    BufferModel,
    DivideAndConquerScheduler,
    DPScheduler,
    MemoryTrace,
    Schedule,
    Serenity,
    SerenityConfig,
    SerenityReport,
    brute_force_schedule,
    dfs_schedule,
    dp_schedule,
    greedy_schedule,
    kahn_schedule,
    peak_of,
    random_topological,
    schedule_graph,
    simulate_schedule,
)
from repro.allocator import arena_peak_bytes, plan_allocation
from repro.analysis import cast_graph
from repro.compiler import CompilationPipeline, CompiledModel
from repro.memsim import offchip_traffic
from repro.rewriting import IdentityGraphRewriter, rewrite_graph
from repro.runtime import Executor, PlanExecutor, verify_execution, verify_rewrite
from repro.serving import ArenaPool, ModelRegistry, RequestScheduler

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "Graph",
    "GraphBuilder",
    "GraphIndex",
    "Node",
    "MemorySemantics",
    "TensorSpec",
    "DType",
    "find_cut_nodes",
    "partition_at_cuts",
    "save_graph",
    "load_graph",
    # scheduling
    "Schedule",
    "BufferModel",
    "MemoryTrace",
    "simulate_schedule",
    "peak_of",
    "kahn_schedule",
    "dfs_schedule",
    "random_topological",
    "greedy_schedule",
    "brute_force_schedule",
    "DPScheduler",
    "dp_schedule",
    "AdaptiveSoftBudgetScheduler",
    "DivideAndConquerScheduler",
    "Serenity",
    "SerenityConfig",
    "SerenityReport",
    "schedule_graph",
    "anneal_schedule",
    "DeviceSpec",
    "fit_to_device",
    "SPARKFUN_EDGE",
    "cast_graph",
    # memory systems
    "arena_peak_bytes",
    "plan_allocation",
    "offchip_traffic",
    # compile pipeline
    "CompilationPipeline",
    "CompiledModel",
    # serving runtime
    "ModelRegistry",
    "ArenaPool",
    "RequestScheduler",
    # rewriting + runtime
    "IdentityGraphRewriter",
    "rewrite_graph",
    "Executor",
    "PlanExecutor",
    "verify_execution",
    "verify_rewrite",
    # exceptions
    "ReproError",
    "GraphError",
    "CycleError",
    "ShapeError",
    "UnknownOpError",
    "SchedulingError",
    "InvalidScheduleError",
    "NoSolutionError",
    "StepTimeoutError",
    "BudgetSearchError",
    "AllocationError",
    "RewriteError",
    "ExecutionError",
    "ServingError",
    "AdmissionError",
]
