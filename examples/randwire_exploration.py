"""RandWire design-space exploration under a memory lens.

Run:  python examples/randwire_exploration.py

Random network generators emit a *distribution* of architectures; this
example asks the systems question the paper poses: how much does the
schedule (and the generator family) change the peak activation memory of
randomly wired networks? For each generator (Watts-Strogatz,
Erdős-Rényi, Barabási-Albert) and several seeds it compares the
TFLite-like baseline order against the DP-optimal schedule, and samples
the schedule-space CDF of one instance (the Fig 3(b) methodology).
"""

from repro import Serenity, SerenityConfig
from repro.analysis.cdf import sample_peak_cdf
from repro.models import randwire_stage


def explore(generator: str, seeds: tuple[int, ...] = (0, 1, 2, 3)) -> None:
    print(f"--- {generator.upper()} graphs "
          f"(n=18 nodes, 8ch @ 16x16) ---")
    print(f"  {'seed':>4}  {'nodes':>5}  {'baseline':>9}  {'optimal':>9}  "
          f"{'reduction':>9}")
    compiler = Serenity(
        SerenityConfig(rewrite=False, max_states_per_step=20_000)
    )
    for seed in seeds:
        g = randwire_stage(
            n=18, channels=8, hw=16, generator=generator, seed=seed
        )
        rep = compiler.compile(g)
        print(
            f"  {seed:>4}  {len(g):>5}  "
            f"{rep.baseline_peak_bytes / 1024:>8.1f}K  "
            f"{rep.peak_bytes / 1024:>8.1f}K  "
            f"{rep.reduction_no_alloc:>8.2f}x"
        )
    print()


def schedule_space(generator: str = "ws", seed: int = 0) -> None:
    g = randwire_stage(n=14, channels=8, hw=16, generator=generator, seed=seed)
    cdf = sample_peak_cdf(g, samples=1500, seed=0)
    rep = Serenity(SerenityConfig(rewrite=False)).compile(g)
    print(f"schedule-space of one {generator.upper()} instance "
          f"({len(g)} nodes, 1500 sampled orders):")
    print(f"  optimal peak (DP)     : {rep.peak_bytes / 1024:7.1f}KB")
    print(f"  best sampled          : {cdf.optimal_bytes / 1024:7.1f}KB")
    print(f"  median sampled        : "
          f"{cdf.peaks[len(cdf.peaks) // 2] / 1024:7.1f}KB")
    print(f"  worst sampled         : {cdf.worst_bytes / 1024:7.1f}KB")
    frac = cdf.fraction_within(1.1 * rep.peak_bytes)
    print(f"  within 1.1x optimal   : {100 * frac:6.2f}% of schedules")


def main() -> None:
    for generator in ("ws", "er", "ba"):
        explore(generator)
    schedule_space()


if __name__ == "__main__":
    main()
