"""Tiered arenas: off-chip-aware serving instead of AdmissionError.

The ISSUE-5 acceptance benchmark. One model whose arena exceeds the
serving budget — exactly the request the pool used to refuse with
:class:`AdmissionError` — is driven through the runtime twice:

* **constrained**: pool budget midway between the schedule's staging
  floor and the planned arena, ``spill=auto`` — admission degrades to
  a spill-planned executor, every response is verified **bitwise**
  against the reference executor, and the measured off-chip traffic is
  recorded in :class:`~repro.memsim.hierarchy.TrafficReport` units;
* **unconstrained**: same workload, no budget — the zero-traffic
  baseline the constrained run is compared against (req/s cost of
  spilling).

An executor-level capacity sweep (100% / 75% / floor of the planned
peak) records the traffic curve, asserting zero bytes at full capacity
and monotonically non-decreasing traffic as capacity shrinks.

Hard assertions:

* ``spill='never'`` still raises :class:`AdmissionError` (with the
  needed-vs-available diagnostic);
* the same admission under ``spill='auto'`` serves every request with
  **zero errors**, **nonzero** measured traffic, and bitwise-verified
  outputs;
* the full-capacity spill plan is trivial: no traffic.

Results land in ``benchmarks/results/BENCH_spill.json`` (traffic
bytes, req/s constrained vs unconstrained) and CI uploads them as an
artifact + step summary like the serving/executor benches.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import AdmissionError
from repro.models.suite import get_cell
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import ModelRegistry, run_load
from repro.serving.pool import ArenaPool

pytestmark = pytest.mark.slow

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REQUESTS = 32 if QUICK else 128
CLIENTS = 4
WORKERS = 2
CELL = "randwire-c10-b"


def build_registry() -> ModelRegistry:
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(get_cell(CELL).factory()), name=CELL)
    return registry


def measure_capacity_sweep(registry: ModelRegistry) -> list[dict]:
    """Executor-level traffic at 100% / 75% / floor capacity, each
    point bitwise-verified against the reference executor."""
    model = registry.get(CELL)
    graph = model.graph
    params = init_params(graph, seed=0)
    ref = Executor(graph, params=params)
    feeds = random_feeds(graph, seed=1)
    want = ref.run(feeds)
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    rows = []
    for label, cap in (
        ("100%", arena),
        ("75%", max(int(arena * 0.75), floor)),
        ("floor", floor),
    ):
        px = model.executor(params=params, capacity_bytes=cap)
        got = px.run(feeds)
        mismatched = sum(
            0 if np.array_equal(want[k], got[k]) else 1 for k in want
        )
        traffic = px.traffic_report()
        rows.append(
            {
                "capacity": label,
                "capacity_bytes": cap,
                "spilled_buffers": len(px.spill.spilled),
                "resident_bytes": px.spill.resident_bytes,
                "traffic_bytes": traffic.total_bytes,
                "fetches": traffic.fetches,
                "writebacks": traffic.writebacks,
                "bitwise_mismatches": mismatched,
            }
        )
    return rows


def run() -> dict:
    registry = build_registry()
    model = registry.get(CELL)
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    budget = (floor + arena) // 2

    # the old behaviour: this admission is refused outright
    admission_error = None
    try:
        ArenaPool(registry, budget).acquire(CELL)
    except AdmissionError as exc:
        admission_error = str(exc)

    sweep = measure_capacity_sweep(registry)

    common = dict(
        requests=REQUESTS,
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=1,
        seed=0,
        preload=True,
    )
    # warm both paths outside the measured window
    run_load(registry, requests=CLIENTS, clients=CLIENTS, workers=WORKERS,
             budget=budget, spill="auto")
    run_load(registry, requests=CLIENTS, clients=CLIENTS, workers=WORKERS)
    constrained = run_load(
        registry, budget=budget, spill="auto", verify=True, **common
    )
    unconstrained = run_load(registry, verify=True, **common)
    return {
        "model": CELL,
        "arena_bytes": arena,
        "floor_bytes": floor,
        "budget_bytes": budget,
        "admission_error": admission_error,
        "sweep": sweep,
        "constrained": constrained,
        "unconstrained": unconstrained,
    }


def render(result: dict) -> str:
    constrained = result["constrained"]
    unconstrained = result["unconstrained"]
    lines = [
        "tiered arenas: off-chip-aware serving instead of AdmissionError "
        f"({'quick' if QUICK else 'full'} mode)",
        "",
        f"model {result['model']}: arena "
        f"{result['arena_bytes'] / 1024:.1f}KB, staging floor "
        f"{result['floor_bytes'] / 1024:.1f}KB, serving budget "
        f"{result['budget_bytes'] / 1024:.1f}KB",
        "",
        "spill='never' (the old behaviour):",
        f"  {result['admission_error']}",
        "",
        "executor-level capacity sweep (bitwise-verified at every point):",
        f"  {'capacity':>9s} {'spilled':>8s} {'resident KB':>12s} "
        f"{'traffic KB':>11s} {'fetch/wb':>9s}",
    ]
    for row in result["sweep"]:
        lines.append(
            f"  {row['capacity']:>9s} {row['spilled_buffers']:>8d}"
            f" {row['resident_bytes'] / 1024:>12.1f}"
            f" {row['traffic_bytes'] / 1024:>11.1f}"
            f" {row['fetches']:>4d}/{row['writebacks']:<4d}"
        )
    lines += [
        "",
        "constrained serving (spill=auto over the same admission):",
        constrained.summary(),
        "",
        "unconstrained serving (no budget):",
        unconstrained.summary(),
        "",
        f"spill cost              : {unconstrained.rps / constrained.rps:9.2f}x "
        "req/s unconstrained vs constrained",
    ]
    return "\n".join(lines)


def payload(result: dict) -> dict:
    """The machine-readable BENCH_spill.json document."""
    constrained = result["constrained"]
    unconstrained = result["unconstrained"]

    def load_doc(report) -> dict:
        return {
            "requests": report.requests,
            "req_per_s": report.rps,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
            "errors": report.errors,
            "verified_bitwise": report.verified,
            "spill": report.spill,
            "spill_bytes": report.spill_bytes,
            "spilled_builds": report.pool.spilled_builds,
            "resident_arena_bytes": report.pool.resident_bytes,
        }

    return {
        "quick": QUICK,
        "model": result["model"],
        "arena_bytes": result["arena_bytes"],
        "floor_bytes": result["floor_bytes"],
        "budget_bytes": result["budget_bytes"],
        "admission_error_without_spill": result["admission_error"],
        "capacity_sweep": result["sweep"],
        "serving": {
            "constrained": load_doc(constrained),
            "unconstrained": load_doc(unconstrained),
        },
        "req_per_s_unconstrained_vs_constrained": (
            unconstrained.rps / constrained.rps if constrained.rps else None
        ),
    }


def test_spill_smoke(benchmark, save_result, save_json):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("spill_smoke", render(result))
    save_json("spill", payload(result))

    # the old behaviour is still the default, with a useful diagnostic
    assert result["admission_error"] is not None
    assert "spill='auto'" in result["admission_error"]

    # capacity sweep: bitwise everywhere, zero traffic at full
    # capacity, non-decreasing traffic as capacity shrinks
    sweep = result["sweep"]
    assert all(row["bitwise_mismatches"] == 0 for row in sweep)
    assert sweep[0]["traffic_bytes"] == 0 and sweep[0]["spilled_buffers"] == 0
    assert sweep[1]["traffic_bytes"] > 0
    traffics = [row["traffic_bytes"] for row in sweep]
    assert traffics == sorted(traffics)
    for row in sweep:
        assert row["resident_bytes"] <= row["capacity_bytes"]

    # the ISSUE-5 acceptance assertion: the admission that raised
    # AdmissionError now serves under spill=auto — zero errors, nonzero
    # measured traffic, every output bitwise the reference executor's
    constrained = result["constrained"]
    assert constrained.errors == 0
    assert constrained.verified is True
    assert constrained.spill_bytes > 0
    assert constrained.pool.spilled_builds >= 1

    unconstrained = result["unconstrained"]
    assert unconstrained.errors == 0
    assert unconstrained.verified is True
    assert unconstrained.spill_bytes == 0
    assert constrained.rps > 0


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
