"""Divide-and-conquer scheduling driver (paper Section 3.2, Fig 7).

Partitions the graph at single-node cuts (see
:mod:`repro.graph.partition`), schedules each segment independently with
the DP — optionally wrapped in adaptive soft budgeting — and
concatenates the per-segment schedules. Because every topological order
of the whole graph schedules all of a cut's ancestors before it and all
descendants after, and only the cut activation crosses the boundary, the
concatenation of optimal segment schedules is an optimal whole-graph
schedule (Wilken et al., 2000); ``tests/scheduler/test_divide.py``
verifies the equality against whole-graph DP on random hourglass graphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.graph.partition import Segment, partition_at_cuts
from repro.scheduler.budget import AdaptiveSoftBudgetScheduler, BudgetSearchResult
from repro.scheduler.dp import DPScheduler
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.schedule import Schedule

__all__ = ["DivideAndConquerScheduler", "DivideAndConquerResult", "SegmentOutcome"]


@dataclass(frozen=True)
class SegmentOutcome:
    """Per-segment scheduling record."""

    segment: Segment
    peak_bytes: int
    states_expanded: int
    wall_time_s: float
    probes: int = 1


@dataclass(frozen=True)
class DivideAndConquerResult:
    schedule: Schedule
    peak_bytes: int
    segments: tuple[SegmentOutcome, ...]
    wall_time_s: float

    @property
    def partition_sizes(self) -> tuple[int, ...]:
        """Owned-node counts per segment — the paper's ``62={21,19,22}``
        notation in Table 2."""
        return tuple(len(s.segment.owned) for s in self.segments)

    @property
    def states_expanded(self) -> int:
        return sum(s.states_expanded for s in self.segments)


@dataclass
class DivideAndConquerScheduler:
    """Schedules segment-by-segment with DP or DP+ASB.

    Parameters
    ----------
    adaptive_budget:
        Wrap each segment's DP in Algorithm 2. Without it segments run
        unpruned Algorithm 1 (the paper's ``1 + 2`` configuration).
    min_segment_nodes:
        Merge boundaries closer than this many nodes.
    """

    adaptive_budget: bool = True
    max_states_per_step: int | None = 50_000
    step_timeout_s: float | None = None
    min_segment_nodes: int = 2
    max_probes: int = 24
    #: restrict partitioning to these cut-node names (e.g. the cell
    #: boundaries of Table 2); None = use every discovered cut
    cut_names: tuple[str, ...] | None = None

    def schedule(self, graph: Graph) -> DivideAndConquerResult:
        t0 = time.perf_counter()
        cuts = None
        if self.cut_names is not None:
            from repro.graph.partition import find_cut_nodes

            wanted = set(self.cut_names)
            cuts = [c for c in find_cut_nodes(graph) if c.name in wanted]
            missing = wanted - {c.name for c in cuts}
            if missing:
                from repro.exceptions import SchedulingError

                raise SchedulingError(
                    f"requested boundaries are not single-node cuts: {sorted(missing)}"
                )
        segments = partition_at_cuts(
            graph, cuts=cuts, min_segment_nodes=self.min_segment_nodes
        )
        outcomes: list[SegmentOutcome] = []
        order: list[str] = []
        peak = 0
        for seg in segments:
            prealloc = (seg.entry,) if seg.entry is not None else ()
            seg_t0 = time.perf_counter()
            if self.adaptive_budget:
                asb = AdaptiveSoftBudgetScheduler(
                    max_states_per_step=self.max_states_per_step,
                    step_timeout_s=self.step_timeout_s,
                    max_probes=self.max_probes,
                    preallocated=prealloc,
                )
                search: BudgetSearchResult = asb.schedule(seg.graph)
                result = search.result
                probes = len(search.probes)
            else:
                result = DPScheduler(preallocated=prealloc).schedule(seg.graph)
                probes = 1
            outcomes.append(
                SegmentOutcome(
                    segment=seg,
                    peak_bytes=result.peak_bytes,
                    states_expanded=result.states_expanded,
                    wall_time_s=time.perf_counter() - seg_t0,
                    probes=probes,
                )
            )
            peak = max(peak, result.peak_bytes)
            # drop the entry stub — it executed as part of the previous
            # segment (combine step of Fig 7)
            order.extend(n for n in result.schedule.order if n != seg.entry)

        schedule = Schedule(tuple(order), graph.name).validate(graph)
        # Cross-check the combine step: the stitched schedule's simulated
        # peak must equal the max of segment peaks.
        sim_peak = simulate_schedule(graph, schedule, validate=False).peak_bytes
        if sim_peak != peak:  # pragma: no cover - internal invariant
            from repro.exceptions import SchedulingError

            raise SchedulingError(
                f"divide-and-conquer combine mismatch: whole-graph peak "
                f"{sim_peak} != max segment peak {peak}"
            )
        return DivideAndConquerResult(
            schedule=schedule,
            peak_bytes=peak,
            segments=tuple(outcomes),
            wall_time_s=time.perf_counter() - t0,
        )
