"""Greedy memory-aware list scheduler (ablation baseline).

At every step, pick the ready node whose execution leaves the lowest
footprint (ties: lowest transient, then original order). Linear-time and
often decent, but — as Fig 3(b)'s long CDF tail implies — it can be far
from optimal on irregular wirings, which is precisely why the paper
builds the DP. Included to quantify that gap in the benchmarks.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.graph.analysis import bits
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["greedy_schedule"]


def greedy_schedule(graph: Graph, model: BufferModel | None = None) -> Schedule:
    model = model or BufferModel.of(graph)
    idx = model.index
    n = idx.n
    scheduled = 0
    mu = 0
    frontier = idx.initial_frontier()
    order: list[str] = []

    for _ in range(n):
        best: tuple[int, int, int] | None = None
        best_u = -1
        for u in bits(frontier):
            transient, after, _ = model.step(scheduled, mu, u)
            key = (after, transient, u)
            if best is None or key < best:
                best = key
                best_u = u
        if best_u < 0:
            raise SchedulingError("graph contains a cycle")  # pragma: no cover
        _, mu, scheduled = model.step(scheduled, mu, best_u)
        order.append(idx.order[best_u])
        frontier &= ~(1 << best_u)
        for s in idx.succs[best_u]:
            if not (idx.preds_mask[s] & ~scheduled):
                frontier |= 1 << s

    return Schedule(tuple(order), graph.name)
