"""Fig 2 / Fig 14: accuracy-vs-compute landscape (quoted literature data).

Renders the scatter data as a table, computes the joint Pareto frontier,
and reports the irregular family's share of it — the quantitative form
of the paper's motivating claim.
"""

from __future__ import annotations

from repro.analysis.pareto import (
    IMAGENET_POINTS,
    dominance_summary,
    pareto_frontier,
)
from repro.analysis.reporting import format_table

__all__ = ["run", "render"]


def run() -> dict:
    frontier = pareto_frontier(list(IMAGENET_POINTS))
    return {
        "points": IMAGENET_POINTS,
        "frontier": frontier,
        "summary": dominance_summary(),
        # Fig 14(b): the parameter-count axis shows the same trend
        "summary_params": dominance_summary(axis="params"),
    }


def render(result: dict) -> str:
    frontier_names = {p.name for p in result["frontier"]}
    body = [
        (
            p.name,
            "irregular" if p.irregular else "regular",
            f"{p.macs_b:.2f}B",
            f"{p.params_m:.1f}M",
            f"{p.top1:.1f}%",
            "*" if p.name in frontier_names else "",
        )
        for p in sorted(result["points"], key=lambda p: p.macs_b)
    ]
    s = result["summary"]
    sp = result["summary_params"]
    table = format_table(
        ("model", "family", "MACs", "params", "top-1", "Pareto"),
        body,
        title="Fig 2 / Fig 14 - ImageNet accuracy vs compute (quoted data)",
    )
    return (
        table
        + "\n\n"
        + f"Pareto frontier (MACs axis):   {s['frontier_size']} models, "
        + f"{s['irregular_on_frontier']} irregular "
        + f"({100 * s['irregular_share']:.0f}%)\n"
        + f"Pareto frontier (params axis): {sp['frontier_size']} models, "
        + f"{sp['irregular_on_frontier']} irregular "
        + f"({100 * sp['irregular_share']:.0f}%) — "
        + "irregular networks dominate the compute axis and hold the "
        + "high-accuracy end of the parameter axis (Fig 14)."
    )


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
