"""Exception hierarchy and carried diagnostics."""

import pytest

from repro.exceptions import (
    AllocationError,
    BudgetSearchError,
    CycleError,
    ExecutionError,
    GraphError,
    InvalidScheduleError,
    NoSolutionError,
    ReproError,
    RewriteError,
    SchedulingError,
    ShapeError,
    StepTimeoutError,
    UnknownOpError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            CycleError,
            ShapeError,
            UnknownOpError,
            SchedulingError,
            InvalidScheduleError,
            NoSolutionError,
            StepTimeoutError,
            BudgetSearchError,
            AllocationError,
            RewriteError,
            ExecutionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_family(self):
        assert issubclass(CycleError, GraphError)
        assert issubclass(ShapeError, GraphError)
        assert issubclass(UnknownOpError, GraphError)

    def test_scheduling_family(self):
        assert issubclass(NoSolutionError, SchedulingError)
        assert issubclass(StepTimeoutError, SchedulingError)
        assert issubclass(InvalidScheduleError, SchedulingError)
        assert issubclass(BudgetSearchError, SchedulingError)


class TestDiagnostics:
    def test_no_solution_carries_budget(self):
        err = NoSolutionError(12345)
        assert err.budget == 12345
        assert "12345" in str(err)

    def test_no_solution_custom_message(self):
        err = NoSolutionError(1, "custom")
        assert str(err) == "custom"

    def test_step_timeout_carries_step_and_states(self):
        err = StepTimeoutError(step=7, states=999)
        assert err.step == 7 and err.states == 999
        assert "7" in str(err) and "999" in str(err)

    def test_catching_base_class(self, concat_conv_graph):
        from repro.scheduler.dp import dp_schedule

        with pytest.raises(ReproError):
            dp_schedule(concat_conv_graph, budget=1)
