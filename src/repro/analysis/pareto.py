"""Accuracy-vs-compute landscape of Fig 2 / Fig 14.

The scatter compares irregularly wired networks against hand-designed
regular ones on ImageNet. The points are *quoted from the literature*
(the paper itself plots published numbers; no training happens in either
work), so this module is a data table plus the Pareto-frontier analysis
that supports the paper's claim: the irregular family dominates the
regular family at equal compute.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelPoint", "IMAGENET_POINTS", "pareto_frontier", "dominance_summary"]


@dataclass(frozen=True)
class ModelPoint:
    """One published ImageNet model."""

    name: str
    macs_b: float  # billions of multiply-accumulates
    params_m: float  # millions of parameters
    top1: float  # ImageNet top-1 accuracy (%)
    irregular: bool  # NAS / random generator family?


#: Published (MACs, params, top-1) triples as plotted in Fig 2/14.
IMAGENET_POINTS: tuple[ModelPoint, ...] = (
    ModelPoint("Inception V1", 1.5, 6.6, 69.8, False),
    ModelPoint("MobileNet", 0.57, 4.2, 70.6, False),
    ModelPoint("ShuffleNet", 0.52, 5.4, 73.7, False),
    ModelPoint("Inception V2", 2.0, 11.2, 74.8, False),
    ModelPoint("Inception V3", 5.7, 23.8, 78.8, False),
    ModelPoint("Xception", 8.4, 22.8, 79.0, False),
    ModelPoint("ResNet-152", 11.3, 60.2, 77.8, False),
    ModelPoint("Inception ResNet V2", 13.2, 55.8, 80.1, False),
    ModelPoint("Inception V4", 12.3, 42.7, 80.0, False),
    ModelPoint("PolyNet", 34.7, 92.0, 81.3, False),
    ModelPoint("ReNeXt-101", 31.5, 83.6, 80.9, False),
    ModelPoint("SENet", 42.3, 145.8, 82.7, False),
    ModelPoint("DPN-131", 32.0, 79.5, 81.5, False),
    ModelPoint("NASNet-A", 23.8, 88.9, 82.7, True),
    ModelPoint("NASNet-B", 0.49, 5.3, 72.8, True),
    ModelPoint("AmoebaNet-A", 23.1, 86.7, 82.8, True),
    ModelPoint("AmoebaNet-B", 0.56, 5.3, 74.0, True),
    ModelPoint("RandWire (small)", 0.58, 5.6, 74.7, True),
    ModelPoint("RandWire (large)", 7.9, 61.5, 81.6, True),
)


def pareto_frontier(
    points: list[ModelPoint], axis: str = "macs"
) -> list[ModelPoint]:
    """Points not dominated in (lower cost, higher top-1).

    ``axis`` selects the cost dimension: ``macs`` (Fig 2 / Fig 14(a))
    or ``params`` (Fig 14(b) — "plot for number of parameters displays
    a similar trend").
    """
    if axis == "macs":
        cost = lambda p: p.macs_b  # noqa: E731
    elif axis == "params":
        cost = lambda p: p.params_m  # noqa: E731
    else:
        raise ValueError(f"unknown Pareto axis {axis!r}")
    frontier = []
    for p in points:
        if not any(
            (cost(q) <= cost(p) and q.top1 > p.top1)
            or (cost(q) < cost(p) and q.top1 >= p.top1)
            for q in points
        ):
            frontier.append(p)
    return sorted(frontier, key=cost)


def dominance_summary(
    points: tuple[ModelPoint, ...] = IMAGENET_POINTS, axis: str = "macs"
) -> dict[str, float]:
    """How much of the joint Pareto frontier the irregular family owns —
    the quantitative form of Fig 2's claim (and Fig 14(b)'s, with
    ``axis='params'``)."""
    frontier = pareto_frontier(list(points), axis=axis)
    irregular = [p for p in frontier if p.irregular]
    return {
        "frontier_size": len(frontier),
        "irregular_on_frontier": len(irregular),
        "irregular_share": len(irregular) / len(frontier),
    }
