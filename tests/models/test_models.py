"""Model zoo: structure, determinism, paper-matched facts."""

import pytest

from repro.graph.partition import find_cut_nodes, partition_at_cuts
from repro.models.darts import DARTS_V2_NORMAL, darts_normal_cell
from repro.models.nasnet import nasnet_a_cell
from repro.models.randwire import random_dag, randwire_stage
from repro.models.suite import BENCHMARK_SUITE, get_cell, suite_cells
from repro.models.swiftnet import (
    SWIFTNET_PARTITION,
    swiftnet_cell_a,
    swiftnet_cell_b,
    swiftnet_cell_c,
    swiftnet_hpd,
)
from repro.rewriting.rewriter import rewrite_graph


class TestSwiftNet:
    def test_cell_node_counts(self):
        assert len(swiftnet_cell_a()) == 21
        assert len(swiftnet_cell_b()) == 20  # 19 owned + boundary stub
        assert len(swiftnet_cell_c()) == 23  # 22 owned + boundary stub

    def test_full_network_62_nodes(self):
        assert len(swiftnet_hpd()) == 62

    def test_table2_partition(self):
        """62 = {21, 19, 22} at the two cell boundaries."""
        g = swiftnet_hpd()
        segs = partition_at_cuts(
            g,
            cuts=[
                c
                for c in find_cut_nodes(g)
                if c.name in ("A/tail_dw", "B/tail_pw")
            ],
            min_segment_nodes=2,
        )
        assert tuple(len(s.owned) for s in segs) == SWIFTNET_PARTITION

    def test_cell_boundaries_are_cuts(self):
        g = swiftnet_hpd()
        cuts = {c.name for c in find_cut_nodes(g)}
        assert {"A/tail_dw", "B/tail_pw"} <= cuts

    def test_rewriting_fires_on_every_cell(self):
        for factory in (swiftnet_cell_a, swiftnet_cell_b, swiftnet_cell_c):
            res = rewrite_graph(factory())
            assert res.applied == 2  # one channel-wise + one kernel-wise

    def test_cells_stack_shape_compatible(self):
        a = swiftnet_cell_a()
        out_a = a.node(a.sinks[0]).output.shape
        b = swiftnet_cell_b(out_a)
        out_b = b.node(b.sinks[0]).output.shape
        swiftnet_cell_c(out_b)

    def test_concats_marked_as_views(self):
        g = swiftnet_cell_a()
        cats = [n for n in g if n.op == "concat"]
        assert cats and all(c.memory.view for c in cats)

    def test_graphs_validate(self):
        for factory in (
            swiftnet_cell_a,
            swiftnet_cell_b,
            swiftnet_cell_c,
            swiftnet_hpd,
        ):
            factory().validate()


class TestDARTS:
    def test_genotype_is_published_v2(self):
        ops = [op for op, _ in DARTS_V2_NORMAL]
        assert ops.count("sep_conv_3x3") == 5
        assert ops.count("skip_connect") == 2
        assert ops.count("dil_conv_3x3") == 1

    def test_two_inputs(self):
        g = darts_normal_cell()
        assert g.input_nodes == ["c_km2", "c_km1"]

    def test_concat_is_sink_so_no_rewrites(self):
        g = darts_normal_cell()
        assert rewrite_graph(g).applied == 0

    def test_intermediate_states_concatenated(self):
        g = darts_normal_cell(channels=16, hw=8)
        out = g.node("cell_out")
        assert out.op == "concat"
        assert out.output.shape == (64, 8, 8)  # 4 states x 16 channels

    def test_rounds_scale_node_count(self):
        one = darts_normal_cell(rounds=1)
        two = darts_normal_cell(rounds=2)
        assert len(two) > len(one)

    def test_skip_connect_feeds_add_directly(self):
        g = darts_normal_cell()
        # node 4's second op and node 5's first op are skips of s0
        add4 = g.node("n4/add")
        assert "pre0/conv" in add4.inputs

    def test_validates(self):
        darts_normal_cell().validate()


class TestRandWire:
    def test_dag_acyclic_and_seeded(self):
        import networkx as nx

        d1 = random_dag(16, "ws", seed=3)
        d2 = random_dag(16, "ws", seed=3)
        assert nx.is_directed_acyclic_graph(d1)
        assert set(d1.edges) == set(d2.edges)

    def test_different_seeds_differ(self):
        d1 = random_dag(16, "ws", seed=1)
        d2 = random_dag(16, "ws", seed=2)
        assert set(d1.edges) != set(d2.edges)

    @pytest.mark.parametrize("gen", ["ws", "er", "ba"])
    def test_generators_supported(self, gen):
        g = randwire_stage(n=10, channels=4, hw=8, generator=gen, seed=0)
        g.validate()

    def test_unknown_generator(self):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            random_dag(8, "zz", seed=0)

    def test_stage_deterministic(self):
        a = randwire_stage(n=12, channels=4, hw=8, seed=5)
        b = randwire_stage(n=12, channels=4, hw=8, seed=5)
        assert a == b

    def test_no_concat_so_rewriting_is_noop(self):
        g = randwire_stage(n=12, channels=4, hw=8, seed=5)
        assert rewrite_graph(g).applied == 0

    def test_single_sink_projection(self):
        g = randwire_stage(n=12, channels=4, hw=8, seed=5)
        assert g.sinks == ["out/proj"]


class TestNASNet:
    def test_builds_and_validates(self):
        nasnet_a_cell(channels=8, hw=8).validate()

    def test_concat_collects_loose_states(self):
        g = nasnet_a_cell(channels=8, hw=8)
        assert g.node("cell_out").op == "concat"


class TestSuite:
    def test_nine_cells_in_paper_order(self):
        keys = [c.key for c in suite_cells()]
        assert keys == [
            "darts-normal",
            "swiftnet-a",
            "swiftnet-b",
            "swiftnet-c",
            "randwire-c10-a",
            "randwire-c10-b",
            "randwire-c100-a",
            "randwire-c100-b",
            "randwire-c100-c",
        ]

    def test_paper_ratios_consistent_with_raw_kb(self):
        for spec in suite_cells():
            assert spec.paper_ratio_dp == pytest.approx(
                spec.paper_tflite_kb / spec.paper_dp_kb
            )
            assert spec.paper_ratio_gr >= spec.paper_ratio_dp - 1e-9

    def test_factories_produce_valid_graphs(self):
        for spec in suite_cells():
            spec.factory().validate()

    def test_get_cell_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark cell"):
            get_cell("bogus")

    def test_registry_is_keyed_consistently(self):
        for key, spec in BENCHMARK_SUITE.items():
            assert spec.key == key
