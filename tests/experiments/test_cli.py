"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swiftnet-a" in out and "fig10" in out

    def test_schedule_cell(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c"]) == 0
        out = capsys.readouterr().out
        assert "SERENITY peak" in out and "reduction" in out

    def test_schedule_no_rewrite(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c", "--no-rewrite"]) == 0
        assert "rewrites applied        : 0" in capsys.readouterr().out

    def test_schedule_show_schedule(self, capsys):
        assert (
            main(["schedule", "--cell", "swiftnet-c", "--show-schedule"]) == 0
        )
        assert "schedule:" in capsys.readouterr().out

    def test_schedule_saved_graph(self, tmp_path, capsys, diamond_graph):
        from repro.graph.serialization import save_graph

        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert main(["schedule", "--graph", str(path)]) == 0
        assert "diamond" in capsys.readouterr().out

    def test_schedule_requires_source(self, capsys):
        assert main(["schedule"]) == 2

    def test_compile_batch_cells(self, tmp_path, capsys):
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--cell", "swiftnet-b",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "portfolio compilation report" in out
        assert "swiftnet-c" in out and "swiftnet-b" in out
        assert "cache hits 0/12" in out

        # warm rerun through the same cache dir: every lookup hits
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--cell", "swiftnet-b",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "cache hits 12/12 (100.0%)" in capsys.readouterr().out

    def test_compile_batch_device_and_no_cache(self, capsys):
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--device", "SparkFun Edge",
                    "--no-cache",
                    "--strategies", "kahn,greedy,serenity",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deployable on SparkFun Edge: 1/1" in out
        assert "serenity" in out  # cancelled by the budget race

    def test_compile_batch_saved_graph(self, tmp_path, capsys, diamond_graph):
        from repro.graph.serialization import save_graph

        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert (
            main(["compile-batch", "--graph", str(path), "--no-cache"]) == 0
        )
        assert "diamond" in capsys.readouterr().out

    def test_list_includes_strategies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scheduling strategies" in out and "serenity-fast" in out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestServe:
    def test_serve_compiles_cell_through_cache(self, tmp_path, capsys):
        """Cache-served serving startup: `serve --cell` is one command,
        compile-on-miss the first time, cache-served the second."""
        args = [
            "serve", "--cell", "swiftnet-c",
            "--strategy", "greedy",
            "--cache-dir", str(tmp_path / "cache"),
            "--requests", "8", "--clients", "2", "--workers", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "compiled swiftnet-c" in out
        assert "cached schedule" not in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cached schedule" in out
        assert "throughput" in out

    def test_serve_preload_and_verify(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve", "--cell", "swiftnet-c",
                    "--strategy", "greedy", "--no-cache",
                    "--requests", "8", "--clients", "2", "--workers", "2",
                    "--preload", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "preloaded" in out
        assert "bitwise-equal to reference executor" in out

    def test_serve_requires_a_source(self, capsys):
        assert main(["serve"]) == 2
        assert "nothing to serve" in capsys.readouterr().err

    def test_serve_rejects_zero_shards(self, capsys):
        assert (
            main(["serve", "--cell", "swiftnet-c", "--shards", "0"]) == 2
        )
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_serve_rejects_shards_without_reuse(self, capsys):
        assert (
            main(
                ["serve", "--cell", "swiftnet-c", "--shards", "2", "--no-reuse"]
            )
            == 2
        )
        assert "requires arena reuse" in capsys.readouterr().err

    def test_serve_sharded_end_to_end(self, capsys):
        assert (
            main(
                [
                    "serve", "--cell", "swiftnet-c", "--cell", "swiftnet-b",
                    "--strategy", "greedy", "--no-cache",
                    "--requests", "8", "--clients", "2", "--workers", "1",
                    "--shards", "2", "--preload", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 processes, sticky rendezvous routing" in out
        assert "shard 0" in out and "shard 1" in out
        assert "bitwise-equal to reference executor" in out

    def test_bench_serve_rejects_zero_shards(self, capsys):
        assert main(["bench-serve", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err


class TestCompileRun:
    def test_compile_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert (
            main(
                [
                    "compile", "--cell", "swiftnet-c", "-o", str(out),
                    "--strategy", "greedy", "--no-cache",
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "artifact written to" in text and "arena peak" in text
        assert out.exists()

    def test_run_executes_artifact(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        main(["compile", "--cell", "swiftnet-c", "-o", str(out),
              "--strategy", "serenity-fast", "--no-cache"])
        capsys.readouterr()
        assert main(["run", str(out), "--verify"]) == 0
        text = capsys.readouterr().out
        assert "measured high-water mark" in text
        assert "bitwise-equal" in text

    def test_compile_over_budget_exit_code(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        # darts-normal needs ~1.3MB arena; no strategy fits 250KB
        assert (
            main(
                [
                    "compile", "--cell", "darts-normal", "-o", str(out),
                    "--strategy", "kahn", "--no-cache",
                    "--device", "SparkFun Edge",
                ]
            )
            == 1
        )
        assert "OVER BUDGET" in capsys.readouterr().out

    def test_compile_requires_source(self, tmp_path, capsys):
        assert main(["compile", "-o", str(tmp_path / "m.json")]) == 2

    def test_compile_missing_graph_file_clean_error(self, tmp_path, capsys):
        assert (
            main(["compile", "--graph", str(tmp_path / "nope.json"),
                  "-o", str(tmp_path / "m.json")])
            == 2
        )
        assert "cannot load graph" in capsys.readouterr().err

    def test_run_rejects_corrupt_artifact(self, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        main(["compile", "--cell", "swiftnet-c", "-o", str(out),
              "--strategy", "kahn", "--no-cache"])
        capsys.readouterr()
        doc = json.loads(out.read_text())
        doc["graph"]["nodes"][1]["op"] = "relu"  # tamper
        out.write_text(json.dumps(doc))
        assert main(["run", str(out)]) == 2
        assert "cannot load artifact" in capsys.readouterr().err

    def test_compile_uses_schedule_cache(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        args = [
            "compile", "--cell", "swiftnet-c", "-o", str(out),
            "--strategy", "greedy", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cached schedule" in capsys.readouterr().out

    def test_compile_run_across_processes(self, tmp_path):
        """The acceptance criterion: compile in one process, run in a
        genuinely fresh one."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        out = tmp_path / "m.json"
        env = dict(os.environ)
        repo_src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        compile_proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "compile",
             "--cell", "swiftnet-c", "-o", str(out),
             "--strategy", "greedy", "--no-cache"],
            capture_output=True, text=True, env=env,
        )
        assert compile_proc.returncode == 0, compile_proc.stderr
        run_proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", str(out), "--verify"],
            capture_output=True, text=True, env=env,
        )
        assert run_proc.returncode == 0, run_proc.stderr
        assert "bitwise-equal" in run_proc.stdout
        assert "measured high-water mark" in run_proc.stdout


class TestSpillCLI:
    """--capacity/--spill on compile/run, --spill on serve, --policy on
    the experiment path (ISSUE 5)."""

    @pytest.fixture()
    def artifact(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert (
            main(
                [
                    "compile", "--cell", "randwire-c10-b", "-o", str(out),
                    "--strategy", "greedy", "--no-cache",
                ]
            )
            == 0
        )
        capsys.readouterr()
        return out

    @staticmethod
    def _bounds(artifact):
        from repro.compiler import CompiledModel

        model = CompiledModel.load(artifact)
        return model.spill_floor_bytes, model.arena_bytes

    def test_compile_embeds_spill_plan(self, tmp_path, artifact, capsys):
        floor, arena = self._bounds(artifact)
        cap_kib = (floor + arena) / 2 / 1024
        out = tmp_path / "sp.json"
        assert (
            main(
                [
                    "compile", "--cell", "randwire-c10-b", "-o", str(out),
                    "--strategy", "greedy", "--no-cache",
                    "--capacity", f"{cap_kib}",
                ]
            )
            == 0
        )
        assert "spill plan" in capsys.readouterr().out
        from repro.compiler import CompiledModel

        model = CompiledModel.load(out)
        assert len(model.spill_plans) == 1
        assert model.spill_plans[0].capacity_bytes == int(cap_kib * 1024)
        assert not model.spill_plans[0].is_trivial

    def test_compile_below_floor_exits_1(self, tmp_path, artifact, capsys):
        floor, _ = self._bounds(artifact)
        assert (
            main(
                [
                    "compile", "--cell", "randwire-c10-b",
                    "-o", str(tmp_path / "x.json"),
                    "--strategy", "greedy", "--no-cache",
                    "--capacity", f"{(floor - 4096) / 1024}",
                ]
            )
            == 1
        )
        assert "cannot spill-plan" in capsys.readouterr().err

    def test_run_spills_and_verifies(self, artifact, capsys):
        floor, arena = self._bounds(artifact)
        cap_kib = (floor + arena) / 2 / 1024
        assert (
            main(
                ["run", str(artifact), "--capacity", f"{cap_kib}", "--verify"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "off-chip traffic" in out
        assert "bitwise-equal" in out

    def test_run_capacity_zero_rejected(self, artifact, capsys):
        assert main(["run", str(artifact), "--capacity", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_run_spill_never_exits_1(self, artifact, capsys):
        floor, arena = self._bounds(artifact)
        cap_kib = (floor + arena) / 2 / 1024
        assert (
            main(
                [
                    "run", str(artifact),
                    "--capacity", f"{cap_kib}", "--spill", "never",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "bytes short" in err and "--spill auto" in err

    def test_serve_spill_auto_over_tight_budget(self, capsys):
        from repro.compiler import CompilationPipeline
        from repro.models.suite import get_cell

        model = CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        )
        budget_kib = (model.spill_floor_bytes + model.arena_bytes) / 2 / 1024
        assert (
            main(
                [
                    "serve", "--cell", "randwire-c10-b",
                    "--strategy", "greedy", "--no-cache",
                    "--requests", "6", "--clients", "2", "--workers", "1",
                    "--max-batch", "1",
                    "--budget-kb", f"{budget_kib}",
                    "--spill", "auto", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "off-chip spill traffic" in out
        assert "bitwise-equal to reference executor" in out

    def test_experiment_policy_passthrough(self, capsys, monkeypatch):
        import repro.experiments.fig11_offchip as fig11

        calls = {}
        monkeypatch.setattr(
            fig11, "main", lambda policy="belady": calls.setdefault(
                "policy", policy
            )
        )
        assert main(["experiment", "fig11", "--policy", "lru"]) == 0
        assert calls["policy"] == "lru"

    def test_experiment_policy_only_for_fig11(self, capsys):
        assert main(["experiment", "fig10", "--policy", "lru"]) == 2
        assert "--policy only applies to fig11" in capsys.readouterr().err


class TestTileCLI:
    """--tile-bytes through compile/run/serve: tile streaming serves
    capacities whole-buffer staging refuses outright."""

    @pytest.fixture()
    def bounds(self):
        from repro.compiler import CompilationPipeline
        from repro.models.suite import get_cell

        model = CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        )
        floor = model.spill_floor_bytes
        tile_floor = model.spill_floor_for(8192)
        below = max(tile_floor, min(floor - 1, tile_floor * 2))
        assert below < floor, "fixture cell must have tile headroom"
        return below, floor

    def test_compile_run_tiled_below_whole_floor(
        self, tmp_path, bounds, capsys
    ):
        below, _ = bounds
        cap_kib = below / 1024
        out = tmp_path / "tiled.json"
        # whole-buffer staging cannot plan this capacity at all
        assert (
            main(
                [
                    "compile", "--cell", "randwire-c10-b",
                    "-o", str(tmp_path / "x.json"),
                    "--strategy", "greedy", "--no-cache",
                    "--capacity", f"{cap_kib}",
                ]
            )
            == 1
        )
        assert "cannot spill-plan" in capsys.readouterr().err
        # tile streaming plans, embeds, and runs it bitwise
        assert (
            main(
                [
                    "compile", "--cell", "randwire-c10-b", "-o", str(out),
                    "--strategy", "greedy", "--no-cache",
                    "--capacity", f"{cap_kib}", "--tile-bytes", "8192",
                ]
            )
            == 0
        )
        assert "tiles" in capsys.readouterr().out
        from repro.compiler import CompiledModel

        model = CompiledModel.load(out)
        assert len(model.spill_plans) == 1
        assert model.spill_plans[0].tile_bytes == 8192
        assert main(["verify-plan", str(out), "--level", "full"]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "run", str(out), "--capacity", f"{cap_kib}",
                    "--tile-bytes", "8192", "--verify",
                ]
            )
            == 0
        )
        run_out = capsys.readouterr().out
        assert "off-chip traffic" in run_out
        assert "bitwise-equal" in run_out

    def test_serve_tiled_below_whole_floor(self, bounds, capsys):
        below, _ = bounds
        assert (
            main(
                [
                    "serve", "--cell", "randwire-c10-b",
                    "--strategy", "greedy", "--no-cache",
                    "--requests", "6", "--clients", "2", "--workers", "1",
                    "--max-batch", "1",
                    "--budget-kb", f"{below / 1024}",
                    "--spill", "auto", "--tile-bytes", "8192", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "off-chip spill traffic" in out
        assert "bitwise-equal to reference executor" in out

    def test_negative_tile_bytes_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "compile", "--cell", "randwire-c10-b",
                    "-o", str(tmp_path / "x.json"),
                    "--strategy", "greedy", "--no-cache",
                    "--capacity", "64", "--tile-bytes", "-8",
                ]
            )
        assert "tile size must be >= 0" in capsys.readouterr().err


class TestVerifyPlanCLI:
    """`verify-plan`: the static analyzer as a CI gate."""

    @pytest.fixture()
    def artifact(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert (
            main(
                [
                    "compile", "--cell", "swiftnet-c", "-o", str(out),
                    "--strategy", "greedy", "--no-cache",
                ]
            )
            == 0
        )
        capsys.readouterr()
        return out

    @staticmethod
    def _corrupt(artifact, tmp_path):
        import json

        doc = json.loads(artifact.read_text())
        doc["plan"]["arena_bytes"] = int(doc["plan"]["arena_bytes"]) + 4096
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        return bad

    def test_clean_artifact_passes(self, artifact, capsys):
        assert main(["verify-plan", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "1 passed, 0 failed" in out

    def test_corrupt_artifact_exits_1(self, artifact, tmp_path, capsys):
        bad = self._corrupt(artifact, tmp_path)
        assert main(["verify-plan", str(artifact), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "ARENA_PEAK" in out
        assert "1 passed, 1 failed" in out

    def test_unreadable_artifact_exits_2(self, tmp_path, capsys):
        assert main(["verify-plan", str(tmp_path / "missing.json")]) == 2
        assert "cannot read artifact" in capsys.readouterr().err

    def test_json_reports(self, artifact, tmp_path, capsys):
        import json

        bad = self._corrupt(artifact, tmp_path)
        assert main(["verify-plan", "--json", str(artifact), str(bad)]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["ok"] for d in docs] == [True, False]
        assert any(
            diag["code"] == "ARENA_PEAK" for diag in docs[1]["diagnostics"]
        )

    def test_batch_widths_change_the_verdict(self, artifact, tmp_path, capsys):
        import json

        doc = json.loads(artifact.read_text())
        doc["plan"]["arena_bytes"] = int(doc["plan"]["arena_bytes"]) - 1
        bad = tmp_path / "rows.json"
        bad.write_text(json.dumps(doc))
        assert main(["verify-plan", str(bad), "--batch", "8"]) == 1
        assert "ARENA_ROW_OVERLAP" in capsys.readouterr().out
