"""Graph IR: tensors, nodes, DAGs, analysis and partitioning."""

from repro.graph.analysis import GraphIndex, bits, popcount
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph, INPUT_OP
from repro.graph.node import MemorySemantics, Node
from repro.graph.partition import (
    CutPoint,
    Segment,
    find_cut_nodes,
    partition_at_cuts,
)
from repro.graph.serialization import (
    graph_from_dict,
    graph_signature,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.tensor import DType, TensorSpec
from repro.graph.transforms import mark_concat_views

__all__ = [
    "Graph",
    "GraphBuilder",
    "GraphIndex",
    "Node",
    "MemorySemantics",
    "TensorSpec",
    "DType",
    "INPUT_OP",
    "CutPoint",
    "Segment",
    "find_cut_nodes",
    "partition_at_cuts",
    "graph_to_dict",
    "graph_from_dict",
    "graph_signature",
    "save_graph",
    "load_graph",
    "mark_concat_views",
    "bits",
    "popcount",
]
