"""PrefetchPlan: ping/pong staging layout attached to spill plans."""

import dataclasses

import pytest

from repro.allocator.arena import plan_allocation
from repro.allocator.spill import SpillPlan, plan_spill
from repro.exceptions import SpillError
from repro.models.suite import get_cell
from repro.scheduler.registry import run_strategy


@pytest.fixture(scope="module")
def compiled_cell():
    out = run_strategy("greedy", get_cell("randwire-c10-b").factory())
    graph, schedule = out.scheduled_graph, out.schedule
    plan = plan_allocation(graph, schedule)
    return graph, schedule, plan


def _constrained(compiled_cell, **kwargs) -> SpillPlan:
    graph, schedule, plan = compiled_cell
    return plan_spill(
        graph, schedule, plan, int(plan.arena_bytes * 0.6), **kwargs
    )


class TestPrefetchLayout:
    def test_attached_by_default(self, compiled_cell):
        sp = _constrained(compiled_cell)
        assert sp.prefetch is not None
        assert sp.prefetch.lead_steps > 0

    def test_zero_lead_disables(self, compiled_cell):
        sp = _constrained(compiled_cell, prefetch_lead=0)
        assert sp.prefetch is None

    def test_windows_match_base_plan(self, compiled_cell):
        """Prefetch re-places staging slots but never moves the
        (start, end) bounds the planner proved safe."""
        sp = _constrained(compiled_cell)
        p = sp.prefetch
        assert set(p.windows) == set(sp.spilled)
        for b, ws in p.windows.items():
            base = sp.windows[b]
            assert [(w.start, w.end) for w in ws] == [
                (w.start, w.end) for w in base
            ]
            for w in ws:
                assert 0 <= w.offset <= p.resident_bytes

    def test_leads_bounded_and_capacity_respected(self, compiled_cell):
        sp = _constrained(compiled_cell)
        p = sp.prefetch
        assert p.resident_bytes <= sp.capacity_bytes
        assert set(p.window_leads) == set(p.windows)
        for b, leads in p.window_leads.items():
            assert len(leads) == len(p.windows[b])
            assert all(0 <= ld <= p.lead_steps for ld in leads)

    def test_doc_round_trip(self, compiled_cell):
        sp = _constrained(compiled_cell)
        doc = sp.to_doc()
        rebuilt = SpillPlan.from_doc(doc)
        assert rebuilt.prefetch is not None
        assert rebuilt.to_doc() == doc
        assert rebuilt.prefetch.windows == sp.prefetch.windows
        assert rebuilt.prefetch.window_leads == sp.prefetch.window_leads

    def test_validate_rejects_negative_lead(self, compiled_cell):
        sp = _constrained(compiled_cell)
        broken = dataclasses.replace(
            sp, prefetch=dataclasses.replace(sp.prefetch, lead_steps=-1)
        )
        with pytest.raises(SpillError, match="lead must be >= 0"):
            broken.validate()

    def test_validate_rejects_moved_windows(self, compiled_cell):
        sp = _constrained(compiled_cell)
        b, ws = next(iter(sp.prefetch.windows.items()))
        shifted = tuple(
            dataclasses.replace(w, start=w.start + 1) for w in ws
        )
        broken = dataclasses.replace(
            sp,
            prefetch=dataclasses.replace(
                sp.prefetch, windows={**sp.prefetch.windows, b: shifted}
            ),
        )
        with pytest.raises(SpillError, match="disagree with the"):
            broken.validate()
