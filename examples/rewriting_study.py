"""Identity graph rewriting under the microscope.

Run:  python examples/rewriting_study.py

Walks through both rewriting patterns on SwiftNet Cell C (the cell where
rewriting buys the most, Fig 10): shows the structural change, verifies
numerical equivalence on random weights with the NumPy executor, and
plots (as terminal sparklines) the footprint trace before and after.
"""

import numpy as np

from repro import Serenity, SerenityConfig, rewrite_graph, verify_rewrite
from repro.models import swiftnet_cell_c


def sparkline(values, width: int = 60) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    if len(values) > width:
        idx = np.linspace(0, len(values) - 1, width).astype(int)
        values = values[idx]
    top = values.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in values)


def main() -> None:
    graph = swiftnet_cell_c()
    result = rewrite_graph(graph)

    print(f"graph: {graph.name}")
    print(f"nodes before rewriting : {len(graph)}")
    print(f"nodes after rewriting  : {len(result.graph)}")
    print(f"rules applied          : {result.by_rule}")
    print("\nreplacements:")
    for match in result.matches:
        removed = " + ".join(match.removed)
        print(f"  [{match.rule}] {removed} -> "
              f"{result.renamed[match.anchor]}")

    report = verify_rewrite(graph, result)
    print(f"\nnumerical identity on random weights: "
          f"equivalent={report.equivalent} "
          f"(max |err| = {report.max_abs_error:.2e}) across "
          f"{len(report.compared_outputs)} outputs")

    compiler = Serenity(SerenityConfig(rewrite=False))
    before = compiler.compile(graph)
    after = compiler.compile(result.graph)
    tb, ta = before.trace(), after.trace()
    print("\nfootprint over time (optimal schedules):")
    print(f"  original  peak {tb.peak_bytes / 1024:6.1f}KB  "
          f"{sparkline(tb.transients)}")
    print(f"  rewritten peak {ta.peak_bytes / 1024:6.1f}KB  "
          f"{sparkline(ta.transients)}")
    print(f"  rewriting reduction: "
          f"{(tb.peak_bytes - ta.peak_bytes) / 1024:.1f}KB "
          f"({tb.peak_bytes / ta.peak_bytes:.2f}x)")


if __name__ == "__main__":
    main()
