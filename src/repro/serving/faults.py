"""Deterministic fault injection for the sharded serving stack.

The self-healing claims in :mod:`repro.serving.shard` — supervision,
respawn, retry-with-reroute, deadline shedding — are only worth having
if they can be *demonstrated*, repeatably, in CI. This module is the
seeded-defect corpus for the serving layer, the runtime counterpart of
``repro.analysis.mutations``: a :class:`FaultPlan` describes exactly
which shard misbehaves, how, and at which request arrival, and the
plan is injected into the worker process through test-only hooks in
``_ShardWorker``. Same plan + same seed ⇒ same fault schedule, so a
chaos run's restart/retry/shed counters can be asserted exactly.

Fault vocabulary (all frozen, picklable dataclasses):

* :class:`KillShard` — ``SIGKILL`` the shard process the instant the
  Nth request arrives (before it is accepted). The hard-crash case.
* :class:`KillMidResponse` — ``SIGKILL`` *between* the response-ring
  payload write and the control-pipe notify: the nastiest partial-state
  window, where the payload exists but the parent was never told.
* :class:`WedgeShard` — stall the worker's event loop (heartbeats
  stop, the process stays alive): the livelock/hang case only
  heartbeat supervision can catch.
* :class:`DropResponse` — compute the Nth request, then silently drop
  its response message. Without a deadline the client would wait
  forever; with one, the parent sweep sheds it.
* :class:`DelayResponse` — hold the Nth response for ``delay_s``
  before sending it (late but correct).
* :class:`StallEngine` — inject a synchronous stall into the shard's
  execution engine before its next dispatch (models a stuck transfer
  engine / device queue): requests behind it age out against their
  deadlines while the process stays healthy.

Every fault carries an ``incarnation``: ``0`` (default) fires only in
the shard's first life, so a respawned shard does not re-trip the same
fault when its arrival counter restarts; ``None`` fires in *every*
incarnation — that is how a crash-looping shard is built to order for
circuit-breaker tests. Plans compose: several faults may target the
same shard, arrival, or incarnation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from random import Random
from typing import Iterable

from repro.exceptions import ServingError

__all__ = [
    "DelayResponse",
    "DropResponse",
    "Fault",
    "FaultPlan",
    "KillMidResponse",
    "KillShard",
    "StallEngine",
    "WedgeShard",
]


@dataclass(frozen=True)
class Fault:
    """Base fault: targets ``shard`` when its ``at_request``-th request
    arrives (1-based arrival count, per incarnation)."""

    shard: int
    at_request: int = 1
    #: which life of the shard this fault fires in: ``0`` = first
    #: incarnation only (default), ``N`` = that incarnation, ``None`` =
    #: every incarnation (crash loops)
    incarnation: int | None = 0

    def _validate(self) -> None:
        if self.shard < 0:
            raise ServingError(f"fault shard must be >= 0, got {self.shard}")
        if self.at_request < 1:
            raise ServingError(
                f"fault at_request must be >= 1, got {self.at_request}"
            )


@dataclass(frozen=True)
class KillShard(Fault):
    """SIGKILL the shard process when the Nth request arrives."""


@dataclass(frozen=True)
class KillMidResponse(Fault):
    """SIGKILL between response-ring write and control-pipe notify."""


@dataclass(frozen=True)
class WedgeShard(Fault):
    """Stall the worker event loop for ``stall_s`` (heartbeats stop)."""

    stall_s: float = 30.0


@dataclass(frozen=True)
class DropResponse(Fault):
    """Serve the Nth request but never send its response."""


@dataclass(frozen=True)
class DelayResponse(Fault):
    """Hold the Nth response for ``delay_s`` before sending it."""

    delay_s: float = 0.2


@dataclass(frozen=True)
class StallEngine(Fault):
    """Stall the shard's execution engine for ``stall_s`` before the
    next dispatch after the Nth request arrives."""

    stall_s: float = 0.5


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of serving faults.

    Frozen and picklable: the plan crosses into worker processes inside
    ``_ShardConfig`` under ``fork`` and ``spawn`` alike. The ``seed``
    only matters to the constructors that *draw* a schedule
    (:meth:`kill_each_shard_once`); a hand-built plan is already fully
    determined by its faults.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            fault._validate()

    # ------------------------------------------------------------------
    # canned schedules
    # ------------------------------------------------------------------
    @classmethod
    def kill_each_shard_once(
        cls,
        shards: int,
        *,
        at_request: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Kill every shard exactly once, mid-load, first incarnation.

        When ``at_request`` is ``None`` each shard's kill point is drawn
        deterministically from ``seed`` (arrivals 2..6), so different
        seeds exercise different interleavings while any one seed is
        exactly reproducible.
        """
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        rng = Random(seed)
        faults = tuple(
            KillShard(
                shard=shard,
                at_request=(
                    at_request if at_request is not None else rng.randint(2, 6)
                ),
            )
            for shard in range(shards)
        )
        return cls(faults=faults, seed=seed)

    @classmethod
    def crash_loop(
        cls, shard: int, *, at_request: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Kill ``shard`` at the same arrival in *every* incarnation —
        the canonical circuit-breaker trip."""
        return cls(
            faults=(
                KillShard(shard=shard, at_request=at_request, incarnation=None),
            ),
            seed=seed,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def for_shard(self, shard: int, incarnation: int) -> tuple[Fault, ...]:
        """The faults armed for one life of one shard."""
        return tuple(
            f
            for f in self.faults
            if f.shard == shard
            and (f.incarnation is None or f.incarnation == incarnation)
        )

    def injector(self, shard: int, incarnation: int) -> "_FaultInjector | None":
        """Child-side runtime for this plan, or ``None`` if no fault
        targets this life of this shard (the hot path stays hook-free)."""
        armed = self.for_shard(shard, incarnation)
        if not armed:
            return None
        return _FaultInjector(armed)

    def kills(self) -> int:
        """Process-death faults in the plan (drives expected restarts)."""
        return sum(
            1
            for f in self.faults
            if isinstance(f, (KillShard, KillMidResponse))
        )


class _FaultInjector:
    """Per-process fault runtime built from a :class:`FaultPlan`.

    Lives inside ``_ShardWorker``; counts request arrivals and tells
    the worker's hooks what to do. Arrival counting happens on the
    worker's single event-loop thread, so no locking is needed there;
    the deferred-response map is touched from scheduler worker threads
    too and is guarded.
    """

    def __init__(self, faults: Iterable[Fault]) -> None:
        self.faults = tuple(faults)
        self.arrivals = 0
        self._by_req: dict[int, list[Fault]] = {}
        self._stalls: list[float] = []
        self._lock = threading.Lock()

    def on_request(self, req_id: int) -> list[Fault]:
        """Record one request arrival; returns faults the event loop
        must act on *now* (kill/wedge). Deferred faults (drop, delay,
        mid-response kill, engine stall) are armed for later hooks."""
        self.arrivals += 1
        immediate: list[Fault] = []
        for fault in self.faults:
            if fault.at_request != self.arrivals:
                continue
            if isinstance(fault, (KillShard, WedgeShard)):
                immediate.append(fault)
            elif isinstance(fault, StallEngine):
                with self._lock:
                    self._stalls.append(fault.stall_s)
            else:
                with self._lock:
                    self._by_req.setdefault(req_id, []).append(fault)
        return immediate

    def response_faults(self, req_id: int) -> list[Fault]:
        """Faults armed against this request's response (consumed)."""
        with self._lock:
            return self._by_req.pop(req_id, [])

    def take_stall(self) -> float | None:
        """Pending engine stall, if any (consumed by the run hook)."""
        with self._lock:
            if not self._stalls:
                return None
            return self._stalls.pop(0)
