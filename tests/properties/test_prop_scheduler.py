"""Property-based tests of the scheduling core.

These are the paper's theorems, checked mechanically on random DAGs:

* Theorem 1 (Appendix C): the DP with zero-indegree signatures finds the
  optimal peak — cross-checked against exhaustive search;
* Algorithm 2's soundness: pruning at tau >= mu* never loses optimality,
  and tau < mu* is always reported infeasible;
* divide-and-conquer exactness at single-node cuts (Wilken et al.).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoSolutionError
from repro.scheduler.brute import brute_force_schedule
from repro.scheduler.budget import AdaptiveSoftBudgetScheduler
from repro.scheduler.divide import DivideAndConquerScheduler
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import BufferModel, simulate_schedule
from repro.scheduler.topological import random_topological

from tests.conftest import random_dag_graph

dag = st.builds(
    random_dag_graph,
    n_nodes=st.integers(2, 8),
    seed=st.integers(0, 10_000),
    with_views=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(g=dag)
def test_dp_is_optimal(g):
    dp = dp_schedule(g)
    bf = brute_force_schedule(g)
    assert dp.peak_bytes == bf.peak_bytes
    dp.schedule.validate(g)
    assert simulate_schedule(g, dp.schedule).peak_bytes == dp.peak_bytes


@settings(max_examples=40, deadline=None)
@given(g=dag)
def test_dp_never_beaten_by_random_schedules(g):
    dp = dp_schedule(g)
    rng = random.Random(0)
    for _ in range(5):
        sched = random_topological(g, rng)
        assert simulate_schedule(g, sched).peak_bytes >= dp.peak_bytes


@settings(max_examples=40, deadline=None)
@given(g=dag)
def test_budget_at_optimum_feasible_below_infeasible(g):
    opt = dp_schedule(g).peak_bytes
    assert dp_schedule(g, budget=opt).peak_bytes == opt
    with pytest.raises(NoSolutionError):
        dp_schedule(g, budget=opt - 1)


@settings(max_examples=30, deadline=None)
@given(g=dag)
def test_adaptive_soft_budgeting_preserves_optimality(g):
    opt = dp_schedule(g).peak_bytes
    res = AdaptiveSoftBudgetScheduler(max_states_per_step=64).schedule(g)
    assert res.peak_bytes == opt
    assert res.probes[-1].outcome == "solution"


@settings(max_examples=30, deadline=None)
@given(
    n_cells=st.integers(1, 3),
    seed=st.integers(0, 5_000),
)
def test_divide_and_conquer_is_exact(n_cells, seed):
    """Stacked random cells: D&C peak equals whole-graph DP peak."""
    from repro.graph.builder import GraphBuilder

    rng = random.Random(seed)
    b = GraphBuilder(f"stack{seed}")
    prev = b.input("x", (rng.randint(1, 3), 2, 2))
    for cell in range(n_cells):
        branches = [
            b.conv2d(prev, rng.randint(1, 5), kernel=1, name=f"c{cell}b{i}")
            for i in range(rng.randint(1, 3))
        ]
        if len(branches) == 1:
            merged = branches[0]
        else:
            merged = b.concat(branches, name=f"c{cell}cat")
        prev = b.conv2d(merged, rng.randint(1, 3), kernel=1, name=f"c{cell}o")
    g = b.build()

    whole = dp_schedule(g)
    dnc = DivideAndConquerScheduler(adaptive_budget=False).schedule(g)
    assert dnc.peak_bytes == whole.peak_bytes
    dnc.schedule.validate(g)


@settings(max_examples=50, deadline=None)
@given(g=dag, seed=st.integers(0, 100))
def test_simulation_prefix_invariant(g, seed):
    """Incremental accounting equals first-principles accounting at
    every prefix, for any topological order."""
    model = BufferModel.of(g)
    idx = model.index
    sched = random_topological(g, random.Random(seed))
    mask, mu = 0, 0
    for name in sched:
        transient, mu, mask = model.step(mask, mu, idx.index[name])
        assert mu == model.footprint_of(mask)
        assert transient >= mu
        assert mu >= 0


@settings(max_examples=40, deadline=None)
@given(g=dag, seed=st.integers(0, 100))
def test_final_footprint_is_schedule_independent(g, seed):
    """The settled footprint after the last step depends only on the
    graph (its persistent outputs), never on the order."""
    rng = random.Random(seed)
    a = simulate_schedule(g, random_topological(g, rng)).final_bytes
    b = simulate_schedule(g, random_topological(g, rng)).final_bytes
    assert a == b
