"""Greedy list scheduler and brute-force oracle."""

import pytest

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.tensor import TensorSpec
from repro.scheduler.brute import brute_force_schedule
from repro.scheduler.dp import dp_schedule
from repro.scheduler.greedy import greedy_schedule
from repro.scheduler.memory import peak_of, simulate_schedule

from tests.conftest import random_dag_graph


class TestGreedy:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_on_random_dags(self, seed):
        g = random_dag_graph(14, seed)
        greedy_schedule(g).validate(g)

    def test_never_worse_than_dp_is_false_sometimes(self):
        """Greedy is a heuristic: document a graph where it is beaten by
        the DP (the gap motivating the paper's approach)."""
        # Two chains sharing the input; greedy's myopic choice of the
        # locally-lighter step commits it to holding the heavy tensor.
        g = Graph("trap")

        def blob(name, inputs=(), ch=1):
            g.add(
                Node(
                    name=name,
                    op="input" if not inputs else "blob",
                    inputs=tuple(inputs),
                    output=TensorSpec((ch, 1, 1)),
                )
            )

        blob("x", ch=1)
        blob("a1", ("x",), ch=1)   # looks cheap now...
        blob("a2", ("a1",), ch=9)  # ...but blows up later
        blob("b1", ("x",), ch=3)
        blob("b2", ("b1",), ch=1)
        blob("join", ("a2", "b2"), ch=1)
        greedy_peak = peak_of(g, greedy_schedule(g))
        optimal = dp_schedule(g).peak_bytes
        assert optimal <= greedy_peak

    @pytest.mark.parametrize("seed", range(10))
    def test_at_least_as_good_as_worst_case(self, seed):
        g = random_dag_graph(10, seed)
        greedy_peak = peak_of(g, greedy_schedule(g))
        assert greedy_peak <= g.total_activation_bytes()


class TestBruteForce:
    def test_rejects_large_graphs(self):
        g = random_dag_graph(20, 0)
        with pytest.raises(ValueError, match="brute force limited"):
            brute_force_schedule(g)

    def test_explicit_max_nodes_override(self):
        g = random_dag_graph(17, 0)
        res = brute_force_schedule(g, max_nodes=17)
        res.schedule.validate(g)

    def test_result_consistent_with_simulation(self, diamond_graph):
        res = brute_force_schedule(diamond_graph)
        assert (
            simulate_schedule(diamond_graph, res.schedule).peak_bytes
            == res.peak_bytes
        )

    def test_orders_explored_positive(self, diamond_graph):
        assert brute_force_schedule(diamond_graph).orders_explored >= 1

    @pytest.mark.parametrize("seed", range(5))
    def test_no_schedule_beats_it(self, seed):
        from repro.scheduler.topological import iter_topological_orders
        from repro.scheduler.schedule import Schedule

        g = random_dag_graph(7, seed)
        best = brute_force_schedule(g).peak_bytes
        for order in iter_topological_orders(g, limit=500):
            assert peak_of(g, Schedule(order)) >= best
