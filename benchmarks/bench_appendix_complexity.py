"""Appendix C/D: the signature collapse that makes the DP tractable.

Measures, per cell: the naive recursive search's partial-schedule count
(the paper's O(|V|!) route), the number of unique zero-indegree
signatures the DP memoises, and the analytic |V|*2^|V| bound — the
quantitative form of Fig 5's "redundant z" merging and Appendix D's
derivation.
"""

from repro.analysis.complexity import complexity_of
from repro.analysis.reporting import format_table
from repro.models.suite import get_cell

CELLS = ("swiftnet-a", "swiftnet-b", "swiftnet-c", "randwire-c100-c")


def run():
    return [
        complexity_of(get_cell(key).factory(), naive_cap=2_000_000)
        for key in CELLS
    ]


def render(reports) -> str:
    body = [
        (
            r.graph_name,
            r.nodes,
            f"{r.naive_tree:,}" if r.naive_tree is not None else ">2M (N/A)",
            f"{r.dp_states:,}",
            f"{r.dp_bound:.1e}",
            f"{r.collapse_factor:,.0f}x" if r.collapse_factor else "-",
        )
        for r in reports
    ]
    return format_table(
        ("cell", "|V|", "naive partial schedules", "DP signatures",
         "|V|*2^|V| bound", "collapse"),
        body,
        title="Appendix C/D - search-space collapse from zero-indegree signatures",
    )


def test_appendix_complexity(benchmark, save_result):
    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_complexity", render(reports))

    for r in reports:
        # the DP's real state count sits far below its analytic bound...
        assert r.dp_states < r.dp_bound
        # ...and the naive tree, when measurable, is far above it
        if r.naive_tree is not None:
            assert r.naive_tree > r.dp_states
    # at least one real cell must already be out of the naive search's
    # reach at the 2M cap — the paper's "takes days for 30 nodes"
    assert any(r.naive_tree is None for r in reports)
