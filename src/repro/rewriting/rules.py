"""The two identity rewriting rules of the paper (Section 3.3, Fig 9).

Both rules eliminate a memory-hungry ``concat`` by partitioning the
operator that follows it, without changing the computed function:

* **Channel-wise partitioning** (``concat -> conv2d``): by distributivity
  of convolution over the channel sum,
  ``conv(concat(x_1..x_n), W) == sum_i conv(x_i, W[:, slice_i])``.
  Emitted as a chain of ``partial_conv2d`` nodes accumulating in place
  into a single output buffer, so each ``x_i`` can be freed as soon as
  its partial product lands: cost drops from ``sum(x_i) + y`` to
  ``max_i(x_i) + y``.

* **Kernel-wise partitioning** (``concat -> depthwise_conv2d``): depthwise
  kernels act on channels independently, so
  ``dwconv(concat(x_1..x_n)) == concat(dwconv_i(x_i))``.
  Emitted as ``partial_depthwise_conv2d`` nodes whose outputs are
  gathered by a zero-copy *view* concat (each partial writes straight
  into the final buffer): cost drops from ``sum(x_i) + y`` to
  ``max_i(x_i) + y``.

The NumPy executor tests verify bit-level ``allclose`` equivalence of
both rules on randomised weights.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.exceptions import RewriteError
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.ops import infer_shape
from repro.rewriting.patterns import Match, concat_sole_consumer_matches

__all__ = ["ChannelWisePartitioning", "KernelWisePartitioning", "DEFAULT_RULES"]


def _resolved_inputs(node: Node, rename: dict[str, str]) -> list[str]:
    return [rename.get(src, src) for src in node.inputs]


class ChannelWisePartitioning:
    """``concat + conv2d  ->  partial_conv2d chain + in-place add``."""

    name = "channel_wise_partitioning"

    def find(self, graph: Graph) -> list[Match]:
        return concat_sole_consumer_matches(graph, "conv2d", self.name)

    def emit(
        self,
        graph: Graph,
        match: Match,
        namer: Callable[[str], str],
        rename: dict[str, str],
    ) -> Iterator[Node]:
        conv = graph.node(match.anchor)
        concat = graph.node(conv.inputs[0])
        xs = _resolved_inputs(concat, rename)
        specs = [graph.node(src).output for src in concat.inputs]

        base_attrs = {
            "out_channels": conv.attrs["out_channels"],
            "kernel": conv.attrs.get("kernel", 1),
            "stride": conv.attrs.get("stride", 1),
            "padding": conv.attrs.get("padding", "same"),
            "use_bias": conv.attrs.get("use_bias", True),
        }

        offset = 0
        prev: str | None = None
        last: Node | None = None
        for i, (x, spec) in enumerate(zip(xs, specs)):
            channels = spec.shape[0]
            attrs = dict(base_attrs)
            attrs["in_slice"] = (offset, offset + channels)
            attrs["accumulate"] = i > 0
            attrs["owns_bias"] = i == 0
            attrs["source"] = conv.name  # weight provenance for execution
            inputs = (x,) if prev is None else (x, prev)
            out = infer_shape("partial_conv2d", [spec] + (
                [last.output] if last is not None else []
            ), attrs)
            node = Node(
                name=namer(f"{conv.name}/part{i}"),
                op="partial_conv2d",
                inputs=inputs,
                output=out,
                attrs=attrs,
                memory=MemorySemantics(inplace_of=1) if i > 0 else MemorySemantics(),
            )
            yield node
            prev = node.name
            last = node
            offset += channels

        if last is None:  # pragma: no cover - matcher guarantees >= 2 inputs
            raise RewriteError(f"empty concat feeding {conv.name!r}")
        if last.output.shape != conv.output.shape:
            raise RewriteError(
                f"{self.name} broke shapes on {conv.name!r}: "
                f"{last.output.shape} != {conv.output.shape}"
            )
        rename[conv.name] = last.name


class KernelWisePartitioning:
    """``concat + depthwise_conv2d  ->  partial depthwise + view concat``."""

    name = "kernel_wise_partitioning"

    def find(self, graph: Graph) -> list[Match]:
        return concat_sole_consumer_matches(graph, "depthwise_conv2d", self.name)

    def emit(
        self,
        graph: Graph,
        match: Match,
        namer: Callable[[str], str],
        rename: dict[str, str],
    ) -> Iterator[Node]:
        dconv = graph.node(match.anchor)
        concat = graph.node(dconv.inputs[0])
        xs = _resolved_inputs(concat, rename)
        specs = [graph.node(src).output for src in concat.inputs]

        base_attrs = {
            "kernel": dconv.attrs.get("kernel", 3),
            "stride": dconv.attrs.get("stride", 1),
            "padding": dconv.attrs.get("padding", "same"),
            "multiplier": dconv.attrs.get("multiplier", 1),
            "use_bias": dconv.attrs.get("use_bias", True),
        }

        parts: list[Node] = []
        offset = 0
        for i, (x, spec) in enumerate(zip(xs, specs)):
            channels = spec.shape[0]
            attrs = dict(base_attrs)
            attrs["in_slice"] = (offset, offset + channels)
            attrs["source"] = dconv.name  # weight provenance for execution
            out = infer_shape("partial_depthwise_conv2d", [spec], attrs)
            node = Node(
                name=namer(f"{dconv.name}/part{i}"),
                op="partial_depthwise_conv2d",
                inputs=(x,),
                output=out,
                attrs=attrs,
            )
            parts.append(node)
            yield node
            offset += channels

        gather_out = infer_shape("concat", [p.output for p in parts], {})
        if gather_out.shape != dconv.output.shape:
            raise RewriteError(
                f"{self.name} broke shapes on {dconv.name!r}: "
                f"{gather_out.shape} != {dconv.output.shape}"
            )
        gather = Node(
            name=namer(f"{dconv.name}/gather"),
            op="concat",
            inputs=tuple(p.name for p in parts),
            output=gather_out,
            attrs={"gather": True},
            memory=MemorySemantics(view=True),
        )
        yield gather
        rename[dconv.name] = gather.name


#: rule application order: channel-wise first (larger wins on conv-heavy
#: cells), then kernel-wise — matching the paper's presentation order.
DEFAULT_RULES = (ChannelWisePartitioning(), KernelWisePartitioning())
