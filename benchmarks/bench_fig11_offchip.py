"""Fig 11: off-chip memory traffic under {32,64,128,256} KB on-chip.

Belady-policy two-level simulation of the baseline vs SERENITY
schedules; paper geomean at 256 KB: 1.76x, with several cells' traffic
eliminated outright.
"""

from repro.analysis.reporting import geomean
from repro.experiments import fig11_offchip


def test_fig11_offchip_traffic(benchmark, save_result):
    cells = benchmark.pedantic(fig11_offchip.run, rounds=1, iterations=1)
    save_result("fig11_offchip", fig11_offchip.render(cells))

    assert len(cells) == 9
    # the paper's qualitative claims:
    # (1) some cells' traffic is eliminated outright by SERENITY
    eliminated = [
        (c.key, cap)
        for c in cells
        for cap in fig11_offchip.CAPACITIES_KB
        if c.eliminated_at(cap)
    ]
    assert eliminated, "no cell eliminated its off-chip traffic"
    # (2) at the largest capacity the finite ratios favour SERENITY
    finite_256 = [
        c.by_capacity[256][2]
        for c in cells
        if c.by_capacity[256][2] not in (None, float("inf"))
    ]
    assert finite_256 and geomean(finite_256) > 1.15
    # (3) cells small enough to fit on-chip under both schedules are N/A
    assert any(
        c.by_capacity[256][2] is None for c in cells
    ), "expected at least one N/A cell at 256KB"


def test_fig11_policy_ablation(benchmark, save_result):
    """Extension: Belady vs LRU vs FIFO at 256 KB (design-choice bench)."""
    from repro.experiments import ablations

    rows = benchmark.pedantic(
        ablations.policy_ablation, args=(256,), rounds=1, iterations=1
    )
    save_result("fig11_policy_ablation", ablations.render_policy(rows, 256))
    total = {"belady": 0, "lru": 0, "fifo": 0}
    for _, t in rows:
        for k in total:
            total[k] += t[k]
    assert total["belady"] <= total["lru"]
    assert total["belady"] <= total["fifo"]
