"""Persistent schedule cache: keys, round-trips, and corruption safety."""

from __future__ import annotations

import json

from repro.graph.serialization import graph_signature
from repro.scheduler.cache import CacheEntry, ScheduleCache
from repro.scheduler.portfolio import PortfolioCompiler
from repro.scheduler.registry import get_strategy, run_strategy

from tests.conftest import random_dag_graph


def _entry(signature="ab12" * 16, strategy_key="kahn@1", order=("a", "b")):
    return CacheEntry(
        signature=signature,
        strategy_key=strategy_key,
        graph_name="g",
        order=tuple(order),
        peak_bytes=123,
        arena_bytes=456,
        meta={"time_s": 0.25},
    )


class TestCacheEntry:
    def test_doc_round_trip(self):
        entry = _entry()
        back = CacheEntry.from_doc(entry.to_doc())
        assert back == entry

    def test_bad_format_rejected(self):
        doc = _entry().to_doc()
        doc["format"] = "bogus"
        try:
            CacheEntry.from_doc(doc)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestScheduleCache:
    def test_put_get_byte_identical(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        entry = _entry()
        path = cache.put(entry)
        got = cache.get(entry.signature, entry.strategy_key)
        assert got == entry
        assert got.order == ("a", "b")  # exact strings back
        # the on-disk representation is stable: re-putting the same
        # entry rewrites the identical bytes
        before = path.read_bytes()
        cache.put(entry)
        assert path.read_bytes() == before

    def test_miss_returns_none(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        assert cache.get("f" * 64, "kahn@1") is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0

    def test_distinct_strategy_keys_do_not_collide(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        a = _entry(strategy_key="kahn@1", order=("a", "b"))
        b = _entry(strategy_key="greedy@1", order=("b", "a"))
        cache.put(a)
        cache.put(b)
        assert cache.get(a.signature, "kahn@1").order == ("a", "b")
        assert cache.get(a.signature, "greedy@1").order == ("b", "a")

    def test_corrupted_entry_is_a_miss_and_dropped(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        entry = _entry()
        path = cache.put(entry)

        path.write_text("{not json")
        assert cache.get(entry.signature, entry.strategy_key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # dropped so the recompute can overwrite

        # valid JSON but wrong schema is equally a miss
        cache.put(entry)
        path.write_text(json.dumps({"format": "repro-schedule-cache/1"}))
        assert cache.get(entry.signature, entry.strategy_key) is None
        assert cache.stats.corrupt == 2

    def test_clear_and_len(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.put(_entry(strategy_key="kahn@1"))
        cache.put(_entry(strategy_key="dfs@1"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCacheCompilerIntegration:
    def test_relabeled_graph_hits_the_same_entry(self, tmp_path):
        """Node renaming changes nothing: same signature, and the cached
        schedule is served *translated into the new instance's names*."""
        g = random_dag_graph(9, seed=4)
        mapping = {n: f"op_{i}" for i, n in enumerate(g.node_names)}
        from tests.graph.test_serialization import _relabel

        relabeled = _relabel(g, mapping)
        assert graph_signature(g) == graph_signature(relabeled)

        cache = ScheduleCache(tmp_path)
        compiler = PortfolioCompiler(["kahn"], workers=0, cache=cache)
        cold = compiler.compile(g)
        warm = compiler.compile(relabeled)
        assert not cold.cache_hit
        assert warm.cache_hit
        # the served schedule must be valid FOR THE RELABELED GRAPH and
        # must be the stored schedule under the renaming
        warm.winner.schedule.validate(relabeled)
        assert warm.winner.schedule.order == tuple(
            mapping[n] for n in cold.winner.schedule.order
        )
        assert warm.winner.peak_bytes == cold.winner.peak_bytes

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        graph = random_dag_graph(8, seed=7)
        cache = ScheduleCache(tmp_path)
        compiler = PortfolioCompiler(["greedy"], workers=0, cache=cache)
        cold = compiler.compile(graph)

        # vandalise the entry on disk
        spec = get_strategy("greedy")
        path = cache._path(graph_signature(graph), spec.cache_key)
        path.write_text("\x00garbage")

        warm = compiler.compile(graph)
        assert not warm.cache_hit  # fell back to recompute, no crash
        assert warm.winner.schedule.order == cold.winner.schedule.order
        # and the recompute healed the cache
        healed = compiler.compile(graph)
        assert healed.cache_hit

    def test_poisoned_entry_with_invalid_order_recomputes(self, tmp_path):
        """A syntactically valid entry whose order is not a topological
        order of this graph must be rejected, not replayed."""
        graph = random_dag_graph(8, seed=3)
        cache = ScheduleCache(tmp_path)
        compiler = PortfolioCompiler(["kahn"], workers=0, cache=cache)
        cold = compiler.compile(graph)

        spec = get_strategy("kahn")
        entry = cache.get(graph_signature(graph), spec.cache_key)
        poisoned = CacheEntry(
            signature=entry.signature,
            strategy_key=entry.strategy_key,
            graph_name=entry.graph_name,
            order=tuple(reversed(entry.order)),  # violates every edge
            canon_order=None,
            peak_bytes=1,  # absurd numbers that must never be served
            arena_bytes=1,
        )
        cache.put(poisoned)

        warm = compiler.compile(graph)
        assert not warm.cache_hit
        assert warm.winner.peak_bytes == cold.winner.peak_bytes

    def test_warm_hit_rate_and_identical_peaks(self, tmp_path):
        graphs = [random_dag_graph(8, s) for s in range(4)]
        cache = ScheduleCache(tmp_path)
        compiler = PortfolioCompiler(
            ["kahn", "greedy", "serenity-dp"], workers=0, cache=cache
        )
        cold = compiler.compile_batch(graphs)
        warm = compiler.compile_batch(graphs)
        assert cold.hit_rate == 0.0
        assert warm.hit_rate == 1.0
        for a, b in zip(cold.results, warm.results):
            assert b.cache_hit
            assert a.winner.peak_bytes == b.winner.peak_bytes

    def test_cache_shared_with_run_strategy_semantics(self, tmp_path):
        """What the cache replays equals what a fresh run produces."""
        graph = random_dag_graph(10, seed=11)
        cache = ScheduleCache(tmp_path)
        PortfolioCompiler(["serenity-dp"], workers=0, cache=cache).compile(graph)
        entry = cache.get(
            graph_signature(graph), get_strategy("serenity-dp").cache_key
        )
        fresh = run_strategy("serenity-dp", graph)
        assert entry.order == fresh.schedule.order
        assert entry.peak_bytes == fresh.peak_bytes


def _hammer_put(args: tuple[str, int, int]) -> int:
    """Worker-process body for the concurrent-writer test: repeatedly
    put an entry under one shared (signature, strategy) key."""
    root, writer, rounds = args
    cache = ScheduleCache(root)
    entry = CacheEntry(
        signature="cafe" * 16,
        strategy_key="kahn@1",
        graph_name=f"writer-{writer}",
        order=("a", "b", "c"),
        peak_bytes=111,
        arena_bytes=222,
        meta={"writer": writer},
    )
    for _ in range(rounds):
        cache.put(entry)
    return writer


class TestConcurrentWriters:
    def test_simultaneous_puts_leave_one_valid_entry(self, tmp_path):
        """Multiple processes racing ``put`` on the same key: the atomic
        temp-file + os.replace path must leave exactly one entry, valid
        and attributable to one of the writers — never a torn mix."""
        from concurrent.futures import ProcessPoolExecutor

        writers = 4
        with ProcessPoolExecutor(max_workers=writers) as pool:
            done = list(
                pool.map(
                    _hammer_put,
                    [(str(tmp_path), w, 25) for w in range(writers)],
                )
            )
        assert sorted(done) == list(range(writers))

        cache = ScheduleCache(tmp_path)
        assert len(cache) == 1
        entry = cache.get("cafe" * 16, "kahn@1")
        assert entry is not None
        assert entry.order == ("a", "b", "c")
        # last-writer-wins: the surviving entry is one writer's, intact
        winner = entry.meta["writer"]
        assert winner in range(writers)
        assert entry.graph_name == f"writer-{winner}"
        # no orphaned temp files linger in the shard
        shard = tmp_path / ("cafe" * 16)[:2]
        assert not list(shard.glob("*.tmp"))
        assert cache.stats.corrupt == 0
