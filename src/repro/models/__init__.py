"""Model zoo: the irregularly wired networks of the paper's Table 1."""

from repro.models.darts import DARTS_V2_NORMAL, darts_normal_cell
from repro.models.nasnet import nasnet_a_cell
from repro.models.randwire import RANDWIRE_DEFAULTS, random_dag, randwire_stage
from repro.models.suite import (
    BENCHMARK_SUITE,
    PAPER_GEOMEANS,
    CellSpec,
    get_cell,
    suite_cells,
)
from repro.models.swiftnet import (
    SWIFTNET_PARTITION,
    swiftnet_cell_a,
    swiftnet_cell_b,
    swiftnet_cell_c,
    swiftnet_hpd,
)

__all__ = [
    "darts_normal_cell",
    "DARTS_V2_NORMAL",
    "nasnet_a_cell",
    "random_dag",
    "randwire_stage",
    "RANDWIRE_DEFAULTS",
    "swiftnet_cell_a",
    "swiftnet_cell_b",
    "swiftnet_cell_c",
    "swiftnet_hpd",
    "SWIFTNET_PARTITION",
    "BENCHMARK_SUITE",
    "PAPER_GEOMEANS",
    "CellSpec",
    "get_cell",
    "suite_cells",
]
