"""Runtime byte-bounds shadow checker over compiled executor tables."""

import pytest

from repro.compiler.pipeline import CompilationPipeline
from repro.models.suite import get_cell


@pytest.fixture(scope="module")
def compiled():
    return CompilationPipeline("greedy").compile(
        get_cell("swiftnet-c").factory()
    )


def _spill_capacity(model):
    return max(model.spill_floor_bytes, model.plan.arena_bytes // 2)


class TestCleanExecutors:
    def test_plain(self, compiled):
        report = compiled.executor(seed=0).shadow_check()
        assert report.ok and len(report) == 0, report.summary()
        assert report.checks == ("shadow@batch1",)

    def test_batched(self, compiled):
        report = compiled.executor(seed=0, batch_size=4).shadow_check()
        assert report.ok and len(report) == 0, report.summary()
        assert "shadow@batch4" in report.checks

    def test_spill_inline(self, compiled):
        px = compiled.executor(
            seed=0, capacity_bytes=_spill_capacity(compiled), prefetch=False
        )
        report = px.shadow_check()
        assert report.ok and len(report) == 0, report.summary()

    def test_spill_prefetch(self, compiled):
        px = compiled.executor(
            seed=0, capacity_bytes=_spill_capacity(compiled), prefetch=True
        )
        report = px.shadow_check()
        assert report.ok and len(report) == 0, report.summary()

    def test_spill_prefetch_batched(self, compiled):
        px = compiled.executor(
            seed=0,
            batch_size=4,
            capacity_bytes=_spill_capacity(compiled),
            prefetch=True,
        )
        report = px.shadow_check()
        assert report.ok and len(report) == 0, report.summary()

    def test_tiled_below_whole_floor(self, compiled):
        """The shadow replay covers tile-granularity transfer rows —
        at a capacity whole-buffer staging cannot even plan."""
        whole = compiled.spill_floor_bytes
        tile_floor = compiled.spill_floor_for(8192)
        cap = max(tile_floor, min(whole - 1, tile_floor * 2))
        if cap >= whole:
            pytest.skip("no tile headroom below the whole floor")
        px = compiled.executor(
            seed=0, capacity_bytes=cap, tile_bytes=8192, prefetch=False
        )
        report = px.shadow_check()
        assert report.ok and len(report) == 0, report.summary()

    def test_tiled_prefetch_batched(self, compiled):
        px = compiled.executor(
            seed=0,
            batch_size=4,
            capacity_bytes=_spill_capacity(compiled),
            tile_bytes=8192,
            prefetch=True,
        )
        report = px.shadow_check()
        assert report.ok and len(report) == 0, report.summary()

    def test_outputs_unaffected_by_checking(self, compiled):
        import numpy as np

        px = compiled.executor(seed=0)
        feeds = {
            n: np.zeros(compiled.graph.node(n).output.shape)
            for n in compiled.graph.node_names
            if not compiled.graph.node(n).inputs
            and compiled.graph.node(n).op == "input"
        }
        before = px.run(feeds)
        px.shadow_check()
        after = px.run(feeds)
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])


class TestSeededCorruption:
    def test_understated_region_is_flagged(self, compiled):
        px = compiled.executor(seed=0)
        # shrink the declared arena budget under the executor's real
        # bindings: every view past the new byte line must turn OOB
        object.__setattr__(px.plan, "arena_bytes", px.plan.arena_bytes // 2)
        report = px.shadow_check()
        assert not report.ok
        assert "SHADOW_OOB" in report.codes()

    def test_diagnostics_name_real_sites(self, compiled):
        px = compiled.executor(seed=0)
        object.__setattr__(px.plan, "arena_bytes", 1)
        report = px.shadow_check()
        found = report.by_code("SHADOW_OOB")
        assert found and all(d.node is not None for d in found)
        assert all(d.byte_range is not None for d in found)
