"""Shape-manipulating operators: input, concat, flatten, slice.

``concat`` concatenates along the channel axis (axis 0 of ``(C, H, W)``),
the only concat direction the paper's networks use. The identity graph
rewriter re-emits concat nodes with ``MemorySemantics(view=True)`` when
the inputs can be written straight into the output buffer.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops.base import OpSchema, register_op, require_chw


def _input_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    shape = attrs.get("shape")
    if shape is None:
        raise ShapeError("input op requires a 'shape' attribute")
    return TensorSpec(tuple(shape), attrs.get("dtype", "float32"))


register_op(
    OpSchema(name="input", infer_shape=_input_shape, min_inputs=0, max_inputs=0)
)


def _concat_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    axis = int(attrs.get("axis", 0))
    if axis != 0:
        raise ShapeError("concat is only supported along the channel axis (0)")
    first = inputs[0]
    for spec in inputs:
        if spec.rank != first.rank:
            raise ShapeError("concat operands must share rank")
        if spec.shape[1:] != first.shape[1:]:
            raise ShapeError(
                f"concat operands must share trailing dims: "
                f"{first.shape} vs {spec.shape}"
            )
        if spec.dtype != first.dtype:
            raise ShapeError("concat operands must share dtype")
    channels = sum(spec.shape[0] for spec in inputs)
    return TensorSpec((channels, *first.shape[1:]), first.dtype)


register_op(
    OpSchema(
        name="concat", infer_shape=_concat_shape, min_inputs=1, max_inputs=None
    )
)


def _flatten_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    return TensorSpec((inputs[0].elements,), inputs[0].dtype)


register_op(OpSchema(name="flatten", infer_shape=_flatten_shape))


def _slice_channels_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "slice_channels")
    lo, hi = attrs["range"]
    if not (0 <= lo < hi <= c):
        raise ShapeError(f"slice range ({lo}, {hi}) invalid for {c} channels")
    return TensorSpec((hi - lo, h, w), inputs[0].dtype)


register_op(OpSchema(name="slice_channels", infer_shape=_slice_channels_shape))
