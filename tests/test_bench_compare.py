"""CI benchmark diffing: flatten/classify/compare/gate semantics."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[1] / "scripts" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


class TestFlatten:
    def test_nested_paths(self):
        doc = {"a": {"b": 1, "c": [2, {"d": 3}]}, "e": True}
        assert dict(bench_compare.flatten(doc)) == {
            "a.b": 1,
            "a.c.0": 2,
            "a.c.1.d": 3,
            "e": True,
        }

    def test_scalar_root(self):
        assert dict(bench_compare.flatten(7)) == {"": 7}


class TestClassify:
    @pytest.mark.parametrize(
        "path,kind",
        [
            ("serving.batch_speedup", "ratio"),
            ("prefetch.hidden_fraction", "ratio"),
            ("req_per_s_pooled_vs_fresh", "ratio"),
            ("served.errors", "error"),
            ("tile.bitwise_mismatches", "error"),
            ("served.verified_bitwise", "verified"),
            ("served.req_per_s", "info"),
            ("stall_tiled_s", "info"),
            ("moved_whole_bytes", "info"),
        ],
    )
    def test_kinds(self, path, kind):
        assert bench_compare.classify(path) == kind


class TestCompare:
    def _one(self, base, curr, **kw):
        rows, regressions = bench_compare.compare(base, curr, **kw)
        return rows, regressions

    def test_unchanged_is_empty(self):
        doc = {"quick": False, "x": {"speedup": 2.0, "req_per_s": 10.0}}
        rows, regs = self._one(doc, json.loads(json.dumps(doc)))
        assert rows == [] and regs == []

    def test_ratio_drop_past_threshold_gates(self):
        base = {"quick": False, "speedup": 2.0}
        curr = {"quick": False, "speedup": 1.0}
        _, regs = self._one(base, curr, threshold=0.25)
        assert [r["path"] for r in regs] == ["speedup"]

    def test_ratio_drop_within_threshold_passes(self):
        base = {"quick": False, "speedup": 2.0}
        curr = {"quick": False, "speedup": 1.9}
        _, regs = self._one(base, curr, threshold=0.25)
        assert regs == []

    def test_ratio_improvement_never_gates(self):
        base = {"quick": False, "speedup": 2.0}
        curr = {"quick": False, "speedup": 9.0}
        _, regs = self._one(base, curr)
        assert regs == []

    def test_near_zero_ratio_is_report_only(self):
        """A 0.0005 -> 0 hidden_fraction drop is noise, not a regression."""
        base = {"quick": False, "hidden_fraction": 0.0005}
        curr = {"quick": False, "hidden_fraction": 0.0}
        rows, regs = self._one(base, curr, threshold=0.25)
        assert regs == []
        assert rows[0]["verdict"] == "changed"

    def test_mode_mismatch_disables_ratio_gating(self):
        """Full-mode committed baseline vs quick-mode CI smoke: fewer
        reps/requests make ratios incomparable — report, don't gate."""
        base = {"quick": False, "speedup": 2.0}
        curr = {"quick": True, "speedup": 1.0}
        _, regs = self._one(base, curr, threshold=0.25)
        assert regs == []

    def test_mode_mismatch_still_gates_correctness(self):
        base = {"quick": False, "served": {"errors": 0}}
        curr = {"quick": True, "served": {"errors": 3}}
        _, regs = self._one(base, curr)
        assert [r["path"] for r in regs] == ["served.errors"]

    def test_error_count_growth_gates(self):
        base = {"quick": False, "served": {"errors": 0, "mismatches": 0}}
        curr = {"quick": False, "served": {"errors": 0, "mismatches": 2}}
        _, regs = self._one(base, curr)
        assert [r["path"] for r in regs] == ["served.mismatches"]

    def test_error_count_shrink_passes(self):
        base = {"quick": False, "errors": 2}
        curr = {"quick": False, "errors": 0}
        _, regs = self._one(base, curr)
        assert regs == []

    def test_verified_flip_gates(self):
        base = {"quick": False, "verified_bitwise": True}
        curr = {"quick": False, "verified_bitwise": False}
        _, regs = self._one(base, curr)
        assert [r["path"] for r in regs] == ["verified_bitwise"]

    def test_verified_becoming_true_passes(self):
        base = {"quick": False, "verified_bitwise": False}
        curr = {"quick": False, "verified_bitwise": True}
        _, regs = self._one(base, curr)
        assert regs == []

    def test_added_and_removed_paths_never_gate(self):
        base = {"quick": False, "old_speedup": 2.0}
        curr = {"quick": False, "tile_staging": {"speedup": 0.1}}
        rows, regs = self._one(base, curr)
        assert regs == []
        verdicts = {r["path"]: r["verdict"] for r in rows}
        assert verdicts["old_speedup"] == "removed"
        assert verdicts["tile_staging.speedup"] == "added"

    def test_absolute_throughput_never_gates(self):
        base = {"quick": False, "req_per_s": 100.0, "stall_s": 0.001}
        curr = {"quick": False, "req_per_s": 10.0, "stall_s": 5.0}
        _, regs = self._one(base, curr)
        assert regs == []


class TestRender:
    def test_markdown_table(self):
        base = {"quick": False, "speedup": 2.0}
        curr = {"quick": False, "speedup": 1.0}
        rows, regs = bench_compare.compare(base, curr, threshold=0.25)
        text = bench_compare.render(rows, regs, markdown=True)
        assert "| metric |" in text
        assert "**REGRESSED**" in text
        assert "1 regression(s)" in text

    def test_plain_no_changes(self):
        assert "unchanged" in bench_compare.render([], [], markdown=False)


class TestMain:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_exit_zero_clean(self, tmp_path, capsys):
        b = self._write(tmp_path, "b.json", {"quick": False, "speedup": 2.0})
        c = self._write(tmp_path, "c.json", {"quick": False, "speedup": 2.1})
        assert bench_compare.main([b, c]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path):
        b = self._write(tmp_path, "b.json", {"quick": False, "speedup": 2.0})
        c = self._write(tmp_path, "c.json", {"quick": False, "speedup": 0.5})
        assert bench_compare.main([b, c, "--threshold", "0.25"]) == 1

    def test_exit_two_unreadable(self, tmp_path, capsys):
        c = self._write(tmp_path, "c.json", {})
        assert bench_compare.main([str(tmp_path / "nope.json"), c]) == 2
        assert "cannot read" in capsys.readouterr().err
