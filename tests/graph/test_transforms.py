"""Concat view marking (TFLite-style buffer sharing)."""


from repro.graph.builder import GraphBuilder
from repro.graph.transforms import mark_concat_views


def _pattern(tail_op="conv"):
    b = GraphBuilder("p")
    x = b.input("x", (2, 4, 4))
    l = b.conv2d(x, 2, name="l")
    r = b.conv2d(x, 3, name="r")
    cat = b.concat([l, r], name="cat")
    b.conv2d(cat, 2, name="head")
    return b.build()


class TestMarkConcatViews:
    def test_sole_consumer_operands_alias(self):
        g = mark_concat_views(_pattern())
        cat = g.node("cat")
        assert cat.memory.view
        assert "view_inputs" not in cat.attrs  # all operands aliased

    def test_multi_consumer_operand_still_aliases(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 3, name="r")
        cat = b.concat([l, r], name="cat")
        b.conv2d(cat, 2, name="head")
        b.relu(l, name="extra_reader")  # l read elsewhere: still sliceable
        g = mark_concat_views(b.build())
        assert g.node("cat").memory.view

    def test_graph_input_operand_excluded(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        cat = b.concat([x, l], name="cat")
        b.conv2d(cat, 2, name="head")
        g = mark_concat_views(b.build())
        cat_node = g.node("cat")
        assert cat_node.memory.view
        assert cat_node.attrs["view_inputs"] == (1,)  # only 'l' aliases

    def test_repeated_operand_excluded(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        cat = b.concat([l, l], name="cat")
        b.conv2d(cat, 2, name="head")
        g = mark_concat_views(b.build())
        assert not g.node("cat").memory.view  # nothing eligible

    def test_operand_claimed_once_across_concats(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 3, name="r")
        c1 = b.concat([l, r], name="c1")
        c2 = b.concat([l, r], name="c2")
        b.conv2d(c1, 2, name="h1")
        b.conv2d(c2, 2, name="h2")
        g = mark_concat_views(b.build())
        # first concat claims both operands; the second gets neither
        assert g.node("c1").memory.view
        assert not g.node("c2").memory.view

    def test_already_view_untouched(self):
        g = mark_concat_views(mark_concat_views(_pattern()))
        assert g.node("cat").memory.view

    def test_non_concat_nodes_unchanged(self):
        g0 = _pattern()
        g = mark_concat_views(g0)
        assert g.node("l") == g0.node("l")

    def test_original_graph_not_mutated(self):
        g0 = _pattern()
        mark_concat_views(g0)
        assert not g0.node("cat").memory.view

    def test_peak_semantics_change(self):
        """View marking removes the concat double-buffer from the peak."""
        from repro.scheduler.memory import peak_of
        from repro.scheduler.topological import kahn_schedule

        g0 = _pattern()
        g1 = mark_concat_views(g0)
        k0 = peak_of(g0, kahn_schedule(g0))
        k1 = peak_of(g1, kahn_schedule(g1))
        assert k1 < k0
