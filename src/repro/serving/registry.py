"""Model registry: named, signature-verified compiled artifacts.

The serving runtime never schedules or allocates anything at request
time — it executes :class:`~repro.compiler.model.CompiledModel`
artifacts exactly as the compiler froze them. The registry is the
runtime's source of truth for *which* artifacts those are:

* loading from disk goes through :meth:`CompiledModel.load`, which
  re-validates the schedule and plan and recomputes the graph's
  canonical signature against the embedded one — a tampered or corrupt
  artifact is rejected at registration, never at request time;
* in-memory registration re-verifies the signature the same way, so a
  mutated model object cannot sneak past the check the file path gets.

Names are unique; registering two different artifacts under one name is
an error (re-registering the *same* signature is idempotent).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.compiler.model import CompiledModel
from repro.exceptions import ReproError, ServingError
from repro.graph.serialization import graph_signature

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Name → verified :class:`CompiledModel` mapping for the runtime."""

    def __init__(self) -> None:
        self._models: dict[str, CompiledModel] = {}
        #: artifact path per name, for models that came from disk —
        #: lets a shard worker process re-open (and re-verify) the
        #: artifact instead of pickling the model across the fork
        self._paths: dict[str, Path] = {}

    # ------------------------------------------------------------------
    def register(self, model: CompiledModel, name: str | None = None) -> str:
        """Register an in-memory artifact; returns the serving name.

        The embedded signature is re-verified against the carried graph
        (the same check :meth:`CompiledModel.from_doc` performs for
        artifacts loaded from disk).
        """
        name = name or model.graph.name
        if graph_signature(model.graph) != model.signature:
            raise ServingError(
                f"cannot register {name!r}: artifact signature "
                f"{model.signature!r} does not match its graph"
            )
        existing = self._models.get(name)
        if existing is not None and not self._same_artifact(existing, model):
            raise ServingError(
                f"model name {name!r} already registered with a different "
                "artifact; pick another name"
            )
        self._models[name] = model
        return name

    @staticmethod
    def _same_artifact(a: CompiledModel, b: CompiledModel) -> bool:
        """Whether two artifacts are interchangeable for serving.

        The graph signature alone is not enough — two compilations of
        one graph can carry different schedules and arena plans, and a
        silent swap would corrupt pool byte accounting for executors
        already leased. Idempotent re-registration compares everything
        an executor is built from.
        """
        return (
            a.signature == b.signature
            and a.strategy == b.strategy
            and a.schedule.order == b.schedule.order
            and a.plan.arena_bytes == b.plan.arena_bytes
            and a.plan.offsets == b.plan.offsets
        )

    def load(self, path: str | Path, name: str | None = None) -> str:
        """Load, verify and register an artifact file; returns the name."""
        try:
            model = CompiledModel.load(path)
        except (ReproError, OSError, ValueError, KeyError) as exc:
            raise ServingError(f"cannot load artifact {path}: {exc}") from exc
        name = self.register(model, name)
        self._paths[name] = Path(path).resolve()
        return name

    def path_of(self, name: str) -> Path | None:
        """The artifact file ``name`` was loaded from (``None`` for
        in-memory registrations)."""
        self.get(name)
        return self._paths.get(name)

    # ------------------------------------------------------------------
    def get(self, name: str) -> CompiledModel:
        model = self._models.get(name)
        if model is None:
            raise ServingError(
                f"unknown model {name!r}; registered: {sorted(self._models)}"
            )
        return model

    def names(self) -> list[str]:
        return sorted(self._models)

    def arena_bytes(self, name: str, batch_size: int = 1) -> int:
        """The arena one executor of ``name`` must provision — ``N x``
        the compiled per-sample plan for a batch-``N`` executor (the
        strided batch layout repeats the plan per row)."""
        return self.get(name).arena_bytes_for(batch_size)

    def __contains__(self, name: object) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._models))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({self.names()!r})"
