"""Concurrent request scheduler over pooled arena executors.

Requests enter through :meth:`RequestScheduler.submit` (returning a
:class:`concurrent.futures.Future`) and are dispatched to worker
threads. Each worker leases one executor from the
:class:`~repro.serving.pool.ArenaPool` per dispatch and, with
micro-batching enabled, drains up to ``max_batch`` queued requests for
the *same model* into that single lease.

When the pool's executors are **batch-capable** (``batch_size > 1``),
a drained micro-batch becomes *one stacked* ``run_batch`` call: the
requests' feeds are stacked along a leading batch axis, every kernel
runs once for the whole batch (amortising NumPy's per-call dispatch,
which dominates on micro cells), and the outputs are scattered back to
the individual futures — each sample bitwise what a solo run would
have produced. Stacking requires identical request shapes (same output
subset, same feed names, spec-shaped feeds); requests that differ fall
back to back-to-back runs on the same hot arena, and a partial drain
runs at its true stacked size — never padded to capacity.

Every response carries a :class:`RequestStats` (queue wait, run time,
measured arena peak, whether the arena was reused, and the *actual*
number of samples stacked into its run), and the scheduler aggregates
them into a :class:`ServingStats` snapshot with latency percentiles,
the true mean batch size, and the pool's arena-reuse hit rate.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.exceptions import DeadlineExceededError, ServingError
from repro.serving.pool import ArenaPool, PoolStats
from repro.serving.registry import ModelRegistry

__all__ = [
    "InferenceResult",
    "RequestScheduler",
    "RequestStats",
    "ServingStats",
]


@dataclass(frozen=True)
class RequestStats:
    """Per-request accounting, attached to every response."""

    model: str
    #: seconds spent queued before a worker picked the request up
    queue_s: float
    #: seconds inside ``PlanExecutor.run``
    run_s: float
    #: measured arena high-water mark of this run (per sample)
    measured_peak_bytes: int
    #: whether the run reused a previous run's arena bytes
    arena_reused: bool
    #: how many samples actually ran stacked in this request's run
    #: (1 = solo run; > 1 = one batched kernel pass served them all)
    batch_size: int
    #: simulated off-chip bytes moved by the run that served this
    #: request (0 on a resident, unspilled executor); run-level, like
    #: :attr:`measured_peak_bytes` — a stacked run's traffic is shared
    spill_bytes: int = 0
    #: transfer seconds the run's compute stream stalled on (run-level)
    spill_stall_s: float = 0.0
    #: transfer seconds the prefetch engine hid behind compute
    spill_hidden_s: float = 0.0
    #: how many submissions it took to serve this request: 1 = first
    #: try; > 1 = the sharded front end retried it after a shard died
    #: under it (queue/run times are the *successful* attempt's)
    attempts: int = 1

    @property
    def total_s(self) -> float:
        return self.queue_s + self.run_s


@dataclass(frozen=True)
class InferenceResult:
    """One served inference: outputs plus its request stats."""

    outputs: dict[str, np.ndarray]
    stats: RequestStats


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServingStats:
    """Aggregate snapshot over every request completed so far."""

    requests: int
    errors: int
    batches: int
    #: completion latencies of every finished request, errors included —
    #: a failed request waited and ran too, and hiding it would make
    #: p50/p99 over-report health under faults
    latencies_s: tuple[float, ...] = field(repr=False)
    pool: PoolStats | None = None
    #: total simulated off-chip bytes moved by executor runs (counted
    #: once per run, not per stacked request)
    spill_bytes: int = 0
    #: transfer seconds executor runs stalled on (inline copies plus
    #: barrier waits on in-flight prefetch jobs; run-level sums)
    spill_stall_s: float = 0.0
    #: transfer seconds the prefetch engines hid behind compute
    spill_hidden_s: float = 0.0
    #: shard processes respawned by supervision (0 without sharding)
    restarts: int = 0
    #: automatic resubmissions after a shard died with requests on it
    retries: int = 0
    #: requests that missed their deadline (shed pre-compute, or swept
    #: in flight by the sharded front end); a subset of ``errors``
    expired: int = 0
    #: requests rejected immediately by overload control (in-flight cap
    #: or ring-slot timeout); also counted in ``errors`` by callers
    #: that observe the raised :class:`OverloadedError`
    shed: int = 0

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p99_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.99)

    @property
    def mean_batch(self) -> float:
        """Requests per executor *run* — the true stacking factor, with
        every run counted at the size it actually executed (partial
        drains count at their real size, never at capacity)."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def arena_hit_rate(self) -> float:
        return self.pool.hit_rate if self.pool is not None else 0.0

    @property
    def hidden_fraction(self) -> float:
        """Share of off-chip transfer time hidden behind compute."""
        busy = self.spill_stall_s + self.spill_hidden_s
        return self.spill_hidden_s / busy if busy > 0 else 0.0


@dataclass
class _Request:
    model: str
    feeds: Mapping[str, np.ndarray]
    outputs: list[str] | None
    future: Future
    enqueued_at: float
    #: absolute ``time.monotonic()`` deadline, or ``None`` for no limit
    deadline: float | None = None


class RequestScheduler:
    """Dispatch concurrent inference requests across pooled executors.

    >>> with RequestScheduler(registry, pool, workers=4) as server:
    ...     fut = server.submit("swiftnet-c", feeds)
    ...     result = fut.result()

    Parameters
    ----------
    registry / pool:
        The verified artifacts and the arena pool to lease from.
    workers:
        Dispatcher threads (concurrent leases never exceed this).
    max_batch:
        Micro-batch limit: a worker drains up to this many queued
        same-model requests into one executor lease. ``1`` disables
        batching. When the pool's executors are batch-capable, the
        drained requests additionally run as one stacked
        ``run_batch`` call (chunked to the executors' capacity).
    deadline_s:
        Default per-request deadline (seconds from submit). A request
        whose deadline passes while it is still queued is *shed before
        compute*: its future fails with
        :class:`~repro.exceptions.DeadlineExceededError` and it never
        touches an executor. ``submit(deadline_s=...)`` overrides per
        request; ``None`` (default) disables deadlines. This is the
        same knob the sharded path honours, so ``--shards 1`` and
        unsharded serving fail identically.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        pool: ArenaPool,
        *,
        workers: int = 4,
        max_batch: int = 1,
        deadline_s: float | None = None,
    ) -> None:
        if workers < 1:
            raise ServingError("RequestScheduler needs at least one worker")
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ServingError(f"deadline_s must be > 0, got {deadline_s}")
        self.registry = registry
        self.pool = pool
        self.workers = workers
        self.max_batch = max_batch
        self.deadline_s = deadline_s
        #: test-only fault hook: when set, called (no args) at the top
        #: of every batch dispatch — the chaos harness injects engine
        #: stalls here (see ``repro.serving.faults.StallEngine``)
        self.run_hook: Callable[[], None] | None = None
        self._queue: deque[_Request] = deque()
        #: per-model input specs for stacking validation, memoised —
        #: artifacts are immutable, and this sits on the dispatch path
        self._input_specs: dict[str, dict[str, tuple[int, ...]]] = {}
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._started = False
        # aggregate accounting (guarded by _cond)
        self._latencies: list[float] = []
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._expired = 0
        self._spill_bytes = 0
        self._spill_stall_s = 0.0
        self._spill_hidden_s = 0.0
        self._sweeper: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RequestScheduler":
        if self._started:
            return self
        self._started = True
        self._stop = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="serve-deadline-sweep", daemon=True
        )
        self._sweeper.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then join workers."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if wait:
            for t in self._threads:
                t.join()
            if self._sweeper is not None:
                self._sweeper.join()
        self._threads = []
        self._sweeper = None
        self._started = False

    def __enter__(self) -> "RequestScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        model: str,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        *,
        deadline_s: float | None = None,
    ) -> Future:
        """Enqueue one inference; resolves to an :class:`InferenceResult`.

        ``deadline_s`` (seconds from now; default: the scheduler's
        ``deadline_s``) bounds how long the request may wait: if it is
        still queued when the deadline passes it is shed before compute
        and the future fails with
        :class:`~repro.exceptions.DeadlineExceededError`."""
        self.registry.get(model)  # fail fast on unknown names
        if deadline_s is None:
            deadline_s = self.deadline_s
        fut: Future = Future()
        request = _Request(
            model=model,
            feeds=feeds,
            outputs=list(outputs) if outputs is not None else None,
            future=fut,
            enqueued_at=time.perf_counter(),
            deadline=(
                None if deadline_s is None else time.monotonic() + deadline_s
            ),
        )
        with self._cond:
            if self._stop or not self._started:
                raise ServingError("scheduler is not running (call start())")
            self._queue.append(request)
            self._cond.notify()
        return fut

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet picked up by a worker."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> ServingStats:
        with self._cond:
            return ServingStats(
                requests=self._requests,
                errors=self._errors,
                batches=self._batches,
                latencies_s=tuple(self._latencies),
                pool=self.pool.stats(),
                spill_bytes=self._spill_bytes,
                spill_stall_s=self._spill_stall_s,
                spill_hidden_s=self._spill_hidden_s,
                expired=self._expired,
            )

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------
    def _expire(self, request: _Request, latencies: bool = True) -> None:
        """Fail one already-dequeued request as past-deadline."""
        if not request.future.set_running_or_notify_cancel():
            return
        request.future.set_exception(
            DeadlineExceededError(
                f"request for {request.model!r} missed its deadline "
                "while queued (shed before compute)"
            )
        )
        with self._cond:
            self._errors += 1
            self._expired += 1
            if latencies:
                self._latencies.append(
                    time.perf_counter() - request.enqueued_at
                )

    def _sweep_loop(self) -> None:
        """Shed queued requests whose deadline has passed.

        Workers also shed at dispatch time; this thread matters when
        every worker is busy on long runs — queued requests must not
        wait past their deadline just because nobody dequeued them."""
        while True:
            expired: list[_Request] = []
            with self._cond:
                if self._stop:
                    return
                now = time.monotonic()
                for request in list(self._queue):
                    if request.deadline is not None and request.deadline <= now:
                        self._queue.remove(request)
                        expired.append(request)
            for request in expired:
                self._expire(request)
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Request] | None:
        """Pop the head request plus up to ``max_batch - 1`` queued
        requests for the same model (others keep their order). Returns
        ``None`` when the scheduler is drained and stopping."""
        with self._cond:
            while not self._queue:
                if self._stop:
                    return None
                self._cond.wait()
            head = self._queue.popleft()
            batch = [head]
            if self.max_batch > 1:
                rest: deque[_Request] = deque()
                while self._queue and len(batch) < self.max_batch:
                    req = self._queue.popleft()
                    if req.model == head.model:
                        batch.append(req)
                    else:
                        rest.append(req)
                self._queue.extendleft(reversed(rest))
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            model = batch[0].model
            try:
                executor = self.pool.acquire(model)
            except Exception as exc:
                for req in batch:
                    if req.future.set_running_or_notify_cancel():
                        req.future.set_exception(exc)
                with self._cond:
                    self._errors += len(batch)
                continue
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit must stop the worker,
                # not be swallowed as a request error: fail the drained
                # futures so no client hangs, then let the thread die
                for req in batch:
                    if req.future.set_running_or_notify_cancel():
                        req.future.set_exception(exc)
                with self._cond:
                    self._errors += len(batch)
                raise
            try:
                self._run_batch(model, batch, executor)
            finally:
                self.pool.release(model, executor)

    def _stack_groups(self, model: str, batch: list[_Request]) -> list[list[_Request]]:
        """Partition a drained micro-batch into stackable groups.

        Requests stack only when one ``run_batch`` call can serve them
        all: identical output subset, identical feed names, and every
        feed a spec-shaped graph input (a malformed request — or one
        carrying extra non-input feeds whose shapes np.stack could
        trip over — must fail or succeed *alone*, not poison its
        neighbours, so it is left as a singleton and the solo path
        decides). Order within the batch is preserved group-wise.
        """
        specs = self._input_specs.get(model)
        if specs is None:
            graph = self.registry.get(model).graph
            specs = {
                name: graph.node(name).output.shape
                for name in graph.input_nodes
            }
            self._input_specs[model] = specs
        groups: dict[tuple, list[_Request]] = {}
        singletons: list[list[_Request]] = []
        for req in batch:
            try:
                names = frozenset(req.feeds)
                stackable = names <= specs.keys() and all(
                    tuple(np.asarray(req.feeds[k]).shape) == specs[k]
                    for k in names
                )
            except Exception:
                stackable = False
            if not stackable:
                singletons.append([req])
                continue
            key = (
                None if req.outputs is None else tuple(sorted(req.outputs)),
                names,
            )
            groups.setdefault(key, []).append(req)
        return list(groups.values()) + singletons

    def _run_batch(self, model: str, batch: list[_Request], executor) -> None:
        """Serve one drained micro-batch on one leased executor.

        With a batch-capable executor, stackable groups execute as ONE
        ``run_batch`` over their stacked feeds (chunked to the
        executor's capacity) and the outputs are scattered back per
        request; everything else falls back to back-to-back solo runs
        on the same hot arena. Runs always execute at the actual number
        of drained samples — a partial batch is never padded.

        A kernel exception inside a stacked run does **not** fail the
        whole stack: the chunk's requests are retried solo on the same
        arena, so only the culpable request sees the exception. Failed
        requests still contribute their latency (queue wait plus the
        failed attempt's run time) to the aggregate — error paths must
        not vanish from the percentiles. A non-``Exception`` escape
        (``KeyboardInterrupt`` / ``SystemExit``) fails everything still
        pending, then re-raises so the worker actually stops.
        """
        completed = 0
        errors = 0
        runs = 0
        spill_bytes = 0
        spill_stall = 0.0
        spill_hidden = 0.0
        latencies: list[float] = []
        capacity = getattr(executor, "batch_size", 1)
        if capacity > 1 and len(batch) > 1:
            groups = self._stack_groups(model, batch)
        else:
            groups = [[req] for req in batch]

        def run_solo(req: _Request) -> None:
            """One solo run for a future already marked running."""
            nonlocal completed, errors, runs
            nonlocal spill_bytes, spill_stall, spill_hidden
            t0 = time.perf_counter()
            try:
                outputs = executor.run(req.feeds, outputs=req.outputs)
            except Exception as exc:
                t1 = time.perf_counter()
                req.future.set_exception(exc)
                errors += 1
                runs += 1
                latencies.append(t1 - req.enqueued_at)
                return
            t1 = time.perf_counter()
            run_stats = executor.last_stats
            runs += 1
            spill_bytes += run_stats.spill_bytes_total
            spill_stall += run_stats.spill_stall_s
            spill_hidden += run_stats.spill_hidden_s
            stats = RequestStats(
                model=model,
                queue_s=t0 - req.enqueued_at,
                run_s=t1 - t0,
                measured_peak_bytes=run_stats.measured_peak_bytes,
                arena_reused=run_stats.arena_reused,
                batch_size=1,
                spill_bytes=run_stats.spill_bytes_total,
                spill_stall_s=run_stats.spill_stall_s,
                spill_hidden_s=run_stats.spill_hidden_s,
            )
            req.future.set_result(
                InferenceResult(outputs=outputs, stats=stats)
            )
            completed += 1
            latencies.append(stats.total_s)

        hook = self.run_hook
        if hook is not None:
            hook()
        try:
            for group in groups:
                chunks = (
                    [group]
                    if len(group) <= capacity
                    else [
                        group[i : i + capacity]
                        for i in range(0, len(group), capacity)
                    ]
                )
                for chunk in chunks:
                    now = time.monotonic()
                    live = []
                    for req in chunk:
                        if req.deadline is not None and req.deadline <= now:
                            # shed before compute: the deadline passed
                            # while the request waited for this dispatch
                            self._expire(req)
                        elif req.future.set_running_or_notify_cancel():
                            live.append(req)
                    if not live:
                        continue
                    if len(live) == 1:
                        run_solo(live[0])
                        continue
                    t0 = time.perf_counter()
                    try:
                        feeds = {
                            k: np.stack(
                                [np.asarray(req.feeds[k]) for req in live]
                            )
                            for k in live[0].feeds
                        }
                        outputs = executor.run_batch(
                            feeds, outputs=live[0].outputs, batch=len(live)
                        )
                    except Exception:
                        # one poisoned batchmate must not fail its
                        # neighbours: retry each request solo so only
                        # the culpable one gets the exception
                        for req in live:
                            run_solo(req)
                        continue
                    t1 = time.perf_counter()
                    run_stats = executor.last_stats
                    runs += 1
                    run_spill = run_stats.spill_bytes_total
                    spill_bytes += run_spill
                    spill_stall += run_stats.spill_stall_s
                    spill_hidden += run_stats.spill_hidden_s
                    for i, req in enumerate(live):
                        scattered = {
                            k: v[i].copy() for k, v in outputs.items()
                        }
                        stats = RequestStats(
                            model=model,
                            queue_s=t0 - req.enqueued_at,
                            run_s=t1 - t0,
                            measured_peak_bytes=run_stats.measured_peak_bytes,
                            arena_reused=run_stats.arena_reused,
                            batch_size=len(live),
                            spill_bytes=run_spill,
                            spill_stall_s=run_stats.spill_stall_s,
                            spill_hidden_s=run_stats.spill_hidden_s,
                        )
                        req.future.set_result(
                            InferenceResult(outputs=scattered, stats=stats)
                        )
                        completed += 1
                        latencies.append(stats.total_s)
        except BaseException as exc:
            # a true BaseException (shutdown signal) aborts the batch:
            # fail whatever is still pending so no client blocks
            # forever, then re-raise out of the worker loop
            for group in groups:
                for req in group:
                    fut = req.future
                    if fut.done():
                        continue
                    try:
                        fut.set_running_or_notify_cancel()
                    except Exception:
                        pass
                    if not fut.done():
                        fut.set_exception(exc)
                        errors += 1
            raise
        finally:
            with self._cond:
                self._requests += completed
                self._errors += errors
                self._batches += runs
                self._spill_bytes += spill_bytes
                self._spill_stall_s += spill_stall
                self._spill_hidden_s += spill_hidden
                self._latencies.extend(latencies)
