"""SERENITY pipeline facade."""

import pytest

from repro.scheduler.serenity import Serenity, SerenityConfig, schedule_graph


class TestPipeline:
    def test_report_invariants(self, concat_conv_graph):
        rep = Serenity().compile(concat_conv_graph)
        rep.schedule.validate(rep.scheduled_graph)
        assert rep.peak_bytes <= rep.baseline_peak_bytes
        assert rep.arena_bytes >= rep.peak_bytes  # offsets can't beat sum-of-live
        assert rep.scheduling_time_s >= 0

    def test_rewrite_toggle(self, concat_conv_graph):
        on = Serenity(SerenityConfig(rewrite=True)).compile(concat_conv_graph)
        off = Serenity(SerenityConfig(rewrite=False)).compile(concat_conv_graph)
        assert on.rewrite_count >= 1
        assert off.rewrite_count == 0
        assert off.scheduled_graph is concat_conv_graph
        assert on.peak_bytes <= off.peak_bytes

    def test_divide_toggle_same_peak(self, hourglass_graph):
        with_divide = Serenity(SerenityConfig(rewrite=False)).compile(
            hourglass_graph
        )
        without = Serenity(
            SerenityConfig(rewrite=False, divide=False)
        ).compile(hourglass_graph)
        assert with_divide.peak_bytes == without.peak_bytes

    def test_budget_toggle_same_peak(self, hourglass_graph):
        asb = Serenity(SerenityConfig(rewrite=False)).compile(hourglass_graph)
        plain = Serenity(
            SerenityConfig(rewrite=False, adaptive_budget=False)
        ).compile(hourglass_graph)
        assert asb.peak_bytes == plain.peak_bytes

    def test_reduction_properties(self, concat_conv_graph):
        rep = Serenity().compile(concat_conv_graph)
        assert rep.reduction_no_alloc == pytest.approx(
            rep.baseline_peak_bytes / rep.peak_bytes
        )
        assert rep.reduction_with_alloc == pytest.approx(
            rep.baseline_arena_bytes / rep.arena_bytes
        )

    def test_trace_matches_peak(self, concat_conv_graph):
        rep = Serenity().compile(concat_conv_graph)
        assert rep.trace().peak_bytes == rep.peak_bytes

    def test_schedule_graph_convenience(self, diamond_graph):
        rep = schedule_graph(diamond_graph, rewrite=False)
        assert rep.config.rewrite is False

    def test_divide_result_attached(self, hourglass_graph):
        rep = Serenity().compile(hourglass_graph)
        assert rep.divide is not None
        assert sum(rep.divide.partition_sizes) == len(rep.scheduled_graph)
