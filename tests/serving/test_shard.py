"""ShardedScheduler: routing, zero-copy rings, lifecycle, parity."""

import os
import pickle
import signal
import time
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import ServingError
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import (
    ModelRegistry,
    ShardedScheduler,
    balanced_routing,
    rendezvous_shard,
    run_load,
)
from repro.serving.shard import _ALIGN, _SlotPool, _TensorRing


@pytest.fixture
def registry(chain_graph, diamond_graph):
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(chain_graph), name="chain")
    registry.register(pipeline.compile(diamond_graph), name="diamond")
    return registry


class TestRendezvousRouting:
    def test_stable_across_runs(self):
        # pinned values: the routing key is hashlib-based, so it cannot
        # drift with interpreter hash randomisation — a warm shard must
        # see the same models after every restart
        assert [rendezvous_shard("alpha", n) for n in (2, 3, 4, 8)] == [0, 0, 0, 7]
        assert [rendezvous_shard("beta", n) for n in (2, 3, 4, 8)] == [0, 2, 2, 2]
        assert [rendezvous_shard("gamma", n) for n in (2, 3, 4, 8)] == [1, 1, 1, 1]

    def test_deterministic_within_run(self):
        for key in ("a", "b", "abcdef", "sig:123"):
            assert rendezvous_shard(key, 7) == rendezvous_shard(key, 7)

    def test_minimal_rebalance_on_shard_count_change(self):
        keys = [f"k{i}" for i in range(200)]
        for n in (2, 3, 4, 7):
            before = {k: rendezvous_shard(k, n) for k in keys}
            after = {k: rendezvous_shard(k, n + 1) for k in keys}
            moved = [k for k in keys if before[k] != after[k]]
            # rendezvous guarantee: every moved key moves TO the new
            # shard, never between surviving ones, and only the new
            # shard's rendezvous winners move (~1/(n+1) of all keys)
            assert all(after[k] == n for k in moved)
            assert len(moved) <= len(keys) / (n + 1) * 2

    def test_rejects_zero_shards(self):
        with pytest.raises(ServingError, match="shards must be >= 1"):
            rendezvous_shard("x", 0)
        with pytest.raises(ServingError, match="shards must be >= 1"):
            balanced_routing({"m": "sig"}, 0)

    def test_balanced_routing_spreads_small_model_sets(self):
        # pure rendezvous can pile a 2-model suite onto one shard by
        # hash luck; the balance constraint must spread n models over
        # min(n, shards) shards — otherwise sharding wins nothing
        for sigs in ({"a": "s1", "b": "s2"}, {"a": "x", "b": "y", "c": "z"}):
            for shards in (2, 3, 4):
                routing = balanced_routing(sigs, shards)
                assert len(set(routing.values())) == min(len(sigs), shards)

    def test_balanced_routing_deterministic(self):
        sigs = {f"m{i}": f"sig{i}" for i in range(17)}
        assert balanced_routing(sigs, 4) == balanced_routing(sigs, 4)
        counts = [0, 0, 0, 0]
        for shard in balanced_routing(sigs, 4).values():
            counts[shard] += 1
        assert max(counts) - min(counts) <= 1


class TestTensorRing:
    def test_roundtrip_views_share_segment_memory(self):
        ring = _TensorRing(slot_bytes=4096, slots=2)
        try:
            arrays = {
                "x": np.arange(12, dtype=np.float64).reshape(3, 4),
                "y": np.float64(7.5).reshape(()),
            }
            descs = ring.write(1, arrays)
            views = ring.read(descs)
            assert set(views) == {"x", "y"}
            np.testing.assert_array_equal(views["x"], arrays["x"])
            np.testing.assert_array_equal(views["y"], arrays["y"])
            # zero copy: the returned arrays are views straight into
            # the shared segment, not deserialised copies
            segment = np.frombuffer(ring.shm.buf, dtype=np.uint8)
            assert np.shares_memory(views["x"], segment)
            assert np.shares_memory(views["y"], segment)
            # payloads land cache-line aligned inside their slot
            assert all(offset % _ALIGN == 0 for _, _, _, offset in descs)
            del views, segment  # release the buffer before close
        finally:
            ring.close()
            ring.unlink()

    def test_overflowing_slot_raises(self):
        ring = _TensorRing(slot_bytes=256, slots=1)
        try:
            with pytest.raises(ServingError, match="exceeds the ring slot"):
                ring.write(0, {"big": np.zeros(4096)})
        finally:
            ring.close()
            ring.unlink()

    def test_pickled_request_message_size_independent_of_tensor_size(self):
        # the zero-copy contract: only fixed-size descriptors traverse
        # the control pipe, so the pickled message for a ~8KB tensor
        # and a ~8MB tensor is the same handful of bytes
        ring = _TensorRing(slot_bytes=16 << 20, slots=1)
        try:
            small = ring.write(0, {"t": np.zeros(1024)})
            large = ring.write(0, {"t": np.zeros(1024 * 1024)})
            msg_small = pickle.dumps(("req", 1, "model", None, small, 0))
            msg_large = pickle.dumps(("req", 2, "model", None, large, 0))
            assert abs(len(msg_large) - len(msg_small)) <= 16
            assert len(msg_large) < 512
        finally:
            ring.close()
            ring.unlink()

    def test_slot_pool_backpressure_and_peak(self):
        pool = _SlotPool(2)
        a, b = pool.acquire(), pool.acquire()
        assert pool.in_use() == 2 and pool.peak == 2
        with pytest.raises(ServingError, match="timed out"):
            pool.acquire(timeout=0.05)
        pool.release(a)
        assert pool.acquire(timeout=1.0) in (a, b)

    def test_slot_pool_kill_wakes_waiters(self):
        pool = _SlotPool(1)
        pool.acquire()
        pool.kill()
        with pytest.raises(ServingError, match="closed"):
            pool.acquire(timeout=5.0)


class TestShardedServing:
    def test_bitwise_parity_across_processes(self, registry):
        refs = {
            name: Executor(
                registry.get(name).graph,
                params=init_params(registry.get(name).graph, 0),
            )
            for name in registry.names()
        }
        with ShardedScheduler(registry, shards=2, workers=2) as server:
            futs = []
            for i in range(24):
                name = registry.names()[i % 2]
                feeds = random_feeds(registry.get(name).graph, seed=i)
                futs.append((name, feeds, server.submit(name, feeds)))
            for name, feeds, fut in futs:
                result = fut.result(timeout=60)
                want = refs[name].run(feeds)
                assert set(result.outputs) == set(want)
                for k in want:
                    np.testing.assert_array_equal(want[k], result.outputs[k])
                assert result.stats.model == name

    def test_two_models_land_on_different_warm_shards(self, registry):
        with ShardedScheduler(
            registry, shards=2, workers=1, preload=True
        ) as server:
            assert len(set(server.routing.values())) == 2
            for i in range(12):
                name = registry.names()[i % 2]
                feeds = random_feeds(registry.get(name).graph, seed=i)
                server.submit(name, feeds).result(timeout=60)
            stats = server.shard_stats()
        assert len(stats) == 2
        for s in stats:
            assert len(s.models) == 1
            assert s.requests == 6
            # warm-arena reuse inside each shard: preloaded once, then
            # every request hit the pooled arena
            assert s.pool is not None
            assert s.pool.preloads == 1
            assert s.pool.hits > 0
            assert s.req_ring_peak >= 1

    def test_output_subset_crosses_the_ring(self, registry):
        graph = registry.get("chain").graph
        sink = graph.sinks[0]
        feeds = random_feeds(graph, seed=3)
        with ShardedScheduler(registry, shards=2, workers=1) as server:
            result = server.submit("chain", feeds, outputs=[sink]).result(
                timeout=60
            )
        assert set(result.outputs) == {sink}

    def test_unknown_model_fails_fast(self, registry):
        with ShardedScheduler(registry, shards=2, workers=1) as server:
            with pytest.raises(ServingError, match="unknown model"):
                server.submit("nope", {})

    def test_submit_before_start_rejected(self, registry):
        server = ShardedScheduler(registry, shards=2)
        with pytest.raises(ServingError, match="not running"):
            server.submit("chain", {})
        server.close()

    def test_requires_reuse(self, registry):
        with pytest.raises(ServingError, match="requires arena reuse"):
            ShardedScheduler(registry, shards=2, reuse=False)

    def test_rejects_bad_shard_counts(self, registry):
        with pytest.raises(ServingError, match="shards must be >= 1"):
            ShardedScheduler(registry, shards=0)

    def test_rejects_empty_registry(self):
        with pytest.raises(ServingError, match="no models"):
            ShardedScheduler(ModelRegistry(), shards=2)

    def test_aggregate_stats_sum_over_shards(self, registry):
        with ShardedScheduler(registry, shards=2, workers=1) as server:
            for i in range(10):
                name = registry.names()[i % 2]
                feeds = random_feeds(registry.get(name).graph, seed=i)
                server.submit(name, feeds).result(timeout=60)
            stats = server.stats()
        assert stats.requests == 10
        assert stats.errors == 0
        assert stats.batches >= 2  # at least one run per shard
        assert len(stats.latencies_s) == 10
        assert stats.pool is not None
        assert stats.pool.misses >= 2  # one cold build per shard


class TestLifecycle:
    def _segment_names(self, server) -> list[str]:
        return [
            ring.name
            for handle in server._handles
            for ring in (handle.req_ring, handle.resp_ring)
        ]

    def test_close_is_idempotent_and_unlinks_segments(self, registry):
        server = ShardedScheduler(registry, shards=2, workers=1).start()
        names = self._segment_names(server)
        assert names
        server.close()
        server.close()  # second close must be a no-op, not an error
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_segments_unlinked_after_failed_start(self, registry, tmp_path):
        # a model whose artifact cannot be opened in the child must
        # fail start() AND leave no shared-memory segments behind
        path = tmp_path / "m.json"
        registry.get("chain").save(path)
        broken = ModelRegistry()
        broken.load(path, "chain")
        path.write_text("{not json")
        server = ShardedScheduler(broken, shards=2, workers=1)
        with pytest.raises(ServingError, match="died during startup"):
            server.start()
        for name in self._segment_names(server):
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_child_death_during_preload_raises_instead_of_hanging(
        self, registry, tmp_path
    ):
        path = tmp_path / "m.json"
        registry.get("diamond").save(path)
        broken = ModelRegistry()
        broken.load(path, "diamond")
        path.unlink()
        with pytest.raises(ServingError, match="died during startup"):
            ShardedScheduler(broken, shards=1, workers=1, preload=True).start()

    def test_sigterm_drains_in_flight_before_exit(self, registry):
        server = ShardedScheduler(registry, shards=1, workers=1).start()
        try:
            graph = registry.get("chain").graph
            futs = [
                server.submit("chain", random_feeds(graph, seed=i))
                for i in range(8)
            ]
            # let the worker accept the stream before the signal lands,
            # so there is provably work in flight to drain
            futs[0].result(timeout=60)
            os.kill(server._handles[0].pid, signal.SIGTERM)
            # every accepted request resolves: served if it was already
            # in flight in the worker, or a clean draining error if the
            # signal won the race — never a hang, never a lost future
            outcomes = []
            for fut in futs:
                try:
                    fut.result(timeout=60)
                    outcomes.append("ok")
                except ServingError:
                    outcomes.append("drained")
            assert len(outcomes) == 8
            assert "ok" in outcomes  # the in-flight work was not dropped
            server._handles[0].process.join(timeout=30)
            assert server._handles[0].process.exitcode == 0
        finally:
            server.close()

    def test_killed_shard_fails_only_its_own_requests(self, registry):
        routing_probe = ShardedScheduler(registry, shards=2)
        routing = dict(routing_probe.routing)
        routing_probe.close()
        (victim_model,) = [m for m, s in routing.items() if s == 0]
        (survivor_model,) = [m for m, s in routing.items() if s == 1]

        server = ShardedScheduler(registry, shards=2, workers=1).start()
        try:
            victim = server._handles[0]
            # freeze the victim shard so its requests are provably in
            # flight when the kill lands — no race with completion
            os.kill(victim.pid, signal.SIGSTOP)
            vg = registry.get(victim_model).graph
            sg = registry.get(survivor_model).graph
            doomed = [
                server.submit(victim_model, random_feeds(vg, seed=i))
                for i in range(4)
            ]
            fine = [
                (i, server.submit(survivor_model, random_feeds(sg, seed=i)))
                for i in range(4)
            ]
            os.kill(victim.pid, signal.SIGKILL)

            for fut in doomed:
                with pytest.raises(ServingError, match="died"):
                    fut.result(timeout=60)
            ref = Executor(sg, params=init_params(sg, 0))
            for i, fut in fine:
                result = fut.result(timeout=60)
                want = ref.run(random_feeds(sg, seed=i))
                for k in want:
                    np.testing.assert_array_equal(want[k], result.outputs[k])

            # the dead shard rejects new work fast; the survivor serves
            with pytest.raises(ServingError, match="dead"):
                server.submit(victim_model, random_feeds(vg, seed=99))
            server.submit(survivor_model, random_feeds(sg, seed=99)).result(
                timeout=60
            )
            dead, alive = server.shard_stats()
            assert not dead.alive and alive.alive
        finally:
            server.close()


class TestRunLoadSharded:
    def test_run_load_verified_with_shard_stats(self, registry):
        report = run_load(
            registry,
            requests=24,
            clients=4,
            workers=1,
            max_batch=2,
            shards=2,
            preload=True,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert report.shards == 2
        assert len(report.shard_stats) == 2
        assert sum(s.requests for s in report.shard_stats) == 24
        text = report.summary()
        assert "2 processes, sticky rendezvous routing" in text
        assert "shard 0" in text and "shard 1" in text
        assert "ring peak" in text

    def test_run_load_rejects_bad_shard_args(self, registry):
        with pytest.raises(ServingError, match="shards must be >= 1"):
            run_load(registry, requests=2, shards=0)
        with pytest.raises(ServingError, match="requires arena reuse"):
            run_load(registry, requests=2, shards=2, reuse=False)


class TestRegistryPaths:
    def test_path_of_records_loaded_artifacts(self, registry, tmp_path):
        path = tmp_path / "chain.json"
        registry.get("chain").save(path)
        fresh = ModelRegistry()
        fresh.load(path, "chain")
        assert fresh.path_of("chain") == path.resolve()
        fresh.register(registry.get("diamond"), "diamond")
        assert fresh.path_of("diamond") is None
        with pytest.raises(ServingError, match="unknown model"):
            fresh.path_of("nope")

    def test_in_memory_models_are_spooled_and_cleaned_up(self, registry):
        # both fixture models are in-memory registrations: the
        # scheduler must spool them to artifacts for the children and
        # remove the spool directory on close
        server = ShardedScheduler(registry, shards=2, workers=1).start()
        spool = server._spool_dir
        assert spool is not None and spool.exists()
        graph = registry.get("chain").graph
        server.submit("chain", random_feeds(graph, seed=0)).result(timeout=60)
        server.close()
        assert not spool.exists()


def test_sigint_drains_like_sigterm(registry):
    server = ShardedScheduler(registry, shards=1, workers=1).start()
    try:
        graph = registry.get("chain").graph
        futs = [
            server.submit("chain", random_feeds(graph, seed=i))
            for i in range(4)
        ]
        os.kill(server._handles[0].pid, signal.SIGINT)
        for fut in futs:
            try:
                fut.result(timeout=60)
            except ServingError:
                pass
        deadline = time.monotonic() + 30
        while server._handles[0].process.is_alive():
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert server._handles[0].process.exitcode == 0
    finally:
        server.close()
