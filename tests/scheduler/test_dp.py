"""DP scheduler (Algorithm 1): optimality, pruning, limits."""

import pytest

from repro.exceptions import NoSolutionError, StepTimeoutError
from repro.scheduler.brute import brute_force_schedule
from repro.scheduler.dp import DPScheduler, dp_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.topological import kahn_schedule

from tests.conftest import random_dag_graph


class TestOptimality:
    def test_reports_peak_consistent_with_simulation(self, concat_conv_graph):
        res = dp_schedule(concat_conv_graph)
        sim = simulate_schedule(concat_conv_graph, res.schedule)
        assert sim.peak_bytes == res.peak_bytes

    def test_never_worse_than_kahn(self, hourglass_graph):
        res = dp_schedule(hourglass_graph)
        kahn_peak = simulate_schedule(
            hourglass_graph, kahn_schedule(hourglass_graph)
        ).peak_bytes
        assert res.peak_bytes <= kahn_peak

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_brute_force_on_random_dags(self, seed):
        g = random_dag_graph(9, seed)
        dp = dp_schedule(g)
        bf = brute_force_schedule(g)
        assert dp.peak_bytes == bf.peak_bytes
        dp.schedule.validate(g)

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force_with_views(self, seed):
        g = random_dag_graph(9, seed, with_views=True)
        dp = dp_schedule(g)
        bf = brute_force_schedule(g)
        assert dp.peak_bytes == bf.peak_bytes


class TestBudgetPruning:
    def test_budget_at_optimum_still_finds_it(self, concat_conv_graph):
        opt = dp_schedule(concat_conv_graph).peak_bytes
        res = dp_schedule(concat_conv_graph, budget=opt)
        assert res.peak_bytes == opt

    def test_budget_below_optimum_is_infeasible(self, concat_conv_graph):
        opt = dp_schedule(concat_conv_graph).peak_bytes
        with pytest.raises(NoSolutionError):
            dp_schedule(concat_conv_graph, budget=opt - 1)

    def test_pruning_reduces_expansions(self, hourglass_graph):
        free = dp_schedule(hourglass_graph)
        tight = dp_schedule(hourglass_graph, budget=free.peak_bytes)
        assert tight.states_expanded <= free.states_expanded

    def test_budget_recorded(self, chain_graph):
        res = dp_schedule(chain_graph, budget=10**9)
        assert res.budget == 10**9


class TestStepLimits:
    def test_state_cap_raises(self, hourglass_graph):
        with pytest.raises(StepTimeoutError) as exc:
            dp_schedule(hourglass_graph, max_states_per_step=1)
        assert exc.value.step >= 0

    def test_generous_cap_is_fine(self, hourglass_graph):
        res = dp_schedule(hourglass_graph, max_states_per_step=10_000)
        assert res.max_step_states <= 10_000


class TestPreallocated:
    def test_entry_tensor_counts_from_start(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("pre")
        x = b.input("x", (4, 4, 4))
        b.conv2d(x, 2, name="c")
        g = b.build()
        res = DPScheduler(preallocated=("x",)).schedule(g)
        assert res.schedule.order[0] == "x"
        # peak includes x's 256B even though it is "already there"
        assert res.peak_bytes >= 4 * 4 * 4 * 4

    def test_preallocated_with_preds_rejected(self, chain_graph):
        with pytest.raises(NoSolutionError):
            DPScheduler(preallocated=("c1",)).schedule(chain_graph)


class TestAccounting:
    def test_single_node_graph(self):
        g = random_dag_graph(1, 0)
        res = dp_schedule(g)
        assert len(res.schedule) == 1
        assert res.peak_bytes == g.nodes[0].output_bytes

    def test_states_memoized_at_least_steps(self, chain_graph):
        res = dp_schedule(chain_graph)
        assert res.states_memoized >= len(chain_graph)

    def test_wall_time_positive(self, chain_graph):
        assert dp_schedule(chain_graph).wall_time_s >= 0

    def test_kib_property(self, chain_graph):
        res = dp_schedule(chain_graph)
        assert res.peak_kib == res.peak_bytes / 1024.0
