"""Named scheduling strategies — the portfolio's building blocks.

A *strategy* is a named recipe that turns a graph into a schedule:
``SerenityConfig`` variants (the paper's pipeline at different search
budgets), the greedy list scheduler, simulated annealing, and the
memory-oblivious Kahn/DFS baselines. The registry gives each one a
stable name so that

* the :class:`~repro.scheduler.portfolio.PortfolioCompiler` can race
  them across worker processes (workers resolve strategies by name —
  nothing but strings crosses the process boundary), and
* the persistent :class:`~repro.scheduler.cache.ScheduleCache` can key
  cached schedules by ``(graph signature, strategy key)``.

Rewriting is handled uniformly: a strategy declares ``rewrites=True``
and :func:`run_strategy` applies identity graph rewriting before
invoking it, so every registered callable only ever maps *one* graph to
*one* schedule. The outcome records which graph the schedule targets
(``scheduled_graph``) — for rewriting strategies that is the rewritten
graph, exactly as in :class:`~repro.scheduler.serenity.Serenity`.

Every outcome's ``peak_bytes``/``arena_bytes`` are computed here by the
reference :func:`~repro.scheduler.memory.simulate_schedule` replay and
the arena allocator — never trusted from the strategy itself — so the
numbers are comparable across strategies by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import SchedulingError
from repro.graph.graph import Graph
from repro.scheduler.annealing import anneal_schedule
from repro.scheduler.divide import DivideAndConquerScheduler
from repro.scheduler.greedy import greedy_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import dfs_schedule, kahn_schedule

__all__ = [
    "StrategySpec",
    "StrategyOutcome",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "iter_strategies",
    "default_portfolio",
    "run_strategy",
]


@dataclass(frozen=True)
class StrategySpec:
    """One registered scheduling strategy.

    ``rank`` orders strategies from cheapest to most expensive; the
    portfolio races them in that order so that when a device budget is
    given, a cheap strategy that already fits can cancel the expensive
    search still in flight. ``version`` salts the persistent-cache key:
    bump it whenever the strategy's behaviour changes, or stale cached
    schedules would be served for the old behaviour.
    """

    name: str
    summary: str
    run: Callable[[Graph], Schedule]
    rewrites: bool = False
    rank: int = 50
    version: str = "1"

    @property
    def cache_key(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's result on one graph, with replay-verified peaks."""

    strategy: str
    schedule: Schedule
    #: the graph the schedule orders (rewritten when the strategy rewrites)
    scheduled_graph: Graph
    #: peak under sum-of-live-activations semantics (simulate_schedule)
    peak_bytes: int
    #: peak under the TFLite-style first-fit arena allocator
    arena_bytes: int
    time_s: float
    cached: bool = False

    def fits(self, budget_bytes: int) -> bool:
        """Whether the allocator-level peak meets a device budget."""
        return self.arena_bytes <= budget_bytes


_REGISTRY: dict[str, StrategySpec] = {}


def register_strategy(
    name: str,
    *,
    summary: str,
    rewrites: bool = False,
    rank: int = 50,
    version: str = "1",
) -> Callable[[Callable[[Graph], Schedule]], Callable[[Graph], Schedule]]:
    """Decorator registering ``fn`` as the strategy ``name``."""

    def deco(fn: Callable[[Graph], Schedule]) -> Callable[[Graph], Schedule]:
        if name in _REGISTRY:
            raise SchedulingError(f"duplicate strategy name {name!r}")
        _REGISTRY[name] = StrategySpec(
            name=name,
            summary=summary,
            run=fn,
            rewrites=rewrites,
            rank=rank,
            version=version,
        )
        return fn

    return deco


def get_strategy(name: str) -> StrategySpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown strategy {name!r}; available: {strategy_names()}"
        ) from None


def strategy_names() -> list[str]:
    """All registered names, cheapest strategy first."""
    return [s.name for s in sorted(_REGISTRY.values(), key=lambda s: (s.rank, s.name))]


def iter_strategies() -> Iterator[StrategySpec]:
    for name in strategy_names():
        yield _REGISTRY[name]


def default_portfolio() -> tuple[str, ...]:
    """The strategy set the portfolio compiler races by default.

    Annealing is registered but excluded here: it costs thousands of
    schedule simulations yet is dominated by the exact DP on every
    suite cell (see ``benchmarks/bench_scheduler_ablation.py``).
    """
    return ("kahn", "dfs", "greedy", "serenity-fast", "serenity-dp", "serenity")


def run_strategy(name: str, graph: Graph) -> StrategyOutcome:
    """Execute one strategy on ``graph`` and replay-verify its peaks."""
    from repro.allocator.arena import arena_peak_bytes
    from repro.rewriting.rewriter import rewrite_graph

    spec = get_strategy(name)
    t0 = time.perf_counter()
    target = rewrite_graph(graph).graph if spec.rewrites else graph
    schedule = spec.run(target)
    elapsed = time.perf_counter() - t0
    peak = simulate_schedule(target, schedule, validate=False).peak_bytes
    return StrategyOutcome(
        strategy=name,
        schedule=schedule,
        scheduled_graph=target,
        peak_bytes=peak,
        arena_bytes=arena_peak_bytes(target, schedule),
        time_s=elapsed,
    )


# ----------------------------------------------------------------------
# built-in strategies
# ----------------------------------------------------------------------
def _divide_and_conquer(max_states_per_step: int | None) -> Callable[[Graph], Schedule]:
    def run(graph: Graph) -> Schedule:
        dnc = DivideAndConquerScheduler(max_states_per_step=max_states_per_step)
        return dnc.schedule(graph).schedule

    return run


register_strategy(
    "kahn",
    summary="Kahn topological order, insertion tie-break (TFLite baseline)",
    rank=0,
)(kahn_schedule)

register_strategy(
    "dfs",
    summary="depth-first topological order (eager codegen baseline)",
    rank=1,
)(dfs_schedule)

register_strategy(
    "greedy",
    summary="greedy memory-aware list scheduler",
    rank=10,
)(greedy_schedule)

register_strategy(
    "serenity-fast",
    summary="rewriting + divide-and-conquer DP at a small state budget",
    rewrites=True,
    rank=20,
)(_divide_and_conquer(max_states_per_step=2_000))

register_strategy(
    "anneal",
    summary="simulated annealing over topological orders",
    rank=30,
)(lambda graph: anneal_schedule(graph, iterations=1_200, restarts=2).schedule)

register_strategy(
    "serenity-dp",
    summary="divide-and-conquer DP + adaptive budgeting, no rewriting",
    rank=40,
)(_divide_and_conquer(max_states_per_step=50_000))

register_strategy(
    "serenity",
    summary="full SERENITY: rewriting + divide-and-conquer DP + budgeting",
    rewrites=True,
    rank=60,
)(_divide_and_conquer(max_states_per_step=50_000))
