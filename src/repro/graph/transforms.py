"""Graph normalisation passes applied before scheduling.

``mark_concat_views`` implements the concat buffer sharing every serious
edge runtime performs (and which the paper's Fig 9 cost model assumes:
the pre-rewrite footprint of ``concat -> conv`` is ``sum(x_i) + y``,
i.e. the concatenated tensor is *not* double-buffered): a concat operand
whose only consumer is the concat can be produced directly into its
slice of the concat output buffer. Operands with additional consumers
stay separately materialised and are copied at concat time (partial
view, recorded in the ``view_inputs`` attr).

The pass is applied by every model-zoo factory so the TFLite-like
baseline and SERENITY schedules are compared under identical, realistic
buffer semantics.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics

__all__ = ["mark_concat_views"]


def mark_concat_views(graph: Graph) -> Graph:
    """Return a copy with eligible concat operands aliased into the
    concat output buffer.

    An operand (input occurrence) is eligible iff

    * it appears exactly once in the concat's input list (a repeated
      operand cannot occupy two offsets of one buffer),
    * it is not claimed by another view concat (a tensor cannot be a
      slice of two different buffers),
    * it is not itself aliased in-place into some other buffer, and
    * it is not a graph input (whose placement is fixed by the caller).

    Operands with *additional* consumers remain eligible: each slice is
    written exactly once, and other readers simply read from within the
    shared buffer — this is what lets e.g. a DARTS state that feeds both
    the cell-output concat and a later op chain live directly in the
    cell-output buffer. Concats whose every operand is ineligible stay
    ordinary copies.
    """
    out = Graph(graph.name)
    inplace_nodes = {
        n.name for n in graph if n.memory.inplace_of is not None
    }
    # operands already aliased into an existing view buffer cannot be a
    # slice of a second one (makes the pass idempotent and safe to run
    # after rewriting, whose gather concats are views)
    claimed: set[str] = set()
    for node in graph:
        if node.memory.view:
            aliased = node.attrs.get("view_inputs")
            indices = range(len(node.inputs)) if aliased is None else aliased
            claimed.update(node.inputs[j] for j in indices)
    for node in graph:
        if node.op != "concat" or node.memory.view or not node.inputs:
            out.add(node.replace())
            continue
        counts: dict[str, int] = {}
        for src in node.inputs:
            counts[src] = counts.get(src, 0) + 1
        eligible = tuple(
            j
            for j, src in enumerate(node.inputs)
            if counts[src] == 1
            and src not in claimed
            and src not in inplace_nodes
            and graph.node(src).op != "input"
        )
        claimed.update(node.inputs[j] for j in eligible)
        if not eligible:
            out.add(node.replace())
            continue
        attrs = dict(node.attrs)
        if len(eligible) < len(node.inputs):
            attrs["view_inputs"] = eligible
        else:
            attrs.pop("view_inputs", None)
        out.add(
            node.replace(attrs=attrs, memory=MemorySemantics(view=True))
        )
    return out
