"""Fig 3(b): the schedule-space peak-memory CDF for SwiftNet Cell A.

The paper's point: under the SparkFun Edge's 250 KB budget only 4.1 % of
topological orders are feasible and 0.04 % are optimal — so a
memory-oblivious scheduler almost surely fails, motivating the DP. We
reproduce the CDF by sampling random-tie-break topological orders, and
compute the optimal peak exactly with the DP scheduler (rather than
trusting the sample minimum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import SPARKFUN_EDGE_BYTES, ScheduleSpaceCDF, sample_peak_cdf
from repro.experiments.common import compiled
from repro.models.suite import get_cell

__all__ = ["Fig3Result", "run", "render"]

PAPER = {"within_250kb": 0.041, "optimal": 0.0004}


@dataclass(frozen=True)
class Fig3Result:
    cell_key: str
    cdf: ScheduleSpaceCDF
    optimal_bytes: int
    budget_bytes: int

    @property
    def fraction_within_budget(self) -> float:
        return self.cdf.fraction_within(self.budget_bytes)

    @property
    def fraction_optimal(self) -> float:
        return float((self.cdf.peaks <= self.optimal_bytes).mean())


def run(
    cell_key: str = "swiftnet-a",
    samples: int = 5000,
    seed: int = 0,
    budget_bytes: int = SPARKFUN_EDGE_BYTES,
) -> Fig3Result:
    spec = get_cell(cell_key)
    graph = spec.factory()
    cdf = sample_peak_cdf(graph, samples=samples, seed=seed)
    optimal = compiled(spec, rewrite=False).peak_bytes
    return Fig3Result(
        cell_key=cell_key,
        cdf=cdf,
        optimal_bytes=optimal,
        budget_bytes=budget_bytes,
    )


def render(result: Fig3Result) -> str:
    c = result.cdf
    # The paper's 250 KB SparkFun budget sits at 1.25x its cell's optimal
    # peak (250.9/200.7); our synthesised cell has a different optimum, so
    # the matched *relative* budget is the comparable statistic.
    rel_budget = 1.25 * result.optimal_bytes
    lines = [
        f"Fig 3(b) - CDF of schedule peak memory ({result.cell_key}, "
        f"{c.n} sampled schedules)",
        "=" * 64,
        f"optimal peak (DP)        : {result.optimal_bytes / 1024:8.1f}KB",
        f"best sampled peak        : {c.optimal_bytes / 1024:8.1f}KB",
        f"worst sampled peak       : {c.worst_bytes / 1024:8.1f}KB",
        f"within {result.budget_bytes // 1024}KB constraint  : "
        f"{100 * result.fraction_within_budget:8.2f}%  (paper {100 * PAPER['within_250kb']:.1f}%)",
        f"within 1.25x optimal     : "
        f"{100 * c.fraction_within(rel_budget):8.2f}%  "
        "(matched relative budget; paper's 250KB = 1.25x its optimum)",
        f"achieving optimal peak   : "
        f"{100 * result.fraction_optimal:8.3f}%  (paper {100 * PAPER['optimal']:.2f}%)",
        "",
        "cumulative distribution (peak KB -> fraction of schedules):",
    ]
    for kb, frac in result.cdf.cdf_points(resolution=11):
        bar = "#" * int(frac * 40)
        lines.append(f"  {kb:8.1f}KB  {100 * frac:6.1f}%  {bar}")
    return "\n".join(lines)


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
