"""Additional identity rewriting rules (extensions beyond the paper).

* :class:`ConcatFlattening` — ``concat(concat(a, b), c) ->
  concat(a, b, c)``: flattening nested concats is an identity (channel
  order is preserved) and *enables* the paper's partitioning rules,
  whose matchers only see one concat level.
* :class:`IdentityElimination` — drops ``identity`` nodes, rerouting
  consumers to the source (frameworks insert these as placeholders; each
  one costs a full activation copy in the memory model).

Neither is in the default rule set (to keep the paper-faithful pipeline
exactly the paper's); compose them explicitly:

>>> from repro.rewriting import IdentityGraphRewriter, DEFAULT_RULES
>>> from repro.rewriting.extra_rules import EXTRA_RULES
>>> rewriter = IdentityGraphRewriter(EXTRA_RULES + DEFAULT_RULES)
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.ops import infer_shape
from repro.rewriting.patterns import Match

__all__ = ["ConcatFlattening", "IdentityElimination", "EXTRA_RULES"]


class ConcatFlattening:
    """Inline a concat's concat-operands when they have no other reader."""

    name = "concat_flattening"

    def find(self, graph: Graph) -> list[Match]:
        matches = []
        claimed: set[str] = set()
        for node in graph:
            if node.op != "concat":
                continue
            inner = [
                src
                for src in node.inputs
                if graph.node(src).op == "concat"
                and not graph.node(src).memory.view
                and graph.succs(src) == (node.name,)
                and src not in claimed
            ]
            if not inner or node.name in claimed:
                continue
            claimed.update(inner)
            claimed.add(node.name)
            matches.append(
                Match(
                    rule=self.name,
                    anchor=node.name,
                    removed=tuple(inner) + (node.name,),
                )
            )
        return matches

    def emit(
        self,
        graph: Graph,
        match: Match,
        namer: Callable[[str], str],
        rename: dict[str, str],
    ) -> Iterator[Node]:
        outer = graph.node(match.anchor)
        inner_names = set(match.removed) - {match.anchor}
        flat: list[str] = []
        for src in outer.inputs:
            if src in inner_names:
                flat.extend(
                    rename.get(s, s) for s in graph.node(src).inputs
                )
            else:
                flat.append(rename.get(src, src))
        # resolve specs through the original graph (rewrites preserve
        # output specs, so the renamed producer has the old one's shape)
        specs = [graph.node(_original(graph, s, rename)).output for s in flat]
        out = infer_shape("concat", specs, dict(outer.attrs))
        node = Node(
            name=namer(f"{outer.name}/flat"),
            op="concat",
            inputs=tuple(flat),
            output=out,
            attrs={k: v for k, v in outer.attrs.items() if k != "view_inputs"},
            memory=outer.memory,
        )
        yield node
        rename[outer.name] = node.name


def _original(graph: Graph, name: str, rename: dict[str, str]) -> str:
    """Resolve a possibly-renamed node back to an original graph name
    carrying the same tensor spec (rewrites preserve output specs)."""
    if name in graph:
        return name
    for old, new in rename.items():
        if new == name:
            return old
    raise KeyError(name)  # pragma: no cover - rename map is total


class IdentityElimination:
    """Reroute consumers of ``identity`` nodes to the underlying source."""

    name = "identity_elimination"

    def find(self, graph: Graph) -> list[Match]:
        return [
            # an identity that *is* a graph output must stay: something
            # has to hold the output tensor
            Match(rule=self.name, anchor=node.name, removed=(node.name,))
            for node in graph
            if node.op == "identity" and graph.succs(node.name)
        ]

    def emit(
        self,
        graph: Graph,
        match: Match,
        namer: Callable[[str], str],
        rename: dict[str, str],
    ) -> Iterator[Node]:
        node = graph.node(match.anchor)
        source = node.inputs[0]
        rename[node.name] = rename.get(source, source)
        return iter(())


EXTRA_RULES = (ConcatFlattening(), IdentityElimination())
