"""Two-level (on-chip SRAM / off-chip DRAM) memory traffic simulator.

Reproduces the paper's Fig 11 methodology: with the whole schedule known
at compile time, replay the buffer access trace against an on-chip
memory of capacity ``C`` under a replacement policy (Belady's
clairvoyant MIN by default) and count off-chip bytes moved.

Model (the README's "Memory hierarchy & spill" section records these
rules next to the runtime spill model):

* a buffer must be on-chip to be read or written;
* a **write** (node producing its output) allocates residency without a
  DRAM fetch — the data is being created, not loaded;
* a **read** of a non-resident buffer fetches it (``bytes_in += size``);
* evicting a *dirty* buffer that will be used again writes it back
  (``bytes_out += size``); clean or dead buffers drop silently;
* a buffer is dirty from its producing write until written back;
* after its last use a buffer is dropped without writeback;
* buffers larger than the on-chip capacity bypass SRAM entirely and
  stream from/to DRAM on every access;
* if the running schedule's live set fits in ``C`` at all times no
  traffic occurs — the "SERENITY removes off-chip communication" cases
  of Fig 11.

This simulator is the *offline* (tile-granularity, reactive-eviction)
half of the story. Its runtime counterpart is
:mod:`repro.allocator.spill` + the plan executor's tiered arena: spill
sites are chosen at compile time with the same replacement-policy
registry (:mod:`repro.memsim.policies`), fetch/writeback steps are
*executed* at whole-buffer granularity, and the measured traffic comes
back in this module's :class:`TrafficReport` units
(:meth:`~repro.runtime.plan_executor.PlanExecutor.traffic_report`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace

from repro.exceptions import ReproError
from repro.graph.graph import Graph
from repro.memsim.policies import FIFOPolicy, make_policy
from repro.memsim.trace import AccessTrace, build_trace, resolve_tile_bytes
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "OffchipLink",
    "TrafficReport",
    "MemoryHierarchySimulator",
    "offchip_traffic",
]


@dataclass(frozen=True)
class OffchipLink:
    """Modeled timing of the on-chip <-> off-chip transfer path.

    Real edge parts pay bandwidth and per-transfer latency for every
    DRAM/flash word moved; host memcpys do not. Attaching a link to the
    plan executor makes each fetch/writeback cost
    ``latency_s + nbytes / bandwidth_bytes_per_s`` of wall-clock, so
    stall-vs-hidden accounting measures what the modeled part would
    feel rather than the host's memcpy throughput."""

    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ReproError("off-chip link bandwidth must be positive")
        if self.latency_s < 0:
            raise ReproError("off-chip link latency must be non-negative")

    def transfer_s(self, nbytes: int) -> float:
        """Modeled wall-clock seconds to move ``nbytes``."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class TrafficReport:
    """Off-chip communication accounting for one schedule."""

    capacity_bytes: int
    policy: str
    bytes_in: int
    bytes_out: int
    fetches: int
    writebacks: int
    bypass_bytes: int
    accesses: int
    #: transfer wall-clock the compute stream waited on (runtime only;
    #: the offline simulator counts bytes, not seconds)
    stall_s: float = 0.0
    #: transfer wall-clock overlapped behind compute by the prefetch
    #: engine (zero for inline spill execution)
    hidden_s: float = 0.0
    #: transfer granularity the counted traffic moved at (``None`` =
    #: whole-buffer staging)
    tile_bytes: int | None = None

    @property
    def total_bytes(self) -> int:
        """Total off-chip traffic, the Fig 11 quantity."""
        return self.bytes_in + self.bytes_out + self.bypass_bytes

    @property
    def eliminated(self) -> bool:
        """True when the whole execution stayed on-chip."""
        return self.total_bytes == 0

    @property
    def total_kib(self) -> float:
        return self.total_bytes / 1024.0

    @property
    def hidden_fraction(self) -> float:
        """Share of transfer time hidden behind compute."""
        busy = self.stall_s + self.hidden_s
        return self.hidden_s / busy if busy > 0 else 0.0


@dataclass
class MemoryHierarchySimulator:
    """Replays access traces against one on-chip capacity."""

    capacity_bytes: int
    policy: str = "belady"

    def run(self, trace: AccessTrace) -> TrafficReport:
        if self.capacity_bytes <= 0:
            raise ReproError("on-chip capacity must be positive")
        policy = make_policy(self.policy, trace)

        resident: dict[int, int] = {}  # buffer -> size
        dirty: set[int] = set()
        used = 0
        bytes_in = bytes_out = bypass = 0
        fetches = writebacks = 0

        def evict_for(size: int, position: int) -> None:
            nonlocal used, bytes_out, writebacks
            while used + size > self.capacity_bytes:
                victim = policy.victim(set(resident), position)
                vsize = resident.pop(victim)
                used -= vsize
                if victim in dirty:
                    dirty.discard(victim)
                    # write back only if the data is needed again
                    ps = trace.positions.get(victim, ())
                    i = bisect.bisect_right(ps, position)
                    if i < len(ps):
                        bytes_out += vsize
                        writebacks += 1
                if isinstance(policy, FIFOPolicy):
                    policy.note_eviction(victim)

        for pos, acc in enumerate(trace.accesses):
            b, size = acc.buffer_id, acc.size
            if size > self.capacity_bytes:
                # bypass: stream directly from/to DRAM
                bypass += size
                policy.on_access(b, pos)
                continue
            if b in resident:
                policy.on_access(b, pos)
            else:
                if acc.kind == "read" and acc.last_use:
                    # final read: stream from DRAM without installing —
                    # the kernel consumes a dying tensor, so caching it
                    # would only evict useful residents (no-allocate on
                    # last use)
                    bytes_in += size
                    fetches += 1
                    continue
                evict_for(size, pos)
                if acc.kind == "read":
                    bytes_in += size
                    fetches += 1
                resident[b] = size
                used += size
                policy.on_access(b, pos)
            if acc.kind == "write":
                dirty.add(b)
            if acc.last_use:
                if b in resident:
                    used -= resident.pop(b)
                dirty.discard(b)
                if isinstance(policy, FIFOPolicy):
                    policy.note_eviction(b)

        return TrafficReport(
            capacity_bytes=self.capacity_bytes,
            policy=self.policy,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            fetches=fetches,
            writebacks=writebacks,
            bypass_bytes=bypass,
            accesses=len(trace.accesses),
        )


def offchip_traffic(
    graph: Graph,
    schedule: Schedule,
    capacity_bytes: int,
    policy: str = "belady",
    model: BufferModel | None = None,
    tile_bytes: int | None = None,
) -> TrafficReport:
    """Convenience: trace + simulate in one call.

    ``tile_bytes=None`` uses the trace builder's default granularity;
    pass an explicit value (or ``0`` for whole-tensor transfers) to
    override.
    """
    tile_bytes = resolve_tile_bytes(tile_bytes)
    trace = build_trace(graph, schedule, model=model, tile_bytes=tile_bytes)
    report = MemoryHierarchySimulator(capacity_bytes, policy).run(trace)
    return replace(report, tile_bytes=tile_bytes)
