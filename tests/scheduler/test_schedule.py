"""Schedule container validation."""

import pytest

from repro.exceptions import InvalidScheduleError
from repro.scheduler.schedule import Schedule


class TestSchedule:
    def test_iteration_and_len(self):
        s = Schedule(("a", "b"))
        assert list(s) == ["a", "b"]
        assert len(s) == 2
        assert s[1] == "b"

    def test_position(self):
        s = Schedule(("a", "b", "c"))
        assert s.position("b") == 1

    def test_position_missing(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(("a",)).position("zz")

    def test_positions_map(self):
        assert Schedule(("a", "b")).positions() == {"a": 0, "b": 1}

    def test_validate_ok(self, chain_graph):
        Schedule(tuple(chain_graph.node_names)).validate(chain_graph)

    def test_validate_repeat(self, chain_graph):
        with pytest.raises(InvalidScheduleError, match="repeats"):
            Schedule(("x", "x", "c1", "r")).validate(chain_graph)

    def test_validate_coverage(self, chain_graph):
        with pytest.raises(InvalidScheduleError, match="cover"):
            Schedule(("x", "c1")).validate(chain_graph)

    def test_validate_edge_violation(self, chain_graph):
        with pytest.raises(InvalidScheduleError, match="violated"):
            Schedule(("c1", "x", "r", "c2")).validate(chain_graph)

    def test_of_builds_and_validates(self, chain_graph):
        s = Schedule.of(chain_graph, chain_graph.node_names)
        assert s.graph_name == chain_graph.name
