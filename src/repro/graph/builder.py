"""Fluent graph construction with automatic shape inference.

Example
-------
>>> from repro.graph import GraphBuilder
>>> b = GraphBuilder("cell")
>>> x = b.input("x", (8, 16, 16))
>>> l = b.conv2d(x, out_channels=16, kernel=3)
>>> r = b.depthwise_conv2d(x, kernel=3)
>>> y = b.concat([l, r])
>>> g = b.build()
>>> g.node(y).output.shape
(24, 16, 16)
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import DType, TensorSpec

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Builds a :class:`Graph` node by node, inferring output shapes
    through the operator registry.

    Every op method returns the new node's *name*, so results chain
    naturally. Names are auto-generated (``conv2d_3``) unless given.
    """

    def __init__(self, name: str = "graph") -> None:
        self._graph = Graph(name)
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # core
    # ------------------------------------------------------------------
    def _fresh_name(self, op: str, name: str | None) -> str:
        if name is not None:
            return name
        n = self._counters.get(op, 0)
        self._counters[op] = n + 1
        return f"{op}_{n}"

    def op(
        self,
        op: str,
        inputs: Sequence[str] = (),
        name: str | None = None,
        memory: MemorySemantics | None = None,
        **attrs: Any,
    ) -> str:
        """Add an arbitrary registered op; returns the node name."""
        from repro.ops import infer_shape

        inputs = tuple(inputs)
        specs = [self._graph.node(src).output for src in inputs]
        output = infer_shape(op, specs, attrs)
        node = Node(
            name=self._fresh_name(op, name),
            op=op,
            inputs=inputs,
            output=output,
            attrs=dict(attrs),
            memory=memory or MemorySemantics(),
        )
        self._graph.add(node)
        return node.name

    def build(self, validate: bool = True) -> Graph:
        """Finish and return the graph."""
        if validate:
            self._graph.validate()
        return self._graph

    @property
    def graph(self) -> Graph:
        """The graph under construction (mutable view)."""
        return self._graph

    def spec(self, name: str) -> TensorSpec:
        """Output spec of an already-added node."""
        return self._graph.node(name).output

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------
    def input(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: DType | str = DType.FLOAT32,
    ) -> str:
        return self.op("input", (), name=name, shape=tuple(shape), dtype=str(DType.from_any(dtype).value))

    def conv2d(
        self,
        x: str,
        out_channels: int,
        kernel: int | tuple[int, int] = 1,
        stride: int | tuple[int, int] = 1,
        padding: str | int = "same",
        name: str | None = None,
        **extra: Any,
    ) -> str:
        return self.op(
            "conv2d",
            (x,),
            name=name,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            **extra,
        )

    def pointwise_conv2d(
        self, x: str, out_channels: int, name: str | None = None, **extra: Any
    ) -> str:
        """1x1 convolution (the pointwise half of a separable conv)."""
        return self.conv2d(x, out_channels, kernel=1, name=name, **extra)

    def depthwise_conv2d(
        self,
        x: str,
        kernel: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        padding: str | int = "same",
        multiplier: int = 1,
        name: str | None = None,
        **extra: Any,
    ) -> str:
        return self.op(
            "depthwise_conv2d",
            (x,),
            name=name,
            kernel=kernel,
            stride=stride,
            padding=padding,
            multiplier=multiplier,
            **extra,
        )

    def concat(self, xs: Iterable[str], name: str | None = None, **extra: Any) -> str:
        xs = tuple(xs)
        if not xs:
            raise GraphError("concat needs at least one input")
        return self.op("concat", xs, name=name, **extra)

    def add(self, *xs: str, name: str | None = None) -> str:
        return self.op("add", tuple(xs), name=name)

    def mul(self, *xs: str, name: str | None = None) -> str:
        return self.op("mul", tuple(xs), name=name)

    def relu(self, x: str, name: str | None = None) -> str:
        return self.op("relu", (x,), name=name)

    def sigmoid(self, x: str, name: str | None = None) -> str:
        return self.op("sigmoid", (x,), name=name)

    def identity(self, x: str, name: str | None = None) -> str:
        return self.op("identity", (x,), name=name)

    def batch_norm(self, x: str, name: str | None = None) -> str:
        return self.op("batch_norm", (x,), name=name)

    def max_pool2d(
        self,
        x: str,
        kernel: int | tuple[int, int] = 2,
        stride: int | tuple[int, int] | None = None,
        padding: str | int = "valid",
        name: str | None = None,
    ) -> str:
        attrs: dict[str, Any] = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self.op("max_pool2d", (x,), name=name, **attrs)

    def avg_pool2d(
        self,
        x: str,
        kernel: int | tuple[int, int] = 2,
        stride: int | tuple[int, int] | None = None,
        padding: str | int = "valid",
        name: str | None = None,
    ) -> str:
        attrs: dict[str, Any] = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self.op("avg_pool2d", (x,), name=name, **attrs)

    def global_avg_pool(self, x: str, name: str | None = None) -> str:
        return self.op("global_avg_pool", (x,), name=name)

    def flatten(self, x: str, name: str | None = None) -> str:
        return self.op("flatten", (x,), name=name)

    def dense(self, x: str, units: int, name: str | None = None, **extra: Any) -> str:
        return self.op("dense", (x,), name=name, units=units, **extra)

    def slice_channels(
        self, x: str, lo: int, hi: int, name: str | None = None
    ) -> str:
        return self.op("slice_channels", (x,), name=name, range=(lo, hi))

    # ------------------------------------------------------------------
    # composite helpers used by the model zoo
    # ------------------------------------------------------------------
    def separable_conv(
        self,
        x: str,
        out_channels: int,
        kernel: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        name: str | None = None,
    ) -> str:
        """Depthwise-separable conv block: relu → dw → pw → bn (one round),
        the primitive expansion used when lowering DARTS ``sep_conv`` ops."""
        prefix = self._fresh_name("sep_conv", name)
        r = self.relu(x, name=f"{prefix}/relu")
        d = self.depthwise_conv2d(
            r, kernel=kernel, stride=stride, name=f"{prefix}/dw"
        )
        p = self.pointwise_conv2d(d, out_channels, name=f"{prefix}/pw")
        return self.batch_norm(p, name=f"{prefix}/bn")
