"""Benchmark-suite fixtures.

Each benchmark regenerates one table/figure of the paper, saves the
rendered paper-vs-measured text under ``benchmarks/results/`` and
asserts the reproduction's qualitative claims. SERENITY compilations are
cached per process (``repro.experiments.common``), so the suite shares
one compilation of each cell across figures.

Performance benchmarks additionally write machine-readable
``BENCH_<name>.json`` documents (via ``save_json``) so the perf
trajectory — req/s, samples/s, latency percentiles, arena peaks — is
tracked across PRs; CI uploads them as build artifacts and into the
step summary.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json(results_dir):
    """Persist a machine-readable benchmark document.

    ``save_json("serving", payload)`` writes
    ``benchmarks/results/BENCH_serving.json`` with a small host
    fingerprint merged in, so results compared across PRs carry the
    context needed to explain absolute-number drift.
    """
    import numpy

    def _save(name: str, payload: dict) -> Path:
        doc = {
            "bench": name,
            "host": {
                "python": platform.python_version(),
                "numpy": numpy.__version__,
                "machine": platform.machine(),
            },
            **payload,
        }
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path

    return _save
