"""SwiftNet-like cells A/B/C (Zhang et al., 2019) for the HPD workload.

SwiftNet's exact node-level architecture is not public, so these cells
are *synthesised to the paper's published structural facts* (the
substitution is recorded in DESIGN.md):

* the full network has **62 nodes partitioned {21, 19, 22}** at the two
  cell-boundary cuts — Table 2's ``62={21,19,22}`` (cell A's 21 includes
  the network input; B and C contribute 19 and 22 nodes);
* concat-heavy multi-branch wiring with depthwise-separable convs, so
  both identity-rewriting patterns (``concat->conv`` and
  ``concat->depthwise``) fire, as they do on the real SwiftNet
  (Table 2's 62 -> 92 node growth);
* activation tensors in the hundreds-of-KB regime of Fig 12/15 (fp32).

Nodes are emitted **level by level** (all branch depthwise convs, then
all pointwise convs), matching how graph exporters serialise NAS cells —
this is the operator order the TFLite-like baseline executes, and it is
what makes the baseline's peak poor on wide cells: every branch's
intermediate is alive simultaneously.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.transforms import mark_concat_views

__all__ = [
    "swiftnet_cell_a",
    "swiftnet_cell_b",
    "swiftnet_cell_c",
    "swiftnet_hpd",
    "SWIFTNET_PARTITION",
]

#: Table 2 partition sizes (owned nodes per divide-and-conquer segment)
SWIFTNET_PARTITION = (21, 19, 22)


def _cell_a_body(b: GraphBuilder, x: str, p: str = "") -> str:
    """Cell A body: 20 nodes after the input (21 counting it)."""
    stem = b.conv2d(x, 28, kernel=1, stride=2, name=f"{p}stem_pw")
    # block 1: five separable branches, emitted level-wise (BFS)
    dws = [b.depthwise_conv2d(stem, kernel=3, name=f"{p}b1_dw{i}") for i in range(5)]
    pws = [b.conv2d(d, 7, kernel=1, name=f"{p}b1_pw{i}") for i, d in enumerate(dws)]
    cat1 = b.concat(pws, name=f"{p}cat1")
    merge = b.conv2d(cat1, 32, kernel=3, stride=2, name=f"{p}merge_conv")
    # block 2: five pointwise branches gathered by a depthwise conv
    qws = [b.conv2d(merge, 7, kernel=1, name=f"{p}b2_pw{i}") for i in range(5)]
    cat2 = b.concat(qws, name=f"{p}cat2")
    return b.depthwise_conv2d(cat2, kernel=3, name=f"{p}tail_dw")


def _cell_b_body(b: GraphBuilder, x: str, p: str = "") -> str:
    """Cell B body: 19 nodes after the input. Branches expand straight
    off the cell input (channel multiplier 2) — no stem, so the baseline
    pays for every expanded branch at once."""
    dws = [
        b.depthwise_conv2d(x, kernel=3, multiplier=2, name=f"{p}b1_dw{i}")
        for i in range(4)
    ]
    pws = [b.conv2d(d, 10, kernel=1, name=f"{p}b1_pw{i}") for i, d in enumerate(dws)]
    cat1 = b.concat(pws, name=f"{p}cat1")
    merge = b.conv2d(cat1, 24, kernel=3, name=f"{p}merge_conv")
    norm = b.batch_norm(merge, name=f"{p}merge_bn")
    qws = [b.conv2d(norm, 8, kernel=1, name=f"{p}b2_pw{i}") for i in range(5)]
    cat2 = b.concat(qws, name=f"{p}cat2")
    tail = b.depthwise_conv2d(cat2, kernel=3, name=f"{p}tail_dw")
    return b.conv2d(tail, 24, kernel=1, name=f"{p}tail_pw")


def _cell_c_body(b: GraphBuilder, x: str, p: str = "") -> str:
    """Cell C body: 22 nodes after the input (the network's final cell):
    a 7-way expansion block (depthwise channel multiplier 2) whose concat
    dominates the footprint — rewriting shines here, as in the paper's
    Cell C (Fig 10's largest rewriting gain)."""
    stem = b.conv2d(x, 24, kernel=1, stride=2, name=f"{p}stem_pw")
    dws = [
        b.depthwise_conv2d(stem, kernel=3, multiplier=2, name=f"{p}b1_dw{i}")
        for i in range(7)
    ]
    pws = [b.conv2d(d, 8, kernel=1, name=f"{p}b1_pw{i}") for i, d in enumerate(dws)]
    cat1 = b.concat(pws, name=f"{p}cat1")
    merge = b.conv2d(cat1, 32, kernel=3, name=f"{p}merge_conv")
    qws = [b.conv2d(merge, 12, kernel=1, name=f"{p}b2_pw{i}") for i in range(2)]
    cat2 = b.concat(qws, name=f"{p}cat2")
    tail = b.depthwise_conv2d(cat2, kernel=3, name=f"{p}tail_dw")
    return b.global_avg_pool(tail, name=f"{p}gap")


def _standalone(name: str, input_shape: tuple[int, int, int], body) -> Graph:
    b = GraphBuilder(name)
    x = b.input("x", input_shape)
    body(b, x)
    # TFLite-style concat buffer sharing (see graph.transforms)
    return mark_concat_views(b.build())


def swiftnet_cell_a(input_shape: tuple[int, int, int] = (8, 56, 56)) -> Graph:
    """Cell A standalone: 21 nodes including the HPD input."""
    g = _standalone("swiftnet-a", input_shape, _cell_a_body)
    assert len(g) == 21, f"cell A must have 21 nodes, got {len(g)}"
    return g


def swiftnet_cell_b(input_shape: tuple[int, int, int] = (35, 14, 14)) -> Graph:
    """Cell B standalone: 19 owned nodes plus the boundary input stub."""
    g = _standalone("swiftnet-b", input_shape, _cell_b_body)
    assert len(g) == 20, f"cell B must have 20 nodes standalone, got {len(g)}"
    return g


def swiftnet_cell_c(input_shape: tuple[int, int, int] = (24, 14, 14)) -> Graph:
    """Cell C standalone: 22 owned nodes plus the boundary input stub."""
    g = _standalone("swiftnet-c", input_shape, _cell_c_body)
    assert len(g) == 23, f"cell C must have 23 nodes standalone, got {len(g)}"
    return g


def swiftnet_hpd(input_shape: tuple[int, int, int] = (8, 56, 56)) -> Graph:
    """The full 62-node SwiftNet: cells A → B → C stacked at single-node
    cuts — the hourglass topology divide-and-conquer exploits
    (Table 2: ``62 = {21, 19, 22}``)."""
    b = GraphBuilder("swiftnet-hpd")
    x = b.input("x", input_shape)

    prev = _cell_a_body(b, x, "A/")
    prev = _cell_b_body(b, prev, "B/")
    _cell_c_body(b, prev, "C/")
    g = mark_concat_views(b.build())
    assert len(g) == sum(SWIFTNET_PARTITION), (
        f"SwiftNet must have {sum(SWIFTNET_PARTITION)} nodes, got {len(g)}"
    )
    return g
