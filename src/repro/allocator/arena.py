"""Offset allocators for a single linear arena.

Two strategies, both returning an :class:`AllocationPlan`:

* :func:`first_fit_arena` — dynamic first-fit in execution order,
  re-implementing TensorFlow Lite's ``simple_memory_arena`` behaviour
  (the baseline memory scheme the paper compares under, see the Fig 10
  footnote). Allocations happen as execution reaches each buffer's start
  step and take the lowest-offset gap that fits; frees punch holes that
  later allocations may fill. Fragmentation makes the high-water mark
  exceed the ideal sum-of-live peak — visible as the allocator overhead
  in Fig 12(a) vs 12(b).

* :func:`greedy_by_size_plan` — TFLite's ahead-of-time
  ``GreedyBySizePlanner``: place buffers in decreasing size order at the
  lowest offset compatible with temporally-overlapping, already-placed
  buffers. Usually tighter than first-fit; included as an ablation
  (``bench_allocator_ablation``).

Every plan is checked: temporally overlapping buffers must not overlap
in address space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AllocationError
from repro.allocator.lifetimes import BufferLifetime, compute_lifetimes
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "AllocationPlan",
    "first_fit_arena",
    "greedy_by_size_plan",
    "plan_allocation",
    "arena_peak_bytes",
]


@dataclass(frozen=True)
class AllocationPlan:
    """Byte offsets for every buffer plus the arena high-water mark."""

    strategy: str
    offsets: dict[int, int]
    arena_bytes: int
    lifetimes: tuple[BufferLifetime, ...]

    @property
    def arena_kib(self) -> float:
        return self.arena_bytes / 1024.0

    def validate(self) -> "AllocationPlan":
        """Raise :class:`AllocationError` on address-space overlap of
        temporally live buffer pairs, or on out-of-arena placement."""
        lts = list(self.lifetimes)
        for i, a in enumerate(lts):
            off_a = self.offsets[a.buffer_id]
            if off_a < 0 or off_a + a.size > self.arena_bytes:
                raise AllocationError(
                    f"buffer {a.buffer_id} at [{off_a}, {off_a + a.size}) "
                    f"escapes the {self.arena_bytes}-byte arena"
                )
            for b in lts[i + 1 :]:
                if not a.overlaps(b):
                    continue
                off_b = self.offsets[b.buffer_id]
                if off_a < off_b + b.size and off_b < off_a + a.size:
                    raise AllocationError(
                        f"live buffers {a.buffer_id} and {b.buffer_id} overlap: "
                        f"[{off_a}, {off_a + a.size}) vs [{off_b}, {off_b + b.size})"
                    )
        return self


def _lowest_gap(blocks: list[tuple[int, int]], size: int) -> int:
    """Lowest offset fitting ``size`` among sorted (offset, size) blocks."""
    cursor = 0
    for off, sz in blocks:
        if off - cursor >= size:
            return cursor
        cursor = max(cursor, off + sz)
    return cursor


def first_fit_arena(lifetimes: list[BufferLifetime]) -> AllocationPlan:
    """Dynamic first-fit in execution order (TFLite simple arena)."""
    by_start = sorted(lifetimes, key=lambda lt: (lt.start, lt.buffer_id))
    live: list[tuple[int, int, BufferLifetime]] = []  # (offset, size, lt)
    offsets: dict[int, int] = {}
    high_water = 0
    for lt in by_start:
        live = [(o, s, x) for (o, s, x) in live if x.end > lt.start]
        live.sort()
        offset = _lowest_gap([(o, s) for (o, s, _) in live], lt.size)
        offsets[lt.buffer_id] = offset
        live.append((offset, lt.size, lt))
        high_water = max(high_water, offset + lt.size)
    return AllocationPlan(
        strategy="first_fit",
        offsets=offsets,
        arena_bytes=high_water,
        lifetimes=tuple(lifetimes),
    ).validate()


def greedy_by_size_plan(lifetimes: list[BufferLifetime]) -> AllocationPlan:
    """Ahead-of-time greedy-by-size placement (TFLite planner)."""
    by_size = sorted(lifetimes, key=lambda lt: (-lt.size, lt.start, lt.buffer_id))
    placed: list[tuple[int, BufferLifetime]] = []  # (offset, lt)
    offsets: dict[int, int] = {}
    high_water = 0
    for lt in by_size:
        conflicts = sorted(
            (off, x.size) for off, x in placed if lt.overlaps(x)
        )
        offset = _lowest_gap(conflicts, lt.size)
        offsets[lt.buffer_id] = offset
        placed.append((offset, lt))
        high_water = max(high_water, offset + lt.size)
    return AllocationPlan(
        strategy="greedy_by_size",
        offsets=offsets,
        arena_bytes=high_water,
        lifetimes=tuple(lifetimes),
    ).validate()


_STRATEGIES = {
    "first_fit": first_fit_arena,
    "greedy_by_size": greedy_by_size_plan,
}


def plan_allocation(
    graph: Graph,
    schedule: Schedule,
    strategy: str = "first_fit",
    model: BufferModel | None = None,
) -> AllocationPlan:
    """Lifetimes + offsets in one call."""
    try:
        planner = _STRATEGIES[strategy]
    except KeyError:
        raise AllocationError(
            f"unknown allocation strategy {strategy!r}; "
            f"choose from {sorted(_STRATEGIES)}"
        ) from None
    return planner(compute_lifetimes(graph, schedule, model=model))


def arena_peak_bytes(
    graph: Graph,
    schedule: Schedule,
    strategy: str = "first_fit",
    model: BufferModel | None = None,
) -> int:
    """Arena high-water mark of ``schedule`` — the "+ Memory Allocator"
    metric of Figs 10/12/15."""
    return plan_allocation(graph, schedule, strategy=strategy, model=model).arena_bytes
