"""Graph executor: feeding, dispatch, determinism, shape policing."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.runtime.executor import Executor, init_params, random_feeds


@pytest.fixture
def net():
    b = GraphBuilder("net")
    x = b.input("x", (3, 8, 8))
    c = b.conv2d(x, 4, kernel=3, name="c")
    r = b.relu(c, name="r")
    d = b.depthwise_conv2d(r, kernel=3, name="d")
    g1 = b.global_avg_pool(d, name="gap")
    f = b.flatten(g1, name="f")
    b.dense(f, 2, name="head")
    return b.build()


class TestExecutor:
    def test_runs_to_sink(self, net):
        out = Executor(net).run(random_feeds(net))
        assert set(out) == {"head"}
        assert out["head"].shape == (2,)

    def test_requested_outputs(self, net):
        out = Executor(net).run(random_feeds(net), outputs=["c", "r"])
        np.testing.assert_allclose(out["r"], np.maximum(out["c"], 0))

    def test_missing_feed(self, net):
        with pytest.raises(ExecutionError, match="missing feed"):
            Executor(net).run({})

    def test_bad_feed_shape(self, net):
        with pytest.raises(ExecutionError, match="shape"):
            Executor(net).run({"x": np.zeros((1, 2, 2))})

    def test_params_deterministic_by_seed(self, net):
        p1 = init_params(net, seed=3)
        p2 = init_params(net, seed=3)
        for name in p1:
            for key in p1[name]:
                np.testing.assert_array_equal(p1[name][key], p2[name][key])

    def test_params_differ_across_seeds(self, net):
        p1 = init_params(net, seed=1)
        p2 = init_params(net, seed=2)
        assert any(
            not np.array_equal(p1[n][k], p2[n][k])
            for n in p1
            for k in p1[n]
        )

    def test_feeds_deterministic(self, net):
        f1 = random_feeds(net, seed=5)
        f2 = random_feeds(net, seed=5)
        np.testing.assert_array_equal(f1["x"], f2["x"])

    def test_same_params_same_result(self, net):
        feeds = random_feeds(net)
        a = Executor(net, seed=0).run(feeds)["head"]
        b = Executor(net, seed=0).run(feeds)["head"]
        np.testing.assert_array_equal(a, b)

    def test_unknown_op_rejected(self):
        from repro.graph.graph import Graph
        from repro.graph.node import Node
        from repro.graph.tensor import TensorSpec

        g = Graph()
        g.add(Node(name="x", op="input", inputs=(), output=TensorSpec((1, 2, 2))))
        g.add(Node(name="y", op="made_up", inputs=("x",), output=TensorSpec((1, 2, 2))))
        with pytest.raises(ExecutionError, match="no kernel"):
            Executor(g).run({"x": np.zeros((1, 2, 2))})

    def test_subset_outputs_prune_execution(self, net):
        """Only ancestors of the requested outputs execute."""
        executed = []
        ex = Executor(net)
        import repro.runtime.executor as mod

        original = dict(mod.KERNELS)

        def spy(op):
            def run(inputs, attrs, params):
                executed.append(op)
                return original[op](inputs, attrs, params)

            return run

        for op in original:
            mod.KERNELS[op] = spy(op)
        try:
            ex.run(random_feeds(net), outputs=["r"])
        finally:
            mod.KERNELS.clear()
            mod.KERNELS.update(original)
        # only conv2d (c) and relu (r) run — nothing downstream of r
        assert sorted(executed) == ["conv2d", "relu"]

    def test_subset_outputs_skip_unneeded_feeds(self):
        """Inputs outside the requested subgraph need no feed."""
        b = GraphBuilder("two-inputs")
        x = b.input("x", (2, 4, 4))
        y = b.input("y", (2, 4, 4))
        b.relu(x, name="rx")
        b.relu(y, name="ry")
        g = b.build()
        feeds = {"x": np.zeros((2, 4, 4))}
        out = Executor(g).run(feeds, outputs=["rx"])  # no feed for y
        assert set(out) == {"rx"}

    def test_unknown_output_rejected(self, net):
        with pytest.raises(ExecutionError, match="never computed"):
            Executor(net).run(random_feeds(net), outputs=["nope"])

    def test_intermediate_freeing_doesnt_change_result(self, net):
        feeds = random_feeds(net)
        lean = Executor(net).run(feeds, outputs=["head"])
        fat = Executor(net).run(feeds, outputs=["head"], keep_all=True)
        np.testing.assert_array_equal(lean["head"], fat["head"])

    def test_concat_and_add_execute(self):
        b = GraphBuilder("ca")
        x = b.input("x", (2, 4, 4))
        l = b.relu(x, name="l")
        r = b.sigmoid(x, name="r")
        cat = b.concat([l, r], name="cat")
        b.add(cat, cat, name="dbl")
        g = b.build()
        out = Executor(g).run(random_feeds(g))["dbl"]
        assert out.shape == (4, 4, 4)

    def test_fused_sep_conv_runs(self):
        b = GraphBuilder("fs")
        x = b.input("x", (3, 6, 6))
        b.op("fused_sep_conv3x3", (x,), name="s", out_channels=5, kernel=3)
        g = b.build()
        out = Executor(g).run(random_feeds(g))["s"]
        assert out.shape == (5, 6, 6)

    def test_batch_norm_affine(self):
        b = GraphBuilder("bn")
        x = b.input("x", (2, 3, 3))
        b.batch_norm(x, name="bn")
        g = b.build()
        ex = Executor(g)
        feeds = random_feeds(g)
        out = ex.run(feeds)["bn"]
        scale = ex.params["bn"]["scale"][:, None, None]
        shift = ex.params["bn"]["shift"][:, None, None]
        np.testing.assert_allclose(out, feeds["x"] * scale + shift)
