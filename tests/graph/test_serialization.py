"""Graph JSON round-trips."""

import pytest

from repro.exceptions import GraphError
from repro.graph.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)

from tests.conftest import random_dag_graph


class TestRoundTrip:
    def test_simple(self, concat_conv_graph):
        doc = graph_to_dict(concat_conv_graph)
        assert graph_from_dict(doc) == concat_conv_graph

    def test_preserves_attrs_tuples(self, concat_conv_graph):
        doc = graph_to_dict(concat_conv_graph)
        back = graph_from_dict(doc)
        head = back.node("head")
        assert head.attrs["out_channels"] == 5
        assert head.attrs.get("stride") == 2

    def test_memory_semantics_survive(self):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(_views_graph())
        back = graph_from_dict(graph_to_dict(g))
        assert back == g
        assert back.node("cat").memory.view

    def test_file_round_trip(self, tmp_path, diamond_graph):
        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert load_graph(path) == diamond_graph

    def test_random_graphs_round_trip(self):
        for seed in range(10):
            g = random_dag_graph(12, seed, with_views=True)
            assert graph_from_dict(graph_to_dict(g)) == g

    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError, match="format"):
            graph_from_dict({"format": "bogus", "nodes": []})

    def test_doc_is_json_serialisable(self, hourglass_graph):
        import json

        json.dumps(graph_to_dict(hourglass_graph))


def _views_graph():
    from repro.graph.builder import GraphBuilder

    b = GraphBuilder("v")
    x = b.input("x", (2, 4, 4))
    l = b.conv2d(x, 2, name="l")
    r = b.conv2d(x, 3, name="r")
    cat = b.concat([l, r], name="cat")
    b.conv2d(cat, 2, name="head")
    return b.build()
