"""Serving throughput: pooled arena reuse vs fresh-allocation-per-request.

Drives identical synthetic workloads through the serving runtime
(registry -> arena pool -> request scheduler) twice:

* **pooled** — executors and their preallocated arenas are reused
  across requests (micro-batching on), the deployment the compiled
  plans exist for;
* **fresh** — a new executor + arena per request, the naive baseline
  the PR-2 hot path effectively imposed.

Hard assertions:

* pooled serving sustains **>= 2x** the baseline's requests/sec on the
  micro serving suite (small irregular stages where per-request churn,
  not kernel compute, dominates — the paper's edge regime);
* a concurrent run (4 clients, 4 workers, 2 models resident) returns
  outputs **bitwise-equal** to the reference executor for every single
  request, with a warm arena-reuse hit rate.

Marked ``slow``; set ``REPRO_BENCH_QUICK=1`` (as CI does) to shrink the
request counts.
"""

from __future__ import annotations

import os

import pytest

from repro.compiler import CompilationPipeline
from repro.models.suite import serving_suite
from repro.serving import ModelRegistry, run_load

pytestmark = pytest.mark.slow

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REQUESTS = 120 if QUICK else 320
CLIENTS = 4
WORKERS = 4


def build_registry() -> ModelRegistry:
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    for name, factory in serving_suite().items():
        registry.register(pipeline.compile(factory()), name=name)
    return registry


def run() -> dict:
    registry = build_registry()
    common = dict(
        requests=REQUESTS, clients=CLIENTS, workers=WORKERS, seed=0
    )
    # warm both paths once so neither pays first-touch costs in the
    # measured window
    for reuse in (True, False):
        run_load(registry, requests=CLIENTS, clients=CLIENTS,
                 workers=WORKERS, reuse=reuse)
    pooled = run_load(registry, max_batch=8, reuse=True, **common)
    fresh = run_load(registry, max_batch=1, reuse=False, **common)
    verified = run_load(
        registry,
        requests=max(24, REQUESTS // 4),
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=8,
        reuse=True,
        verify=True,
    )
    return {"pooled": pooled, "fresh": fresh, "verified": verified}


def render(result: dict) -> str:
    pooled, fresh, verified = result["pooled"], result["fresh"], result["verified"]
    speedup = pooled.rps / fresh.rps if fresh.rps else float("inf")
    lines = [
        "serving throughput: pooled arena reuse vs fresh per request "
        f"({'quick' if QUICK else 'full'} mode)",
        "",
        pooled.summary(),
        "",
        fresh.summary(),
        "",
        f"arena reuse speedup     : {speedup:9.2f}x requests/sec",
        "",
        "concurrent verification run:",
        verified.summary(),
    ]
    return "\n".join(lines)


def test_serving_smoke(benchmark, save_result):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("serving_smoke", render(result))

    pooled, fresh, verified = result["pooled"], result["fresh"], result["verified"]
    assert not pooled.errors and not fresh.errors and not verified.errors

    # the serving layer is an executor, not an approximation: every
    # concurrently served response is bitwise the reference executor's
    assert len(verified.models) >= 2
    assert verified.clients >= 4
    assert verified.verified is True

    # arena reuse actually happens, and it pays: >= 2x requests/sec
    # over the fresh-allocation-per-request baseline
    assert pooled.pool.hit_rate > 0.5
    assert fresh.pool.hits == 0
    assert pooled.rps >= 2.0 * fresh.rps, (
        f"pooled {pooled.rps:.1f} req/s vs fresh {fresh.rps:.1f} req/s "
        f"({pooled.rps / fresh.rps:.2f}x < 2x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
