"""Fig 12: SwiftNet Cell A footprint-over-time traces.

Panel (a): arena occupancy (with allocator); panel (b): sum of live
activations. Paper: rewriting trims 25.1 KB (a) and 12.5 KB (b) off the
DP schedule's peak.
"""

from repro.experiments import fig12_trace


def test_fig12_footprint_traces(benchmark, save_result):
    pairs = benchmark.pedantic(
        fig12_trace.run, args=("swiftnet-a",), rounds=1, iterations=1
    )
    save_result("fig12_trace", fig12_trace.render(pairs))

    dp, gr = pairs["dp"], pairs["dp+rewriting"]
    # allocator overhead exists but is bounded (Fig 12a vs 12b)
    assert dp.peak_alloc_kb >= dp.peak_noalloc_kb
    assert gr.peak_alloc_kb >= gr.peak_noalloc_kb
    # rewriting reduces the peak in both views (the paper's red arrows)
    assert gr.peak_noalloc_kb < dp.peak_noalloc_kb
    assert gr.peak_alloc_kb < dp.peak_alloc_kb
    # the curves decay after the peak: end-of-cell footprint is small
    assert dp.noalloc[-1] < dp.noalloc.max() / 2
