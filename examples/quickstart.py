"""Quickstart: build an irregularly wired cell and schedule it with SERENITY.

Run:  python examples/quickstart.py

Builds a small NAS-style cell with two concat blocks, compiles it with
the full SERENITY pipeline (identity graph rewriting -> divide-and-
conquer -> DP + adaptive soft budgeting) and compares the peak
activation footprint against the TFLite-like baseline order.
"""

from repro import GraphBuilder, Serenity, SerenityConfig
from repro.graph.transforms import mark_concat_views


def build_cell():
    b = GraphBuilder("quickstart-cell")
    x = b.input("image", (8, 32, 32))

    # an irregular multi-branch block: four separable branches of
    # different widths feeding a concat + conv merge
    stem = b.conv2d(x, 16, kernel=3, stride=2, name="stem")
    branches = []
    for i, width in enumerate((4, 6, 8, 10)):
        d = b.depthwise_conv2d(stem, kernel=3, name=f"branch{i}/dw")
        branches.append(b.conv2d(d, width, kernel=1, name=f"branch{i}/pw"))
    merged = b.concat(branches, name="merge_cat")
    head = b.conv2d(merged, 24, kernel=3, name="merge_conv")

    # a second block that a depthwise conv gathers (kernel-wise pattern)
    tails = [b.conv2d(head, 6, kernel=1, name=f"tail{i}") for i in range(3)]
    cat2 = b.concat(tails, name="tail_cat")
    b.depthwise_conv2d(cat2, kernel=3, name="tail_dw")

    # mark TFLite-style concat buffer sharing (the models in
    # repro.models do this automatically)
    return mark_concat_views(b.build())


def main() -> None:
    graph = build_cell()
    print(f"graph: {graph.name} with {len(graph)} nodes, "
          f"{graph.num_edges} edges")
    print(f"total activations: {graph.total_activation_bytes() / 1024:.1f}KB, "
          f"{graph.total_macs() / 1e6:.2f}M MACs\n")

    report = Serenity(SerenityConfig(max_states_per_step=20_000)).compile(graph)

    print(f"baseline (TFLite-like order) peak : "
          f"{report.baseline_arena_bytes / 1024:8.1f}KB")
    print(f"SERENITY peak (DP + rewriting)    : "
          f"{report.arena_bytes / 1024:8.1f}KB")
    print(f"reduction                         : "
          f"{report.reduction_with_alloc:8.2f}x")
    print(f"graph rewrites applied            : {report.rewrite_count}")
    print(f"scheduling time                   : "
          f"{report.scheduling_time_s * 1000:8.1f}ms")

    print("\nchosen schedule:")
    for i, name in enumerate(report.schedule):
        print(f"  {i:3d}  {name}")


if __name__ == "__main__":
    main()
