"""Elementwise operators: activations and binary arithmetic."""

from __future__ import annotations

from typing import Any

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops.base import OpSchema, register_op


def _unary_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    return inputs[0]


def _unary_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    return out.elements


for _name in ("relu", "relu6", "sigmoid", "tanh", "identity"):
    register_op(
        OpSchema(
            name=_name,
            infer_shape=_unary_shape,
            macs=_unary_macs if _name != "identity" else (lambda i, o, a: 0),
        )
    )


def _nary_same_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    first = inputs[0]
    for spec in inputs[1:]:
        if spec.shape != first.shape:
            raise ShapeError(
                f"elementwise operands differ: {first.shape} vs {spec.shape}"
            )
        if spec.dtype != first.dtype:
            raise ShapeError(
                f"elementwise dtypes differ: {first.dtype} vs {spec.dtype}"
            )
    return first


def _nary_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    return out.elements * (len(inputs) - 1)


register_op(
    OpSchema(
        name="add",
        infer_shape=_nary_same_shape,
        macs=_nary_macs,
        min_inputs=2,
        max_inputs=None,
    )
)
register_op(
    OpSchema(
        name="mul",
        infer_shape=_nary_same_shape,
        macs=_nary_macs,
        min_inputs=2,
        max_inputs=None,
    )
)
