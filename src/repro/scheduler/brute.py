"""Exhaustive optimal scheduler (test oracle).

Walks every topological order with branch-and-bound on the running peak.
Complexity is O(|V|!) so this is only for graphs of roughly a dozen
nodes; the test suite uses it to certify the DP scheduler's optimality
on thousands of random small DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import bits
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["brute_force_schedule", "BruteForceResult"]


@dataclass(frozen=True)
class BruteForceResult:
    schedule: Schedule
    peak_bytes: int
    orders_explored: int


def brute_force_schedule(
    graph: Graph, model: BufferModel | None = None, max_nodes: int = 16
) -> BruteForceResult:
    """Provably optimal peak-memory schedule by exhaustive search."""
    model = model or BufferModel.of(graph)
    idx = model.index
    n = idx.n
    if n > max_nodes:
        raise ValueError(
            f"brute force limited to {max_nodes} nodes, graph has {n} "
            "(raise max_nodes explicitly if you really mean it)"
        )

    best_peak = [None]  # type: list[int | None]
    best_order: list[tuple[int, ...]] = [()]
    explored = [0]
    prefix: list[int] = []

    def recurse(scheduled: int, mu: int, peak: int, frontier: int) -> None:
        if best_peak[0] is not None and peak >= best_peak[0]:
            # cannot strictly improve; prune
            if scheduled != idx.full_mask:
                return
        if scheduled == idx.full_mask:
            explored[0] += 1
            if best_peak[0] is None or peak < best_peak[0]:
                best_peak[0] = peak
                best_order[0] = tuple(prefix)
            return
        for u in bits(frontier):
            transient, mu2, new_mask = model.step(scheduled, mu, u)
            new_peak = max(peak, transient)
            if best_peak[0] is not None and new_peak >= best_peak[0]:
                continue
            new_frontier = frontier & ~(1 << u)
            for s in idx.succs[u]:
                if not (idx.preds_mask[s] & ~new_mask):
                    new_frontier |= 1 << s
            prefix.append(u)
            recurse(new_mask, mu2, new_peak, new_frontier)
            prefix.pop()

    recurse(0, 0, 0, idx.initial_frontier())
    if best_peak[0] is None:  # pragma: no cover - empty graph guarded earlier
        raise RuntimeError("no schedule found")
    order = tuple(idx.order[i] for i in best_order[0])
    return BruteForceResult(
        schedule=Schedule(order, graph.name),
        peak_bytes=int(best_peak[0]),
        orders_explored=explored[0],
    )
