"""Dynamic byte-bounds shadow checker for the plan executor.

The static verifier (:mod:`repro.analysis.verifier`) proves plan
invariants from the plan documents; this module is its runtime
cross-check. It walks a :class:`~repro.runtime.plan_executor.PlanExecutor`'s
*compiled* step table — the exact ``(kind, name, site, fn, args, ...)``
rows the hot loop executes, with every NumPy view already bound into
the persistent arena — and re-proves the byte-level safety properties
over the real addresses, without invoking a single kernel:

* every view lands inside its declared region (``SHADOW_OOB``): the
  resident arena row within the plan's promised bytes, spilled homes
  within the declared spill region;
* every byte a row reads was written by an earlier row in the same run
  (``SHADOW_UNWRITTEN_READ``) — this is what makes the spill plan's
  fetch-after-first-write / writeback-iff-dirty-and-needed dataflow
  observable: a fetch reads home bytes that only a preceding writeback
  can have produced;
* modelling the transfer engine exactly as the executor drives it —
  ``_STEP_ENQUEUE`` registers an in-flight (dst, src) copy,
  ``_STEP_SYNC`` completes every job up to its watermark, the FIFO
  serialises engine jobs against each other — no synchronous compute
  row may touch an in-flight destination, or write an in-flight
  source (``SHADOW_RACE``).

Because views are compared by their actual byte bounds (via NumPy's
``byte_bounds``), this catches disagreements between the plan documents
and the executor's binding of them — the class of bug the static
analyzer cannot see. Batched tables are checked per-sample: rows are
layout-identical, so every view is mapped to its row-0 byte range.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.diagnostics import ERROR, AnalysisReport, Diagnostic
from repro.analysis.verifier import _add, _covers, _ranges_overlap

try:  # numpy >= 2.0
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - numpy 1.x
    byte_bounds = np.byte_bounds  # type: ignore[attr-defined]

__all__ = ["shadow_check"]


class _Pending:
    """One in-flight transfer-engine job (enqueued, not yet synced)."""

    __slots__ = ("job", "name", "dst", "src")

    def __init__(
        self,
        job: int,
        name: str,
        dst: tuple[str, int, int],
        src: tuple[str, int, int],
    ) -> None:
        self.job = job
        self.name = name
        self.dst = dst
        self.src = src


def _walk_plan(px: Any, plan: Any, n: int, diags: list[Diagnostic]) -> None:
    from repro.runtime.plan_executor import (
        _STEP_COPY,
        _STEP_DIRECT,
        _STEP_ENQUEUE,
        _STEP_FETCH,
        _STEP_INPUT,
        _STEP_STAGE,
        _STEP_SYNC,
        _STEP_WRITEBACK,
        _UNBATCHED,
    )

    itemsize = px._itemsize
    n_eff = 1 if n == _UNBATCHED else n
    tag = f"shadow@batch{n_eff}"

    # declared byte budgets per region: the numbers the plan *promises*,
    # not the (possibly larger) allocation the executor defends with
    if px.spill is not None:
        pf = px._prefetch
        arena_decl = (
            pf.resident_bytes if pf is not None else px.spill.resident_bytes
        )
    else:
        arena_decl = px.plan.arena_bytes
    regions: list[tuple[str, int, int, int]] = []
    a_lo, a_hi = byte_bounds(px._arena)
    regions.append(("arena", a_lo, a_hi, arena_decl))
    if px.spill is not None and px._spill_arena.size:
        s_lo, s_hi = byte_bounds(px._spill_arena)
        regions.append(("spill", s_lo, s_hi, px.spill.spill_bytes))
    # tile streaming: each spilled buffer's scratch backing store is its
    # own region, declared at the buffer's per-sample byte size
    for b, scr in px._scratch.items():
        c_lo, c_hi = byte_bounds(scr)
        regions.append((f"scratch:{b}", c_lo, c_hi, px.model.buf_size[b]))

    # the arena's storage cells may be wider than the plan's accounting
    # itemsize (offsets are bound in element units); map real addresses
    # back to plan byte units so ranges compare against declared bytes
    cell = px._arena.dtype.itemsize

    def locate(view: np.ndarray) -> tuple[str, int, int, int] | None:
        lo, hi = byte_bounds(view)
        for rname, b_lo, b_hi, decl in regions:
            if b_lo <= lo and hi <= b_hi:
                rel = (lo - b_lo) // cell * itemsize
                span = (view.size // n_eff) * itemsize
                return (rname, rel, rel + span, decl)
        return None

    def resolve(
        view: np.ndarray, oi: int, name: str, role: str
    ) -> tuple[str, int, int] | None:
        where = locate(view)
        if where is None:
            diags.append(
                Diagnostic(
                    code="SHADOW_REGION",
                    severity=ERROR,
                    message=f"{name!r} {role} view is bound outside every "
                    "known arena region",
                    step=oi,
                    node=name,
                    plan=tag,
                )
            )
            return None
        rname, lo, hi, decl = where
        if lo < 0 or hi > decl:
            diags.append(
                Diagnostic(
                    code="SHADOW_OOB",
                    severity=ERROR,
                    message=f"{name!r} {role} occupies {rname} bytes "
                    f"[{lo}, {hi}) beyond the declared {decl}-byte region",
                    step=oi,
                    node=name,
                    byte_range=(lo, hi),
                    plan=tag,
                )
            )
        return (rname, lo, hi)

    written: dict[str, list[tuple[int, int]]] = {
        rname: [] for rname, *_rest in regions
    }
    pending: list[_Pending] = []
    job_no = 0

    def written_plus_pending(rname: str) -> list[tuple[int, int]]:
        tmp = list(written[rname])
        for p in pending:
            if p.dst[0] == rname:
                _add(tmp, p.dst[1], p.dst[2])
        return tmp

    for oi, row in enumerate(plan.steps):
        kind, name, site, _fn, args, attrs = row[0], row[1], row[2], row[3], row[4], row[5]
        if kind == _STEP_SYNC:
            watermark = int(attrs)
            done = [p for p in pending if p.job <= watermark]
            pending[:] = [p for p in pending if p.job > watermark]
            for p in done:
                _add(written[p.dst[0]], p.dst[1], p.dst[2])
            continue
        if kind == _STEP_ENQUEUE:
            job_no += 1
            # a whole-buffer enqueue is one (site <- args[0]) hop; a
            # tiled job carries its hop list in ``attrs``. Hops execute
            # in order inside one job, so a later hop's source may be a
            # previous hop's destination (slot handoff).
            hops = (
                ((site, args[0]),)
                if site is not None
                else tuple((dst, src) for dst, src, _linked in attrs)
            )
            for dst_view, src_view in hops:
                dst = resolve(dst_view, oi, name, "engine destination")
                src = resolve(src_view, oi, name, "engine source")
                if dst is None or src is None:
                    continue
                # FIFO jobs serialise against each other, so an enqueue
                # may legally overlap in-flight jobs; its source must
                # still be produced by something — an earlier
                # synchronous write, an earlier FIFO job's destination,
                # or this job's previous hop
                if not _covers(written_plus_pending(src[0]), src[1], src[2]):
                    diags.append(
                        Diagnostic(
                            code="SHADOW_UNWRITTEN_READ",
                            severity=ERROR,
                            message=f"{name!r} enqueues a copy of {src[0]} "
                            f"bytes [{src[1]}, {src[2]}) that no earlier "
                            "step or engine job wrote",
                            step=oi,
                            node=name,
                            byte_range=(src[1], src[2]),
                            plan=tag,
                        )
                    )
                pending.append(_Pending(job_no, name, dst, src))
            continue

        reads: list[tuple[str, int, int]] = []
        writes: list[tuple[str, int, int]] = []
        if kind == _STEP_INPUT:
            w = resolve(site, oi, name, "site")
            if w:
                writes.append(w)
        elif kind in (
            _STEP_DIRECT,
            _STEP_COPY,
            _STEP_FETCH,
            _STEP_WRITEBACK,
            _STEP_STAGE,
        ):
            w = resolve(site, oi, name, "site")
            if w:
                writes.append(w)
            for j, arg in enumerate(args):
                r = resolve(arg, oi, name, f"input {j}")
                if r:
                    reads.append(r)
        else:  # pragma: no cover - future step kinds must be modelled
            diags.append(
                Diagnostic(
                    code="SHADOW_REGION",
                    severity=ERROR,
                    message=f"unknown step kind {kind!r} at {name!r}",
                    step=oi,
                    node=name,
                    plan=tag,
                )
            )
            continue

        # race model: a synchronous row must not read or write bytes an
        # in-flight engine copy is producing, nor overwrite bytes one
        # is still consuming
        for p in pending:
            for rname, lo, hi in writes:
                for role, (prname, plo, phi) in (("destination", p.dst), ("source", p.src)):
                    if rname == prname and _ranges_overlap(lo, hi, plo, phi):
                        diags.append(
                            Diagnostic(
                                code="SHADOW_RACE",
                                severity=ERROR,
                                message=f"{name!r} writes {rname} bytes "
                                f"[{max(lo, plo)}, {min(hi, phi)}) while "
                                f"engine job {p.job} ({p.name!r}) still "
                                f"holds them as its {role}",
                                step=oi,
                                node=name,
                                byte_range=(max(lo, plo), min(hi, phi)),
                                plan=tag,
                            )
                        )
            for rname, lo, hi in reads:
                prname, plo, phi = p.dst
                if rname == prname and _ranges_overlap(lo, hi, plo, phi):
                    diags.append(
                        Diagnostic(
                            code="SHADOW_RACE",
                            severity=ERROR,
                            message=f"{name!r} reads {rname} bytes "
                            f"[{max(lo, plo)}, {min(hi, phi)}) that engine "
                            f"job {p.job} ({p.name!r}) is still writing",
                            step=oi,
                            node=name,
                            byte_range=(max(lo, plo), min(hi, phi)),
                            plan=tag,
                        )
                    )

        for rname, lo, hi in reads:
            if not _covers(written_plus_pending(rname), lo, hi):
                diags.append(
                    Diagnostic(
                        code="SHADOW_UNWRITTEN_READ",
                        severity=ERROR,
                        message=f"{name!r} reads {rname} bytes [{lo}, {hi}) "
                        "that no earlier step in this run wrote",
                        step=oi,
                        node=name,
                        byte_range=(lo, hi),
                        plan=tag,
                    )
                )
        for rname, lo, hi in writes:
            _add(written[rname], lo, hi)
    # leftover pending jobs are legal: the run loop drains the FIFO
    # (waits for job ``total_jobs``) before returning


def shadow_check(px: Any) -> AnalysisReport:
    """Byte-bounds replay of an executor's pinned step tables.

    Takes a live :class:`~repro.runtime.plan_executor.PlanExecutor` and
    checks every pinned compiled plan (the full schedule, single-sample
    and — when ``batch_size > 1`` — batched). Returns an
    :class:`AnalysisReport`; ``report.ok`` means every read is covered,
    every view in bounds and no engine transfer can race compute.
    """
    diags: list[Diagnostic] = []
    checks: list[str] = []
    for wanted, nb in sorted(
        px._pinned, key=lambda k: (k[0] is not None, k[1])
    ):
        plan = px._run_plans[(wanted, nb)]
        checks.append(f"shadow@batch{max(nb, 1)}")
        _walk_plan(px, plan, nb, diags)
    return AnalysisReport(
        target=px.graph.name,
        diagnostics=tuple(diags),
        checks=tuple(checks),
        level="full",
    )
