"""NumPy kernels against independent references (scipy / manual math)."""

import numpy as np
import pytest
from scipy import signal

from repro.runtime.kernels import (
    avg_pool2d,
    conv2d,
    depthwise_conv2d,
    max_pool2d,
    pad_same,
)

rng = np.random.default_rng(42)


def _scipy_conv2d_valid(x, w):
    """Reference conv via scipy.correlate2d, 'valid' padding."""
    m, c = w.shape[0], w.shape[1]
    oh = x.shape[1] - w.shape[2] + 1
    ow = x.shape[2] - w.shape[3] + 1
    out = np.zeros((m, oh, ow))
    for i in range(m):
        for j in range(c):
            out[i] += signal.correlate2d(x[j], w[i, j], mode="valid")
    return out


class TestConv2d:
    def test_matches_scipy_valid(self):
        x = rng.standard_normal((3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        ours = conv2d(x, w, padding="valid")
        np.testing.assert_allclose(ours, _scipy_conv2d_valid(x, w), atol=1e-12)

    def test_same_padding_shape(self):
        x = rng.standard_normal((3, 9, 9))
        w = rng.standard_normal((2, 3, 3, 3))
        assert conv2d(x, w, padding="same").shape == (2, 9, 9)

    def test_same_equals_manual_pad_valid(self):
        x = rng.standard_normal((2, 8, 8))
        w = rng.standard_normal((2, 2, 3, 3))
        same = conv2d(x, w, padding="same")
        manual = conv2d(np.pad(x, ((0, 0), (1, 1), (1, 1))), w, padding="valid")
        np.testing.assert_allclose(same, manual, atol=1e-12)

    def test_stride(self):
        x = rng.standard_normal((1, 8, 8))
        w = rng.standard_normal((1, 1, 1, 1))
        strided = conv2d(x, w, stride=2, padding="valid")
        np.testing.assert_allclose(strided[0], x[0, ::2, ::2] * w[0, 0, 0, 0])

    def test_bias(self):
        x = rng.standard_normal((2, 4, 4))
        w = rng.standard_normal((3, 2, 1, 1))
        bias = np.array([1.0, -2.0, 0.5])
        with_b = conv2d(x, w, bias)
        without = conv2d(x, w)
        np.testing.assert_allclose(
            with_b - without, np.broadcast_to(bias[:, None, None], with_b.shape)
        )

    def test_pointwise_is_matmul(self):
        x = rng.standard_normal((5, 4, 4))
        w = rng.standard_normal((3, 5, 1, 1))
        ours = conv2d(x, w)
        ref = np.einsum("mc,chw->mhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(ours, ref, atol=1e-12)


class TestDepthwise:
    def test_per_channel_independence(self):
        x = rng.standard_normal((3, 6, 6))
        w = rng.standard_normal((3, 1, 3, 3))
        full = depthwise_conv2d(x, w, padding="valid")
        for c in range(3):
            alone = depthwise_conv2d(x[c : c + 1], w[c : c + 1], padding="valid")
            np.testing.assert_allclose(full[c], alone[0], atol=1e-12)

    def test_equals_grouped_scipy(self):
        x = rng.standard_normal((2, 5, 5))
        w = rng.standard_normal((2, 1, 3, 3))
        ours = depthwise_conv2d(x, w, padding="valid")
        for c in range(2):
            ref = signal.correlate2d(x[c], w[c, 0], mode="valid")
            np.testing.assert_allclose(ours[c], ref, atol=1e-12)

    def test_multiplier_layout(self):
        x = rng.standard_normal((2, 5, 5))
        w = rng.standard_normal((2, 3, 3, 3))
        out = depthwise_conv2d(x, w, padding="valid")
        assert out.shape == (6, 3, 3)
        # channel c*mult+t convolves x[c] with w[c, t]
        ref = signal.correlate2d(x[1], w[1, 2], mode="valid")
        np.testing.assert_allclose(out[1 * 3 + 2], ref, atol=1e-12)


class TestPooling:
    def test_max_pool_manual(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = max_pool2d(x, {"kernel": 2})
        np.testing.assert_allclose(out[0], [[5, 7], [13, 15]])

    def test_avg_pool_manual(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = avg_pool2d(x, {"kernel": 2})
        np.testing.assert_allclose(out[0], [[2.5, 4.5], [10.5, 12.5]])

    def test_same_padding_max_pool(self):
        x = rng.standard_normal((1, 5, 5))
        out = max_pool2d(x, {"kernel": 3, "stride": 1, "padding": "same"})
        assert out.shape == (1, 5, 5)
        # padding uses -inf so borders are true maxima of real elements
        assert out.max() == pytest.approx(x.max())

    def test_pad_same_noop_for_valid(self):
        x = rng.standard_normal((1, 5, 5))
        assert pad_same(x, (3, 3), (1, 1), "valid") is x
