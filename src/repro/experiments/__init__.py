"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run()`` (data) and ``render()`` (paper-vs-measured
text table); ``main()`` prints. The benchmark suite under
``benchmarks/`` wraps these with pytest-benchmark timing.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    common,
    fig2_pareto,
    fig3_cdf,
    fig10_peak,
    fig11_offchip,
    fig12_trace,
    fig13_time,
    table1_networks,
    table2_ablation,
)

__all__ = [
    "common",
    "fig2_pareto",
    "fig3_cdf",
    "fig10_peak",
    "fig11_offchip",
    "fig12_trace",
    "fig13_time",
    "table1_networks",
    "table2_ablation",
    "ablations",
]
