"""Lifetimes and arena offset allocators."""

import pytest

from repro.allocator.arena import (
    AllocationPlan,
    first_fit_arena,
    greedy_by_size_plan,
    plan_allocation,
)
from repro.allocator.lifetimes import BufferLifetime, compute_lifetimes
from repro.exceptions import AllocationError
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.topological import kahn_schedule

from tests.conftest import random_dag_graph


def _lt(buffer_id, size, start, end):
    return BufferLifetime(
        buffer_id=buffer_id, size=size, start=start, end=end, producers=()
    )


class TestLifetimes:
    def test_chain_lifetimes(self, chain_graph):
        sched = kahn_schedule(chain_graph)
        lts = compute_lifetimes(chain_graph, sched)
        by_prod = {lt.producers[0]: lt for lt in lts}
        assert by_prod["x"].start == 0 and by_prod["x"].end == 2
        # the sink persists to the end of the schedule
        assert by_prod["c2"].end == len(sched)

    def test_view_buffer_single_lifetime(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        sched = kahn_schedule(g)
        lts = compute_lifetimes(g, sched)
        cat_lts = [lt for lt in lts if "cat" in lt.producers]
        assert len(cat_lts) == 1
        # buffer opens when the first branch writes into it
        assert cat_lts[0].start == min(
            sched.position(p) for p in cat_lts[0].producers
        )

    def test_overlap_predicate(self):
        assert _lt(0, 1, 0, 3).overlaps(_lt(1, 1, 2, 5))
        assert not _lt(0, 1, 0, 2).overlaps(_lt(1, 1, 2, 5))


class TestFirstFit:
    def test_reuses_freed_holes(self):
        # a dies before c starts: c reuses a's offset
        lts = [_lt(0, 100, 0, 2), _lt(1, 50, 1, 4), _lt(2, 100, 2, 5)]
        plan = first_fit_arena(lts)
        assert plan.offsets[2] == plan.offsets[0]
        assert plan.arena_bytes == 150

    def test_no_reuse_when_live(self):
        lts = [_lt(0, 100, 0, 3), _lt(1, 100, 1, 3)]
        plan = first_fit_arena(lts)
        assert plan.arena_bytes == 200

    def test_fills_gap_between_blocks(self):
        # blocks at [0,100) and [150,250); a 50-byte buffer fits between
        lts = [_lt(0, 100, 0, 9), _lt(1, 50, 0, 2), _lt(2, 100, 0, 9), _lt(3, 50, 3, 9)]
        plan = first_fit_arena(lts)
        assert plan.offsets[3] == plan.offsets[1]

    def test_validates(self):
        lts = [_lt(i, 64, 0, 4) for i in range(4)]
        first_fit_arena(lts).validate()


class TestGreedyBySize:
    def test_largest_first_at_zero(self):
        lts = [_lt(0, 10, 0, 4), _lt(1, 100, 0, 4)]
        plan = greedy_by_size_plan(lts)
        assert plan.offsets[1] == 0

    def test_non_overlapping_share_offsets(self):
        lts = [_lt(0, 64, 0, 2), _lt(1, 64, 2, 4)]
        plan = greedy_by_size_plan(lts)
        assert plan.offsets[0] == plan.offsets[1] == 0
        assert plan.arena_bytes == 64

    def test_never_larger_than_sum(self):
        lts = [_lt(i, 32 * (i + 1), 0, 10) for i in range(5)]
        plan = greedy_by_size_plan(lts)
        assert plan.arena_bytes == sum(lt.size for lt in lts)


class TestPlans:
    def test_validate_catches_overlap(self):
        bad = AllocationPlan(
            strategy="manual",
            offsets={0: 0, 1: 32},
            arena_bytes=128,
            lifetimes=(_lt(0, 64, 0, 4), _lt(1, 64, 0, 4)),
        )
        with pytest.raises(AllocationError, match="overlap"):
            bad.validate()

    def test_validate_catches_escape(self):
        bad = AllocationPlan(
            strategy="manual",
            offsets={0: 100},
            arena_bytes=128,
            lifetimes=(_lt(0, 64, 0, 4),),
        )
        with pytest.raises(AllocationError, match="escapes"):
            bad.validate()

    def test_unknown_strategy(self, chain_graph):
        with pytest.raises(AllocationError, match="unknown"):
            plan_allocation(chain_graph, kahn_schedule(chain_graph), "bogus")

    @pytest.mark.parametrize("strategy", ["first_fit", "greedy_by_size"])
    @pytest.mark.parametrize("seed", range(8))
    def test_arena_at_least_ideal_peak(self, strategy, seed):
        """No offset assignment can beat the sum-of-live lower bound."""
        g = random_dag_graph(12, seed, with_views=True)
        sched = dp_schedule(g).schedule
        peak = simulate_schedule(g, sched).peak_bytes
        plan = plan_allocation(g, sched, strategy)
        assert plan.arena_bytes >= peak

    def test_deterministic(self, concat_conv_graph):
        sched = kahn_schedule(concat_conv_graph)
        a = plan_allocation(concat_conv_graph, sched)
        b = plan_allocation(concat_conv_graph, sched)
        assert a.offsets == b.offsets and a.arena_bytes == b.arena_bytes
