"""Design-choice ablation: first-fit arena vs greedy-by-size planning
(DESIGN.md's allocator axis). Both must stay close to the sum-of-live
lower bound on the SERENITY schedules."""

from repro.experiments import ablations


def test_allocator_strategy_ablation(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.allocator_ablation, rounds=1, iterations=1
    )
    save_result("allocator_ablation", ablations.render_allocator(rows))

    for r in rows:
        assert r.first_fit_kb >= r.ideal_kb - 1e-9
        assert r.greedy_kb >= r.ideal_kb - 1e-9
        # fragmentation stays bounded on these workloads
        assert r.first_fit_kb <= 2.0 * r.ideal_kb
        assert r.greedy_kb <= 2.0 * r.ideal_kb
