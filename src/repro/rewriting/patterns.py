"""Pattern matching for identity graph rewriting (paper Section 3.3).

Following compiler practice (LLVM-style peephole matching), a rule scans
the graph for occurrences of a small subgraph pattern and reports
:class:`Match` objects; the rewriter then reconstructs the graph with
each match replaced. Matching and replacement are kept separate so rules
stay declarative and replacements compose in one reconstruction pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.graph.graph import Graph

__all__ = ["Match", "RewriteRule", "concat_sole_consumer_matches"]


@dataclass(frozen=True)
class Match:
    """One rule application site.

    ``anchor`` is the node whose position in the topological order hosts
    the replacement emission (the conv/depthwise following the concat);
    ``removed`` are the original nodes the replacement supersedes;
    ``rule`` identifies the matching rule.
    """

    rule: str
    anchor: str
    removed: tuple[str, ...]


class RewriteRule(Protocol):
    """Interface implemented by the rules in :mod:`repro.rewriting.rules`."""

    name: str

    def find(self, graph: Graph) -> list[Match]:
        """All non-overlapping applications in ``graph``."""
        ...

    def emit(self, graph: Graph, match: Match, namer, rename: dict[str, str]):
        """Yield replacement :class:`Node` objects for ``match``.

        ``namer(base)`` returns collision-free node names; ``rename``
        maps already-replaced producer names to their substitutes and
        must be updated with the mapping for the anchor's output.
        """
        ...


def concat_sole_consumer_matches(
    graph: Graph, consumer_op: str, rule: str
) -> list[Match]:
    """Shared matcher: ``concat -> <consumer_op>`` where the concat has at
    least two inputs and the consumer is its only reader.

    A concat with additional readers must stay materialised, so
    partitioning it would *add* memory pressure rather than remove it —
    both paper patterns require sole consumption.
    """
    matches: list[Match] = []
    claimed: set[str] = set()
    for node in graph:
        if node.op != consumer_op or len(node.inputs) != 1:
            continue
        src = graph.node(node.inputs[0])
        # View concats match too: even with buffer sharing the whole
        # concatenated tensor coexists with the consumer's output
        # (sum(x_i) + y, Fig 9 left); partitioning still reduces it to
        # max(x_i) + y. Gather concats emitted by the kernel-wise rule
        # are excluded (their inputs are already partial results).
        if src.op != "concat" or src.attrs.get("gather", False):
            continue
        if len(src.inputs) < 2 or len(set(src.inputs)) != len(src.inputs):
            continue
        if graph.succs(src.name) != (node.name,):
            continue
        if src.name in claimed or node.name in claimed:
            continue
        claimed.update((src.name, node.name))
        matches.append(
            Match(rule=rule, anchor=node.name, removed=(src.name, node.name))
        )
    return matches
