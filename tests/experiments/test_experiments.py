"""Experiment harnesses: structure and paper-vs-measured rendering.

These run on the *small* suite cells (SwiftNet B/C) to stay fast; the
full suite is exercised by the benchmarks.
"""

import pytest

from repro.experiments import (
    ablations,
    common,
    fig2_pareto,
    fig3_cdf,
    fig10_peak,
    fig11_offchip,
    fig12_trace,
    table1_networks,
    table2_ablation,
)

FAST = ["swiftnet-b", "swiftnet-c"]


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    common.clear_cache()
    yield
    common.clear_cache()


class TestCommon:
    def test_compiled_is_cached(self):
        spec = next(s for s in _cells() if s.key == "swiftnet-c")
        a = common.compiled(spec, rewrite=False)
        b = common.compiled(spec, rewrite=False)
        assert a is b

    def test_suite_runs_subset(self):
        runs = common.suite_runs(FAST)
        assert [r.spec.key for r in runs] == FAST

    def test_compile_model_freezes_memoised_report(self):
        spec = next(s for s in _cells() if s.key == "swiftnet-c")
        report = common.compiled(spec, rewrite=True)
        model = common.compile_model(spec, rewrite=True)
        assert model.schedule.order == report.schedule.order
        assert model.arena_bytes == report.arena_bytes
        assert model.graph == report.scheduled_graph


def _cells():
    from repro.models.suite import suite_cells

    return suite_cells()


class TestFig10:
    def test_rows_and_ratios(self):
        rows = fig10_peak.run(FAST)
        assert len(rows) == 2
        for row in rows:
            assert row.ratio_dp >= 1.0
            assert row.ratio_gr >= row.ratio_dp - 1e-9

    def test_render_includes_paper_refs(self):
        out = fig10_peak.render(fig10_peak.run(FAST))
        assert "GEOMEAN" in out and "paper" in out


class TestFig11:
    def test_na_and_elimination_semantics(self):
        cells = fig11_offchip.run(FAST)
        for cell in cells:
            for cap, (base, ours, ratio) in cell.by_capacity.items():
                if ratio is None:
                    assert base == 0 and ours == 0
                if cell.eliminated_at(cap):
                    assert ours == 0 and base > 0

    def test_render(self):
        out = fig11_offchip.render(fig11_offchip.run(FAST))
        assert "32KB" in out and "256KB" in out

    def test_alternate_policy_from_shared_registry(self):
        """The --policy CLI knob resolves through the same registry the
        runtime spill planner uses; lru must simulate cleanly."""
        cells = fig11_offchip.run(FAST, policy="lru")
        for cell in cells:
            for base, ours, _ratio in cell.by_capacity.values():
                assert base >= 0 and ours >= 0


class TestFig12:
    def test_traces_structural(self):
        pairs = fig12_trace.run("swiftnet-c")
        dp, gr = pairs["dp"], pairs["dp+rewriting"]
        assert dp.alloc.max() >= dp.noalloc.max()  # arena can't beat ideal
        assert gr.peak_noalloc_kb <= dp.peak_noalloc_kb + 1e-9

    def test_arena_occupancy_matches_plan_peak(self):
        from repro.models.suite import get_cell

        rep = common.compiled(get_cell("swiftnet-c"), rewrite=False)
        occ = fig12_trace.arena_occupancy(rep)
        assert int(occ.max()) == rep.arena_bytes

    def test_render(self):
        out = fig12_trace.render(fig12_trace.run("swiftnet-c"))
        assert "rewriting reduction" in out


class TestFig3:
    def test_fractions_in_unit_interval(self):
        res = fig3_cdf.run("swiftnet-c", samples=200)
        assert 0 <= res.fraction_within_budget <= 1
        # optimal schedules are *rare* (the paper's 0.04% point): a small
        # sample may legitimately contain none
        assert 0 <= res.fraction_optimal <= 1

    def test_optimal_no_sample_beats_dp(self):
        res = fig3_cdf.run("swiftnet-c", samples=200)
        assert res.cdf.optimal_bytes >= res.optimal_bytes

    def test_render(self):
        out = fig3_cdf.render(fig3_cdf.run("swiftnet-c", samples=100))
        assert "cumulative distribution" in out


class TestTables:
    def test_table1_rows(self):
        rows = table1_networks.run()
        names = {r.network for r in rows}
        assert names == {
            "DARTS",
            "SwiftNet",
            "RandWire-CIFAR10",
            "RandWire-CIFAR100",
        }
        for r in rows:
            assert r.measured.macs > 0 and r.measured.weights > 0
        out = table1_networks.render(rows)
        assert "57.4" in out  # paper's SwiftNet MACs quoted

    def test_table2_swiftnet(self):
        rows = table2_ablation.run(include_auto_cuts=True)
        partitions = {
            r.partitions for r in rows if r.algorithm == "1+2" and not r.rewriting
        }
        assert (21, 19, 22) in partitions
        out = table2_ablation.render(rows)
        assert "62={21,19,22}" in out

    def test_fig2(self):
        out = fig2_pareto.render(fig2_pareto.run())
        assert "Pareto frontier" in out


class TestAblations:
    def test_allocator_rows(self):
        rows = ablations.allocator_ablation(FAST)
        for r in rows:
            assert r.first_fit_kb >= r.ideal_kb - 1e-9
            assert r.greedy_kb >= r.ideal_kb - 1e-9
        assert "overhead" in ablations.render_allocator(rows)

    def test_policy_rows(self):
        rows = ablations.policy_ablation(64, FAST)
        for _, t in rows:
            assert t["belady"] <= t["lru"]
        assert "belady" in ablations.render_policy(rows, 64)

    def test_asb_trajectory(self, hourglass_graph):
        res = ablations.asb_trajectory(hourglass_graph, max_states_per_step=2)
        out = ablations.render_trajectory(res)
        assert "probe" in out and res.probes[-1].outcome == "solution"
