"""Table 2: scheduling-time ablation on the full SwiftNet.

Reproduces the paper's three-way ablation, with and without identity
graph rewriting:

* **1** — dynamic programming on the whole graph: intractable ("N/A" in
  the paper). We bound the attempt with the per-step state cap and
  report the overflow instead of hanging.
* **1+2** — DP + divide-and-conquer at the *cell boundaries* (the
  paper's partitions: 62={21,19,22}, 92={33,28,29}); no budget pruning.
* **1+2+3** — plus adaptive soft budgeting inside each segment.

An extra (extension) row uses *every* single-node cut our partitioner
discovers, which is finer than the paper's cell-boundary split and
faster still.

Note on the "N/A" rows: the paper's SwiftNet is wide enough that
whole-graph DP explodes; our synthesised SwiftNet (matched on node
counts and footprints, see DESIGN.md) is narrower, so the 62-node DP
happens to stay tractable here. To demonstrate the intractability
mechanism on a graph that genuinely exhibits it, ``run`` also ablates
RandWire CIFAR10 Cell A, whose whole-graph unpruned DP overflows any
reasonable state cap exactly like the paper's "N/A" entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.exceptions import StepTimeoutError
from repro.models.swiftnet import swiftnet_hpd
from repro.rewriting.rewriter import rewrite_graph
from repro.scheduler.divide import DivideAndConquerScheduler
from repro.scheduler.dp import DPScheduler

__all__ = ["Table2Row", "run", "render", "PAPER_TABLE2"]

#: paper values: (rewriting, algorithm) -> (partitions, seconds or None)
PAPER_TABLE2 = {
    (False, "1"): ("62={62}", None),
    (False, "1+2"): ("62={21,19,22}", 56.5),
    (False, "1+2+3"): ("62={21,19,22}", 37.9),
    (True, "1"): ("92={92}", None),
    (True, "1+2"): ("92={33,28,29}", 7.2 * 3600),
    (True, "1+2+3"): ("92={33,28,29}", 111.9),
}

#: cell-boundary cut nodes of the stacked SwiftNet (pre-rewriting names)
CELL_BOUNDARIES = ("A/tail_dw", "B/tail_pw")


@dataclass(frozen=True)
class Table2Row:
    rewriting: bool
    algorithm: str  # '1' | '1+2' | '1+2+3' | '1+2+3 (auto cuts)'
    nodes: int
    partitions: tuple[int, ...] | None
    time_s: float | None  # None = N/A (intractable under the cap)
    states_expanded: int
    paper_partitions: str | None = None
    paper_time_s: float | None = None
    graph_label: str = "SwiftNet"


def _boundaries_for(graph, rewriting: bool, renamed: dict[str, str]):
    if not rewriting:
        return CELL_BOUNDARIES
    return tuple(renamed.get(name, name) for name in CELL_BOUNDARIES)


def randwire_intractability(
    dp_state_cap: int = 25_000, asb_state_cap: int = 20_000
) -> list[Table2Row]:
    """The paper's 'N/A -> tractable' transition on a graph wide enough
    to show it: RandWire CIFAR10 Cell A (see module docstring)."""
    from repro.models.suite import get_cell

    graph = get_cell("randwire-c10-a").factory()
    rows: list[Table2Row] = []
    t0 = time.perf_counter()
    try:
        result = DPScheduler(max_states_per_step=dp_state_cap).schedule(graph)
        rows.append(
            Table2Row(
                False, "1", len(graph), (len(graph),),
                time.perf_counter() - t0, result.states_expanded,
                graph_label="RandWire-C10-A",
            )
        )
    except StepTimeoutError as exc:
        rows.append(
            Table2Row(
                False, "1", len(graph), (len(graph),), None, exc.states,
                graph_label="RandWire-C10-A",
            )
        )
    dnc = DivideAndConquerScheduler(
        adaptive_budget=True, max_states_per_step=asb_state_cap
    )
    t0 = time.perf_counter()
    result = dnc.schedule(graph)
    rows.append(
        Table2Row(
            False, "1+2+3", len(graph), result.partition_sizes,
            time.perf_counter() - t0, result.states_expanded,
            graph_label="RandWire-C10-A",
        )
    )
    return rows


def run(
    dp_state_cap: int = 200_000,
    asb_state_cap: int = 2_000,
    include_auto_cuts: bool = True,
) -> list[Table2Row]:
    rows: list[Table2Row] = []
    base = swiftnet_hpd()
    for rewriting in (False, True):
        if rewriting:
            res = rewrite_graph(base)
            graph, renamed = res.graph, res.renamed
        else:
            graph, renamed = base, {}
        boundaries = _boundaries_for(graph, rewriting, renamed)

        # --- 1: whole-graph DP under the state cap --------------------
        t0 = time.perf_counter()
        try:
            result = DPScheduler(max_states_per_step=dp_state_cap).schedule(graph)
            rows.append(
                Table2Row(
                    rewriting,
                    "1",
                    len(graph),
                    (len(graph),),
                    time.perf_counter() - t0,
                    result.states_expanded,
                    *PAPER_TABLE2[(rewriting, "1")],
                )
            )
        except StepTimeoutError as exc:
            rows.append(
                Table2Row(
                    rewriting,
                    "1",
                    len(graph),
                    (len(graph),),
                    None,
                    exc.states,
                    *PAPER_TABLE2[(rewriting, "1")],
                )
            )

        # --- 1+2 and 1+2+3 at the paper's cell boundaries -------------
        for algo, adaptive in (("1+2", False), ("1+2+3", True)):
            dnc = DivideAndConquerScheduler(
                adaptive_budget=adaptive,
                max_states_per_step=asb_state_cap if adaptive else None,
                cut_names=boundaries,
                min_segment_nodes=2,
            )
            t0 = time.perf_counter()
            result = dnc.schedule(graph)
            rows.append(
                Table2Row(
                    rewriting,
                    algo,
                    len(graph),
                    result.partition_sizes,
                    time.perf_counter() - t0,
                    result.states_expanded,
                    *PAPER_TABLE2[(rewriting, algo)],
                )
            )

        # --- extension: every discovered cut --------------------------
        if include_auto_cuts:
            dnc = DivideAndConquerScheduler(
                adaptive_budget=True, max_states_per_step=asb_state_cap
            )
            t0 = time.perf_counter()
            result = dnc.schedule(graph)
            rows.append(
                Table2Row(
                    rewriting,
                    "1+2+3 (auto cuts)",
                    len(graph),
                    result.partition_sizes,
                    time.perf_counter() - t0,
                    result.states_expanded,
                )
            )
    return rows


def _fmt_time(t: float | None) -> str:
    if t is None:
        return "N/A"
    return f"{t:.2f}s" if t < 120 else f"{t / 3600:.1f}h"


def render(rows: list[Table2Row]) -> str:
    body = []
    for r in rows:
        parts = (
            f"{r.nodes}={{{','.join(str(p) for p in r.partitions)}}}"
            if r.partitions
            else str(r.nodes)
        )
        body.append(
            (
                r.graph_label,
                "yes" if r.rewriting else "no",
                r.algorithm,
                parts,
                r.paper_partitions or "-",
                _fmt_time(r.time_s),
                _fmt_time(r.paper_time_s) if r.paper_time_s or r.algorithm == "1" else "-",
                f"{r.states_expanded:,}",
            )
        )
    return format_table(
        (
            "graph",
            "rewriting",
            "algorithm",
            "partitions",
            "paper partitions",
            "time",
            "paper time",
            "states",
        ),
        body,
        title=(
            "Table 2 - scheduling-time ablation "
            "(1=DP, 2=divide-and-conquer, 3=adaptive soft budgeting)"
        ),
    )


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run() + randwire_intractability())
    print(out)
    return out
