"""Fig 13: SERENITY's (static) scheduling time per cell.

Wall-clock seconds to compile each cell with and without graph
rewriting, plus the machine-independent explored-state counts. Absolute
times are not comparable to the paper's (different implementation and
host); the *shape* to check is: every cell schedules in seconds, and
rewriting increases SwiftNet's time (more nodes) while leaving DARTS and
RandWire unchanged (no rewrites fire).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.common import default_config
from repro.models.suite import PAPER_GEOMEANS, suite_cells
from repro.scheduler.serenity import Serenity

__all__ = ["Fig13Row", "run", "render"]


@dataclass(frozen=True)
class Fig13Row:
    key: str
    display: str
    time_dp_s: float
    time_gr_s: float
    states_dp: int
    states_gr: int
    paper_time_dp_s: float
    paper_time_gr_s: float


def run(keys: list[str] | None = None) -> list[Fig13Row]:
    rows = []
    for spec in suite_cells():
        if keys is not None and spec.key not in keys:
            continue
        timings = {}
        states = {}
        for label, rewrite in (("dp", False), ("gr", True)):
            graph = spec.factory()
            t0 = time.perf_counter()
            report = Serenity(default_config(rewrite)).compile(graph)
            timings[label] = time.perf_counter() - t0
            # search_stats() raises on a cache-rebuilt report: this
            # harness compiles directly, so zeros here would be a bug
            states[label] = report.search_stats().states_expanded
        rows.append(
            Fig13Row(
                key=spec.key,
                display=spec.display,
                time_dp_s=timings["dp"],
                time_gr_s=timings["gr"],
                states_dp=states["dp"],
                states_gr=states["gr"],
                paper_time_dp_s=spec.paper_time_dp_s,
                paper_time_gr_s=spec.paper_time_gr_s,
            )
        )
    return rows


def render(rows: list[Fig13Row]) -> str:
    body = [
        (
            r.display,
            f"{r.time_dp_s:.2f}s",
            f"{r.paper_time_dp_s:.1f}s",
            f"{r.time_gr_s:.2f}s",
            f"{r.paper_time_gr_s:.1f}s",
            f"{r.states_dp:,}",
            f"{r.states_gr:,}",
        )
        for r in rows
    ]
    mean_dp = sum(r.time_dp_s for r in rows) / len(rows)
    mean_gr = sum(r.time_gr_s for r in rows) / len(rows)
    body.append(
        (
            "MEAN",
            f"{mean_dp:.2f}s",
            f"{PAPER_GEOMEANS['fig13_mean_dp_s']:.1f}s",
            f"{mean_gr:.2f}s",
            f"{PAPER_GEOMEANS['fig13_mean_gr_s']:.1f}s",
            "",
            "",
        )
    )
    return format_table(
        (
            "cell",
            "DP time",
            "(paper)",
            "DP+GR time",
            "(paper)",
            "DP states",
            "GR states",
        ),
        body,
        title="Fig 13 - scheduling time (ours: Python on this host)",
    )


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
