"""Single-node cut detection and divide-and-conquer partitioning."""


from repro.graph.builder import GraphBuilder
from repro.graph.partition import find_cut_nodes, partition_at_cuts


class TestFindCutNodes:
    def test_chain_every_node_is_cut(self, chain_graph):
        cuts = [c.name for c in find_cut_nodes(chain_graph)]
        assert cuts == ["x", "c1", "r", "c2"]

    def test_diamond_only_endpoints(self, diamond_graph):
        cuts = [c.name for c in find_cut_nodes(diamond_graph)]
        assert cuts == ["x", "join"]

    def test_bypass_edge_disqualifies(self):
        # x -> a -> b, plus x -> b: 'a' sees a bypassing edge
        b = GraphBuilder("bypass")
        x = b.input("x", (2, 4, 4))
        a = b.conv2d(x, 2, name="a")
        b.op("add", (a, x), name="b")
        cuts = [c.name for c in find_cut_nodes(b.build())]
        assert "a" not in cuts
        assert cuts == ["x", "b"]

    def test_multi_source_graph_has_no_early_cuts(self):
        b = GraphBuilder("two-in")
        x = b.input("x", (2, 4, 4))
        y = b.input("y", (2, 4, 4))
        j = b.add(x, y, name="j")
        b.relu(j, name="out")
        cuts = [c.name for c in find_cut_nodes(b.build())]
        assert cuts == ["j", "out"]

    def test_cuts_sorted_topologically(self, hourglass_graph):
        cuts = find_cut_nodes(hourglass_graph)
        counts = [c.before_mask.bit_count() for c in cuts]
        assert counts == sorted(counts)


class TestPartition:
    def test_hourglass_three_cells(self, hourglass_graph):
        segs = partition_at_cuts(hourglass_graph, min_segment_nodes=4)
        owned = [len(s.owned) for s in segs]
        assert sum(owned) == len(hourglass_graph)
        assert len(segs) >= 2

    def test_entry_is_stubbed(self, hourglass_graph):
        segs = partition_at_cuts(hourglass_graph, min_segment_nodes=4)
        for seg in segs[1:]:
            assert seg.entry is not None
            assert seg.graph.node(seg.entry).op == "input"

    def test_first_segment_has_no_entry(self, hourglass_graph):
        segs = partition_at_cuts(hourglass_graph, min_segment_nodes=4)
        assert segs[0].entry is None

    def test_owned_nodes_disjoint_and_cover(self, hourglass_graph):
        segs = partition_at_cuts(hourglass_graph, min_segment_nodes=4)
        seen = []
        for seg in segs:
            seen.extend(seg.owned)
        assert sorted(seen) == sorted(hourglass_graph.node_names)

    def test_min_segment_merging(self, chain_graph):
        # chain of 4: with a large minimum, one single segment remains
        segs = partition_at_cuts(chain_graph, min_segment_nodes=10)
        assert len(segs) == 1
        assert segs[0].entry is None
        assert len(segs[0].owned) == len(chain_graph)

    def test_single_segment_for_diamond_interior(self, diamond_graph):
        segs = partition_at_cuts(diamond_graph, min_segment_nodes=2)
        assert sum(len(s.owned) for s in segs) == len(diamond_graph)

    def test_segments_are_schedulable_graphs(self, hourglass_graph):
        from repro.scheduler.topological import kahn_schedule

        for seg in partition_at_cuts(hourglass_graph, min_segment_nodes=4):
            sched = kahn_schedule(seg.graph)
            sched.validate(seg.graph)
