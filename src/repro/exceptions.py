"""Exception hierarchy for the SERENITY reproduction.

All library errors derive from :class:`ReproError` so downstream users can
catch a single base class. Scheduling-control exceptions (budget overrun,
step timeout) are *signals* used by the adaptive soft budgeting meta-search
and are therefore part of the public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Structural problem in a :class:`repro.graph.Graph`."""


class CycleError(GraphError):
    """The graph contains a directed cycle and admits no schedule."""


class ShapeError(GraphError):
    """Tensor shapes are inconsistent with an operator's contract."""


class UnknownOpError(GraphError):
    """An operator type is not present in the registry."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule."""


class InvalidScheduleError(SchedulingError):
    """A schedule violates precedence constraints or omits nodes."""


class NoSolutionError(SchedulingError):
    """Budget-pruned DP exhausted every path: the soft budget ``tau`` is
    below the optimal peak footprint (Algorithm 2's ``'no solution'``)."""

    def __init__(self, budget: float, message: str | None = None) -> None:
        self.budget = budget
        super().__init__(message or f"no schedule fits within budget {budget}")


class StepTimeoutError(SchedulingError):
    """A DP search step exceeded its time/state allowance (Algorithm 2's
    ``'timeout'``)."""

    def __init__(self, step: int, states: int, message: str | None = None) -> None:
        self.step = step
        self.states = states
        super().__init__(
            message
            or f"search step {step} exceeded its allowance ({states} states)"
        )


class BudgetSearchError(SchedulingError):
    """Adaptive soft budgeting failed to converge on a feasible budget."""


class AllocationError(ReproError):
    """The memory allocator produced an inconsistent plan."""


class SpillError(AllocationError):
    """No spill plan can fit the schedule into the on-chip capacity.

    Raised by :func:`repro.allocator.spill.plan_spill` when the
    capacity is below the schedule's irreducible single-step working
    set (every tensor a kernel touches must be staged on-chip while it
    runs), or when fragmentation defeats every spill configuration."""


class PlanVerificationError(ReproError):
    """The static plan verifier found error-severity findings.

    Raised by :meth:`repro.compiler.model.CompiledModel.load` (and any
    other caller that treats an analysis failure as fatal). Carries the
    full :class:`repro.analysis.diagnostics.AnalysisReport` as
    ``report`` so callers can inspect which invariant broke, at which
    step, over which bytes."""

    def __init__(self, report, message: str | None = None) -> None:
        self.report = report
        if message is None:
            errs = report.errors
            head = errs[0].format() if errs else "no findings"
            more = f" (+{len(errs) - 1} more)" if len(errs) > 1 else ""
            message = (
                f"plan verification failed for {report.target!r}: "
                f"{head}{more}"
            )
        super().__init__(message)


class RewriteError(ReproError):
    """A graph rewrite rule failed to apply or broke graph invariants."""


class ExecutionError(ReproError):
    """The NumPy reference executor failed to evaluate a graph."""


class ServingError(ReproError):
    """The concurrent serving runtime refused or failed a request."""


class AdmissionError(ServingError):
    """An arena could not be admitted under the serving memory budget."""


class DeadlineExceededError(ServingError):
    """A request's deadline passed before it could be served.

    Raised into the request's future when a queued request is shed
    before compute (single-process and shard-worker schedulers), or
    when the sharded front end sweeps an in-flight request whose
    deadline expired while its shard was down or wedged. Never raised
    for a request whose result was already delivered."""


class OverloadedError(ServingError):
    """A shard's in-flight window is full: the request was rejected
    *immediately* instead of blocking on ring backpressure.

    Only raised when a per-shard in-flight cap (``max_inflight``) is
    configured, or when ring-slot acquisition times out — both mean
    "shed load now", and clients should back off or retry elsewhere."""


class ShardFailedError(ServingError):
    """A shard process died, wedged, or drained with the request on it.

    This is the *retryable* serving failure: the request itself was
    fine, the process serving it was not. The sharded front end retries
    these automatically when ``retries > 0``; the message keeps the
    legacy "died"/"dead"/"draining" vocabulary so existing matchers
    hold."""
