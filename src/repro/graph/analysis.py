"""Bitset-based graph analysis used by the DP scheduler and partitioner.

:class:`GraphIndex` freezes a graph into integer-indexed arrays and
Python-int bitmasks. Bitmasks are the workhorse of the whole scheduler:
a *downset* (set of already-scheduled nodes) is one arbitrary-precision
integer, and subset tests / unions are single machine-word-parallel ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.graph.graph import Graph

__all__ = ["GraphIndex", "bits", "popcount"]


def bits(mask: int):
    """Iterate the set bit positions of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    return mask.bit_count()


@dataclass(frozen=True)
class GraphIndex:
    """Immutable integer-indexed view of a :class:`Graph`.

    Node *i* corresponds to ``order[i]``, where ``order`` is the graph's
    insertion (topological) order. All masks use bit *i* for node *i*.
    """

    graph: Graph
    order: tuple[str, ...]
    index: dict[str, int]
    preds: tuple[tuple[int, ...], ...]
    succs: tuple[tuple[int, ...], ...]
    preds_mask: tuple[int, ...]
    succs_mask: tuple[int, ...]
    out_bytes: tuple[int, ...]

    @classmethod
    def build(cls, graph: Graph) -> "GraphIndex":
        order = tuple(graph.node_names)
        index = {name: i for i, name in enumerate(order)}
        preds = tuple(
            tuple(sorted({index[p] for p in graph.preds(name)})) for name in order
        )
        succs = tuple(
            tuple(sorted({index[s] for s in graph.succs(name)})) for name in order
        )
        preds_mask = tuple(sum(1 << p for p in ps) for ps in preds)
        succs_mask = tuple(sum(1 << s for s in ss) for ss in succs)
        out_bytes = tuple(graph.node(name).output_bytes for name in order)
        return cls(
            graph=graph,
            order=order,
            index=index,
            preds=preds,
            succs=succs,
            preds_mask=preds_mask,
            succs_mask=succs_mask,
            out_bytes=out_bytes,
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.order)

    @property
    def full_mask(self) -> int:
        return (1 << self.n) - 1

    def names(self, mask_or_indices) -> list[str]:
        """Translate a bitmask or an index iterable back to node names."""
        if isinstance(mask_or_indices, int):
            return [self.order[i] for i in bits(mask_or_indices)]
        return [self.order[i] for i in mask_or_indices]

    def mask_of(self, names) -> int:
        return sum(1 << self.index[name] for name in names)

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    @cached_property
    def ancestors_mask(self) -> tuple[int, ...]:
        """``ancestors_mask[i]`` = strict ancestors of node *i* as a mask.

        Computed in one topological sweep: ancestors(i) = union over
        predecessors p of ({p} | ancestors(p)).
        """
        anc = [0] * self.n
        for i in range(self.n):  # order is topological
            m = 0
            for p in self.preds[i]:
                m |= (1 << p) | anc[p]
            anc[i] = m
        return tuple(anc)

    @cached_property
    def descendants_mask(self) -> tuple[int, ...]:
        """``descendants_mask[i]`` = strict descendants of node *i*."""
        desc = [0] * self.n
        for i in range(self.n - 1, -1, -1):
            m = 0
            for s in self.succs[i]:
                m |= (1 << s) | desc[s]
            desc[i] = m
        return tuple(desc)

    def comparable_mask(self, i: int) -> int:
        """Nodes ordered relative to *i* (ancestors ∪ {i} ∪ descendants)."""
        return self.ancestors_mask[i] | (1 << i) | self.descendants_mask[i]

    # ------------------------------------------------------------------
    # downset / frontier relations (the DP signature algebra)
    # ------------------------------------------------------------------
    def initial_frontier(self) -> int:
        """Zero-indegree set of the empty schedule."""
        return sum(1 << i for i in range(self.n) if not self.preds[i])

    def frontier_of(self, scheduled: int) -> int:
        """Zero-indegree set *z* for a downset: unscheduled nodes whose
        predecessors are all scheduled."""
        z = 0
        for i in range(self.n):
            b = 1 << i
            if not (scheduled & b) and (self.preds_mask[i] & ~scheduled) == 0:
                z |= b
        return z

    def downset_of_frontier(self, z: int) -> int:
        """Recover the unique downset whose frontier is ``z``.

        The unscheduled nodes are exactly ``z`` plus everything reachable
        from ``z`` — this uniqueness is what makes the zero-indegree set a
        sound memoisation signature (paper Section 3.1).
        """
        unscheduled = z
        for i in bits(z):
            unscheduled |= self.descendants_mask[i]
        return self.full_mask & ~unscheduled

    def is_downset(self, mask: int) -> bool:
        """Whether ``mask`` is predecessor-closed."""
        for i in bits(mask):
            if self.preds_mask[i] & ~mask:
                return False
        return True

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @cached_property
    def width(self) -> int:
        """Maximum frontier size over the insertion-order sweep — a cheap
        proxy for DP state-space width."""
        width = 0
        scheduled = 0
        for i in range(self.n):
            width = max(width, popcount(self.frontier_of(scheduled)))
            scheduled |= 1 << i
        return width
