"""Command-line interface: ``serenity`` (or ``python -m repro.cli``).

Subcommands
-----------
``compile``        run the full pipeline on one graph and write a
                   self-contained :class:`CompiledModel` artifact
``run``            load an artifact and execute it inside its planned
                   arena, reporting measured peak vs plan
``schedule``       compile one benchmark cell (or a saved graph) and print
                   the schedule report
``compile-batch``  portfolio-compile many graphs in parallel with the
                   persistent scheduling cache
``serve``          load artifacts — or compile cells/graphs on the spot
                   through the schedule cache — into the concurrent
                   serving runtime and drive a synthetic request load
``bench-serve``    serving throughput A/B: pooled arena reuse (with
                   stacked tensor batching) vs the
                   fresh-allocation-per-request baseline
``experiment``     regenerate one of the paper's tables/figures
``list``           list benchmark cells, strategies and experiments

The ``compile``/``run`` pair is the deployment story: compile once
(anywhere, with the schedule cache warm), ship the JSON artifact,
execute it in a fresh process under the exact schedule and arena layout
the compiler chose.
"""

from __future__ import annotations

import argparse
import sys

from repro.models.suite import BENCHMARK_SUITE, get_cell

_EXPERIMENTS = {
    "fig2": "repro.experiments.fig2_pareto",
    "fig3": "repro.experiments.fig3_cdf",
    "fig10": "repro.experiments.fig10_peak",
    "fig11": "repro.experiments.fig11_offchip",
    "fig12": "repro.experiments.fig12_trace",
    "fig13": "repro.experiments.fig13_time",
    "fig15": "repro.experiments.fig10_peak",  # same harness, raw KB columns
    "table1": "repro.experiments.table1_networks",
    "table2": "repro.experiments.table2_ablation",
}


def _tile_bytes_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"tile size must be >= 0 bytes (0 = whole-buffer), got {value}"
        )
    return value


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.scheduler.registry import iter_strategies

    print("benchmark cells:")
    for key, spec in BENCHMARK_SUITE.items():
        print(f"  {key:18s} {spec.display}")
    print("\nscheduling strategies (cheapest first):")
    for strategy in iter_strategies():
        print(f"  {strategy.name:18s} {strategy.summary}")
    print("\nexperiments:")
    for key in sorted(set(_EXPERIMENTS) - {"fig15"}):
        print(f"  {key}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.scheduler.serenity import Serenity, SerenityConfig

    graph = _load_source_graph(args)
    if graph is None:
        print("error: pass --cell <key> or --graph <file.json>", file=sys.stderr)
        return 2

    config = SerenityConfig(
        rewrite=not args.no_rewrite,
        divide=not args.no_divide,
        adaptive_budget=not args.no_budget,
        max_states_per_step=args.max_states,
    )
    report = Serenity(config).compile(graph)

    print(f"graph: {graph.name} ({len(graph)} nodes -> "
          f"{len(report.scheduled_graph)} after rewriting)")
    print(f"rewrites applied        : {report.rewrite_count}")
    print(f"baseline (Kahn) peak    : {report.baseline_peak_bytes / 1024:9.1f}KB")
    print(f"baseline arena peak     : {report.baseline_arena_bytes / 1024:9.1f}KB")
    print(f"SERENITY peak           : {report.peak_bytes / 1024:9.1f}KB")
    print(f"SERENITY arena peak     : {report.arena_bytes / 1024:9.1f}KB")
    print(f"reduction (arena)       : {report.reduction_with_alloc:9.2f}x")
    print(f"scheduling time         : {report.scheduling_time_s:9.2f}s")
    if report.divide:
        sizes = ",".join(str(s) for s in report.divide.partition_sizes)
        print(f"partitions              : {{{sizes}}}")
    if args.emit_plan:
        from repro.allocator.export import export_plan

        export_plan(report.scheduled_graph, report.schedule, args.emit_plan)
        print(f"deployment plan written to {args.emit_plan}")
    if args.show_schedule:
        print("\nschedule:")
        for i, name in enumerate(report.schedule):
            print(f"  {i:4d}  {name}")
    return 0


def _load_source_graph(args: argparse.Namespace):
    """Resolve --cell/--graph into a Graph (None + error message on misuse)."""
    from repro.graph.serialization import load_graph

    if args.cell:
        return get_cell(args.cell).factory()
    if args.graph:
        return load_graph(args.graph)
    return None


def _cmd_compile(args: argparse.Namespace) -> int:
    import json

    from repro.compiler import CompilationPipeline
    from repro.exceptions import ReproError
    from repro.scheduler.cache import ScheduleCache
    from repro.scheduler.device import KNOWN_DEVICES

    try:
        graph = _load_source_graph(args)
    except (ReproError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot load graph: {exc}", file=sys.stderr)
        return 2
    if graph is None:
        print("error: pass --cell <key> or --graph <file.json>", file=sys.stderr)
        return 2

    pipeline = CompilationPipeline(
        args.strategy,
        allocator=args.allocator,
        device=KNOWN_DEVICES[args.device] if args.device else None,
        cache=None if args.no_cache else ScheduleCache(args.cache_dir),
        verify=args.verify,
    )
    try:
        model = pipeline.compile(graph)
    except ReproError as exc:
        print(f"error: compilation failed: {exc}", file=sys.stderr)
        return 2
    if args.capacity:
        # embed a tiered-arena spill plan per requested on-chip capacity
        from dataclasses import replace

        from repro.exceptions import SpillError

        plans = []
        for kib in args.capacity:
            cap = int(kib * 1024)
            try:
                plans.append(
                    model.spill_plan(
                        cap,
                        policy=args.spill_policy,
                        tile_bytes=args.tile_bytes,
                    )
                )
            except SpillError as exc:
                print(f"error: cannot spill-plan {kib:g}KiB: {exc}",
                      file=sys.stderr)
                return 1
        model = replace(model, spill_plans=tuple(plans))
    path = model.save(args.output)

    meta = model.meta
    print(f"compiled {graph.name}: {meta['source_nodes']} nodes -> "
          f"{meta['nodes']} scheduled ({model.strategy}"
          f"{', cached schedule' if meta.get('cached') else ''})")
    print(f"ideal peak              : {meta['peak_bytes'] / 1024:9.1f}KB")
    print(f"arena peak              : {model.arena_bytes / 1024:9.1f}KB "
          f"({model.plan.strategy})")
    if model.device is not None:
        verdict = "fits" if model.fits_device else "OVER BUDGET"
        print(f"device {model.device.name} ({model.device.sram_kib:.0f}KB): "
              f"{verdict}")
    for sp in model.spill_plans:
        tiled = (
            f", {sp.tile_bytes}B tiles" if sp.tile_bytes is not None else ""
        )
        print(f"spill plan {sp.capacity_bytes / 1024:g}KiB "
              f"({sp.policy}{tiled}): "
              f"{sp.spilled_count} buffers spilled, resident "
              f"{sp.resident_bytes / 1024:.1f}KB, off-chip home "
              f"{sp.spill_bytes / 1024:.1f}KB")
    if args.verify:
        print("verified                : bitwise-equal to reference executor")
    print(f"artifact written to {path}")
    return 0 if model.fits_device in (None, True) else 1


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.compiler import CompiledModel
    from repro.exceptions import ReproError
    from repro.runtime import random_feeds

    try:
        model = CompiledModel.load(args.artifact)
    except (ReproError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot load artifact {args.artifact}: {exc}", file=sys.stderr)
        return 2
    feeds = random_feeds(model.graph, seed=args.seed)
    capacity = int(args.capacity * 1024) if args.capacity is not None else None
    if capacity is not None and args.spill == "never":
        if model.arena_bytes > capacity:
            print(
                f"error: {model.graph.name} needs a {model.arena_bytes}-byte "
                f"arena but --capacity is {capacity} bytes "
                f"({model.arena_bytes - capacity} bytes short); rerun with "
                "--spill auto to stage cold buffers off-chip",
                file=sys.stderr,
            )
            return 1
        capacity = None  # fits: plain resident execution
    try:
        executor = model.executor(
            seed=args.seed,
            capacity_bytes=capacity,
            spill_policy=args.spill_policy,
            tile_bytes=args.tile_bytes,
            prefetch=not args.no_prefetch,
            link=_offchip_link(args),
        )
        outputs = executor.run(feeds)
    except ReproError as exc:
        print(f"error: cannot execute artifact {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    stats = executor.last_stats
    assert stats is not None

    print(f"executed {model.graph.name}: {stats.steps} steps in schedule "
          f"order ({model.strategy} schedule, {model.plan.strategy} arena)")
    print(f"planned arena           : {stats.arena_bytes / 1024:9.1f}KB")
    print(f"measured high-water mark: {stats.measured_peak_bytes / 1024:9.1f}KB "
          f"({100.0 * stats.utilization:.1f}% of plan)")
    if capacity is not None:
        traffic = executor.traffic_report()
        print(f"on-chip capacity        : {capacity / 1024:9.1f}KB "
              f"({stats.spilled_buffers} buffers spilled, "
              f"{traffic.policy} policy)")
        print(f"off-chip traffic        : {traffic.total_kib:9.1f}KB "
              f"({traffic.fetches} fetches, {traffic.writebacks} writebacks)")
        overlap = (
            f"prefetch lead {stats.prefetch_lead} steps"
            if stats.prefetch_lead
            else "inline transfers"
        )
        print(f"transfer stall / hidden : {traffic.stall_s * 1e3:9.2f} / "
              f"{traffic.hidden_s * 1e3:.2f} ms "
              f"({100.0 * traffic.hidden_fraction:.0f}% hidden, {overlap})")
    for name, value in outputs.items():
        flat = value.ravel()
        head = ", ".join(f"{v:.4g}" for v in flat[:4])
        more = ", ..." if flat.size > 4 else ""
        print(f"output {name:<17s}: shape {value.shape} [{head}{more}]")
    if args.verify:
        # compare the outputs just computed against one reference run
        # (same params/feeds) instead of re-executing everything
        from repro.runtime import Executor
        from repro.runtime.verify import compare_outputs

        ref = Executor(model.graph, params=executor.params).run(
            feeds, outputs=list(outputs)
        )
        report = compare_outputs(ref, outputs)
        verdict = "bitwise-equal" if report.equivalent else "DIVERGED"
        print(f"reference executor      : {verdict} "
              f"(max abs error {report.max_abs_error:g})")
        if not report.equivalent:
            return 1
    return 0


def _cmd_verify_plan(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.verifier import analyze_artifact

    batch_sizes = tuple(args.batch) if args.batch else (1, 8)
    reports = []
    unreadable = 0
    for path in args.artifacts:
        try:
            doc = json.loads(open(path).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read artifact {path}: {exc}", file=sys.stderr)
            unreadable += 1
            continue
        report = analyze_artifact(
            doc, level=args.level, batch_sizes=batch_sizes, target=path
        )
        reports.append(report)
        if args.json:
            print(json.dumps(report.to_doc()))
        else:
            print(report.summary())
    if unreadable:
        return 2
    failed = sum(1 for r in reports if not r.ok)
    if not args.json:
        print(
            f"verified {len(reports)} artifact(s): "
            f"{len(reports) - failed} passed, {failed} failed"
        )
    return 1 if failed else 0


def _cmd_compile_batch(args: argparse.Namespace) -> int:
    from repro.exceptions import SchedulingError
    from repro.graph.serialization import load_graph
    from repro.scheduler.cache import ScheduleCache
    from repro.scheduler.device import KNOWN_DEVICES
    from repro.scheduler.portfolio import PortfolioCompiler
    from repro.scheduler.registry import default_portfolio

    graphs = []
    if args.cells:
        for key in args.cells:
            graphs.append(get_cell(key).factory())
    if args.graphs:
        for path in args.graphs:
            graphs.append(load_graph(path))
    if not graphs:  # default: the whole benchmark suite
        graphs = [spec.factory() for spec in BENCHMARK_SUITE.values()]

    if args.clear_cache:  # honoured even under --no-cache
        removed = ScheduleCache(args.cache_dir).clear()
        print(f"cleared {removed} cache entries")
    cache = None if args.no_cache else ScheduleCache(args.cache_dir)

    strategies = default_portfolio()
    if args.strategies:
        strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
        if not strategies:
            print("error: --strategies names no strategies", file=sys.stderr)
            return 2
    device = KNOWN_DEVICES[args.device] if args.device else None

    try:
        compiler = PortfolioCompiler(
            strategies,
            workers=args.workers,
            cache=cache,
            device=device,
        )
    except SchedulingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compiler.compile_batch(graphs)
    print(report.summary())
    if cache is not None:
        print(f"  cache: {cache.root}")
    return 0


def _serving_budget(args: argparse.Namespace):
    from repro.scheduler.device import resolve_budget

    return resolve_budget(args.budget_device, args.budget_kb)


def _offchip_link(args: argparse.Namespace):
    """--offchip-mbps resolved to an OffchipLink (None: instant copies)."""
    if getattr(args, "offchip_mbps", None) is None:
        return None
    from repro.memsim import OffchipLink

    return OffchipLink(bandwidth_bytes_per_s=args.offchip_mbps * 1e6)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.serving import ModelRegistry, run_load

    if not args.artifacts and not args.cells and not args.graphs:
        print(
            "error: nothing to serve; pass artifact file(s), --cell or --graph",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards > 1 and args.no_reuse:
        print(
            "error: --shards requires arena reuse; drop --no-reuse "
            "(sharding exists to keep per-shard arenas warm)",
            file=sys.stderr,
        )
        return 2

    registry = ModelRegistry()
    try:
        for path in args.artifacts:
            name = registry.load(path)
            model = registry.get(name)
            print(f"loaded {name}: {len(model.graph)} nodes, "
                  f"arena {model.arena_bytes / 1024:.1f}KB ({model.strategy})")
        # "point it at a graph" deployments: compile sources on the spot,
        # served from the persistent schedule cache when warm
        if args.cells or args.graphs:
            from repro.compiler import CompilationPipeline
            from repro.graph.serialization import load_graph
            from repro.scheduler.cache import ScheduleCache

            pipeline = CompilationPipeline(
                args.strategy,
                cache=None if args.no_cache else ScheduleCache(args.cache_dir),
            )
            sources = [get_cell(key).factory() for key in args.cells or []]
            sources += [load_graph(path) for path in args.graphs or []]
            for graph in sources:
                name = registry.register(pipeline.compile(graph))
                model = registry.get(name)
                cached = model.meta.get("cached")
                print(f"compiled {name}: {len(model.graph)} nodes, "
                      f"arena {model.arena_bytes / 1024:.1f}KB "
                      f"({model.strategy}"
                      f"{', cached schedule' if cached else ''})")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError, KeyError) as exc:
        # e.g. a malformed --graph file raising a bare KeyError('op')
        print(
            f"error: cannot load serving sources: {exc!r}", file=sys.stderr
        )
        return 2

    try:
        report = run_load(
            registry,
            requests=args.requests,
            clients=args.clients,
            workers=args.workers,
            max_batch=args.max_batch,
            budget=_serving_budget(args),
            seed=args.seed,
            reuse=not args.no_reuse,
            scrub=args.scrub,
            verify=args.verify,
            preload=args.preload,
            spill=args.spill,
            spill_policy=args.spill_policy,
            tile_bytes=args.tile_bytes,
            prefetch=not args.no_prefetch,
            link=_offchip_link(args),
            shards=args.shards,
            deadline_s=(
                args.deadline_ms / 1e3 if args.deadline_ms else None
            ),
            retries=args.retries,
        )
    except ReproError as exc:
        print(f"error: serving run failed: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    return 0 if not report.errors and report.verified in (None, True) else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.compiler import CompilationPipeline
    from repro.exceptions import ReproError
    from repro.models.suite import serving_suite
    from repro.serving import ModelRegistry, run_load

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.chaos and args.shards < 2:
        print(
            "error: --chaos needs --shards >= 2 (survivors must keep "
            "serving while a shard is down)",
            file=sys.stderr,
        )
        return 2

    registry = ModelRegistry()
    try:
        pipeline = CompilationPipeline(args.strategy)
        if args.cells:
            for key in args.cells:
                registry.register(pipeline.compile(get_cell(key).factory()))
        else:
            for name, factory in serving_suite().items():
                registry.register(pipeline.compile(factory()), name=name)
    except ReproError as exc:
        print(f"error: compilation failed: {exc}", file=sys.stderr)
        return 2
    print(f"compiled {len(registry)} models: {', '.join(registry.names())}")

    if args.chaos:
        return _run_chaos_bench(args, registry)

    budget = _serving_budget(args)
    link = _offchip_link(args)
    common = dict(
        requests=args.requests,
        clients=args.clients,
        workers=args.workers,
        budget=budget,
        seed=args.seed,
        spill=args.spill,
        spill_policy=args.spill_policy,
        tile_bytes=args.tile_bytes,
        prefetch=not args.no_prefetch,
        link=link,
    )
    try:
        # warm both paths once so neither pays first-touch costs
        run_load(registry, requests=args.clients, clients=args.clients,
                 workers=args.workers, budget=budget, reuse=True,
                 spill=args.spill, spill_policy=args.spill_policy,
                 tile_bytes=args.tile_bytes,
                 prefetch=not args.no_prefetch, link=link)
        run_load(registry, requests=args.clients, clients=args.clients,
                 workers=args.workers, budget=budget, reuse=False,
                 spill=args.spill, spill_policy=args.spill_policy,
                 tile_bytes=args.tile_bytes,
                 prefetch=not args.no_prefetch, link=link)
        pooled = run_load(
            registry, max_batch=args.max_batch, reuse=True,
            preload=args.preload, shards=args.shards, **common
        )
        # the fresh-per-request baseline is inherently single-process
        fresh = run_load(registry, max_batch=1, reuse=False, **common)
    except ReproError as exc:
        print(f"error: serving run failed: {exc}", file=sys.stderr)
        return 2
    print()
    print(pooled.summary())
    print()
    print(fresh.summary())
    print()
    speedup = pooled.rps / fresh.rps if fresh.rps else float("inf")
    print(f"arena reuse speedup     : {speedup:9.2f}x requests/sec "
          f"(stacked batch {pooled.batch_size}, "
          f"mean {pooled.mean_batch:.2f}"
          + (f", {pooled.shards} shards" if pooled.shards > 1 else "")
          + ")")
    return 0


def _run_chaos_bench(args: argparse.Namespace, registry) -> int:
    """``bench-serve --chaos``: kill every shard once mid-load under a
    seeded FaultPlan and *assert* self-healing — full shard count
    restored, bitwise-correct responses through the kills, counters
    consistent with the injected schedule. Exit 1 when recovery fails,
    so CI can gate on it."""
    import json
    import os
    from pathlib import Path

    from repro.exceptions import ReproError
    from repro.serving import FaultPlan, run_load

    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    requests = min(args.requests, 48) if quick else args.requests
    deadline_s = (
        args.deadline_ms / 1e3 if args.deadline_ms else 30.0
    )
    retries = args.retries if args.retries else 6
    plan = FaultPlan.kill_each_shard_once(args.shards, seed=args.seed)
    print(
        f"chaos plan (seed {args.seed}): kill each of {args.shards} "
        "shards once, at arrivals "
        f"{[f.at_request for f in plan.faults]}"
    )
    try:
        report = run_load(
            registry,
            requests=requests,
            clients=args.clients,
            workers=args.workers,
            max_batch=args.max_batch,
            budget=_serving_budget(args),
            seed=args.seed,
            verify=True,
            preload=args.preload,
            spill=args.spill,
            spill_policy=args.spill_policy,
            tile_bytes=args.tile_bytes,
            prefetch=not args.no_prefetch,
            link=_offchip_link(args),
            shards=args.shards,
            deadline_s=deadline_s,
            retries=retries,
            faults=plan,
        )
    except ReproError as exc:
        print(f"error: chaos run failed: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    print()

    alive = sum(1 for s in report.shard_stats if s.alive)
    checks = [
        (
            f"shard count restored ({alive}/{args.shards} alive)",
            alive == args.shards,
        ),
        (
            f"every kill recovered ({report.restarts} restarts "
            f"for {plan.kills()} kills)",
            report.restarts == plan.kills(),
        ),
        (
            f">= 99% requests completed ({requests - report.errors}"
            f"/{requests})",
            report.errors <= requests * 0.01,
        ),
        (
            "responses bitwise-correct (retries included)",
            report.verified is True,
        ),
        ("no circuit breaker trips", report.breaker_trips == 0),
    ]
    for label, ok in checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
    recovered = all(ok for _, ok in checks)

    if args.json_out:
        path = Path(args.json_out)
        doc: dict = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text())
            except ValueError:
                doc = {}
        doc["chaos"] = {
            "quick": quick,
            "shards": args.shards,
            "requests": requests,
            "seed": args.seed,
            "plan_kills": plan.kills(),
            "kill_arrivals": [f.at_request for f in plan.faults],
            "deadline_s": deadline_s,
            "retries_budget": retries,
            "restarts": report.restarts,
            "retries": report.retries,
            "expired": report.expired,
            "shed": report.shed,
            "breaker_trips": report.breaker_trips,
            "errors": report.errors,
            "alive_shards": alive,
            "verified_bitwise": report.verified,
            "recovered": recovered,
            "req_per_s": report.rps,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"\nchaos counters merged into {path}")

    print(
        "\nchaos verdict           : "
        + ("self-healed, service stayed correct" if recovered
           else "RECOVERY FAILED")
    )
    return 0 if recovered else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(_EXPERIMENTS[args.name])
    if args.policy is not None:
        if args.name != "fig11":
            print(
                f"error: --policy only applies to fig11, not {args.name}",
                file=sys.stderr,
            )
            return 2
        module.main(policy=args.policy)
    else:
        module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="serenity",
        description="SERENITY: memory-aware scheduling of irregularly wired "
        "neural networks (MLSys 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list cells and experiments")
    p_list.set_defaults(func=_cmd_list)

    p_sched = sub.add_parser("schedule", help="compile a graph")
    p_sched.add_argument("--cell", choices=sorted(BENCHMARK_SUITE), default=None)
    p_sched.add_argument("--graph", help="path to a saved graph JSON")
    p_sched.add_argument("--no-rewrite", action="store_true")
    p_sched.add_argument("--no-divide", action="store_true")
    p_sched.add_argument("--no-budget", action="store_true")
    p_sched.add_argument("--max-states", type=int, default=50_000)
    p_sched.add_argument("--show-schedule", action="store_true")
    p_sched.add_argument(
        "--emit-plan",
        metavar="FILE",
        help="write the schedule + arena offsets as a JSON deployment plan",
    )
    p_sched.set_defaults(func=_cmd_schedule)

    from repro.memsim.policies import POLICY_NAMES
    from repro.scheduler.registry import strategy_names

    p_comp = sub.add_parser(
        "compile",
        help="compile a graph into a deployable artifact",
        description="Run the unified pipeline — strategy scheduling "
        "(cache-served when warm), arena allocation, validation — and "
        "write a self-contained CompiledModel JSON artifact that "
        "`serenity run` executes in any process.",
    )
    p_comp.add_argument("--cell", choices=sorted(BENCHMARK_SUITE), default=None)
    p_comp.add_argument("--graph", help="path to a saved graph JSON")
    p_comp.add_argument(
        "-o", "--output", required=True, metavar="FILE",
        help="artifact path to write",
    )
    p_comp.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="serenity",
        help="scheduling strategy (default: serenity)",
    )
    p_comp.add_argument(
        "--allocator",
        choices=("first_fit", "greedy_by_size"),
        default="first_fit",
        help="arena offset allocator (default: first_fit)",
    )
    from repro.scheduler.device import KNOWN_DEVICES as _DEVICES

    p_comp.add_argument(
        "--device",
        choices=sorted(_DEVICES),
        help="record a target device; exit 1 if the plan exceeds its budget",
    )
    p_comp.add_argument(
        "--cache-dir",
        help="schedule cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro/schedules)",
    )
    p_comp.add_argument(
        "--no-cache", action="store_true", help="compile without the cache"
    )
    p_comp.add_argument(
        "--verify",
        action="store_true",
        help="execute the plan and require bitwise parity with the "
        "reference executor before writing the artifact",
    )
    p_comp.add_argument(
        "--capacity",
        type=float,
        action="append",
        metavar="KIB",
        help="embed a tiered-arena spill plan for this on-chip capacity "
        "(repeatable; exit 1 below the schedule's staging floor)",
    )
    p_comp.add_argument(
        "--spill-policy",
        choices=POLICY_NAMES,
        default="belady",
        help="replacement policy ranking spill victims (default: belady)",
    )
    p_comp.add_argument(
        "--tile-bytes", type=_tile_bytes_arg, metavar="BYTES",
        help="stage spilled buffers through fixed-size tile slots instead "
        "of whole-buffer windows (applies to every --capacity plan; drops "
        "the admissible capacity floor to the largest tiled working set)",
    )
    p_comp.set_defaults(func=_cmd_compile)

    p_run = sub.add_parser(
        "run",
        help="execute a compiled artifact inside its planned arena",
        description="Load a CompiledModel artifact, execute its kernels "
        "in schedule order inside one preallocated arena at the planned "
        "byte offsets, and report the measured high-water mark against "
        "the plan's arena_bytes.",
    )
    p_run.add_argument("artifact", help="path to a CompiledModel JSON")
    p_run.add_argument(
        "--seed", type=int, default=0,
        help="seed for the deterministic random weights/inputs (default 0)",
    )
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="also run the reference executor and compare outputs bitwise",
    )
    p_run.add_argument(
        "--capacity",
        type=float,
        metavar="KIB",
        help="execute under this on-chip capacity: an over-capacity arena "
        "degrades to a two-region tiered arena with measured off-chip "
        "traffic (bitwise-identical outputs)",
    )
    p_run.add_argument(
        "--spill",
        choices=("never", "auto", "always"),
        default="auto",
        help="what to do when the arena exceeds --capacity: refuse "
        "(never, exit 1), spill cold buffers off-chip (auto, default), "
        "or force spill planning even when it fits (always)",
    )
    p_run.add_argument(
        "--spill-policy",
        choices=POLICY_NAMES,
        default="belady",
        help="replacement policy ranking spill victims (default: belady)",
    )
    p_run.add_argument(
        "--tile-bytes", type=_tile_bytes_arg, metavar="BYTES",
        help="stream spilled buffers through fixed-size tile slots "
        "instead of whole-buffer staging windows (lower capacity floor, "
        "same bitwise outputs)",
    )
    p_run.add_argument(
        "--no-prefetch", action="store_true",
        help="run spill transfers inline instead of overlapping them on "
        "the background prefetch engine",
    )
    p_run.add_argument(
        "--offchip-mbps", type=float, metavar="MBPS",
        help="model the off-chip link at this bandwidth (MB/s) so every "
        "fetch/writeback costs wall-clock; default: instant host copies",
    )
    p_run.set_defaults(func=_cmd_run)

    p_verify = sub.add_parser(
        "verify-plan",
        help="statically verify compiled artifacts without executing them",
        description="Prove each artifact's schedule legality, byte-exact "
        "arena soundness, spill-window coverage and prefetch race freedom "
        "from the plan documents alone — no kernel runs. Every violated "
        "invariant prints as a structured diagnostic; exit 1 if any "
        "artifact has error-severity findings, 2 if one is unreadable.",
    )
    p_verify.add_argument(
        "artifacts", nargs="+", help="CompiledModel JSON artifact path(s)"
    )
    p_verify.add_argument(
        "--level",
        choices=("basic", "full"),
        default="full",
        help="basic: schedule + layout invariants; full (default) adds "
        "the byte-exact read-coverage replay",
    )
    p_verify.add_argument(
        "--batch",
        type=int,
        action="append",
        metavar="N",
        help="batch width(s) the plan must price correctly (repeatable; "
        "default: 1 and 8 — any width > 1 proves batched arena rows "
        "cannot alias)",
    )
    p_verify.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON report per artifact instead of text",
    )
    p_verify.set_defaults(func=_cmd_verify_plan)

    p_batch = sub.add_parser(
        "compile-batch",
        help="portfolio-compile a batch of graphs in parallel",
        description="Race a portfolio of scheduling strategies over many "
        "graphs, fanning out over worker processes and memoising every "
        "outcome in the persistent schedule cache. With no --cell/--graph "
        "arguments the full benchmark suite is compiled.",
    )
    p_batch.add_argument(
        "--cell",
        dest="cells",
        action="append",
        choices=sorted(BENCHMARK_SUITE),
        help="benchmark cell to include (repeatable)",
    )
    p_batch.add_argument(
        "--graph",
        dest="graphs",
        action="append",
        metavar="FILE",
        help="saved graph JSON to include (repeatable)",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (<=1 compiles in-process; default 0)",
    )
    p_batch.add_argument(
        "--strategies",
        help="comma-separated strategy names (default: the standard portfolio)",
    )
    from repro.scheduler.device import KNOWN_DEVICES

    p_batch.add_argument(
        "--device",
        choices=sorted(KNOWN_DEVICES),
        help="race with early cancellation against this device budget",
    )
    p_batch.add_argument(
        "--cache-dir",
        help="schedule cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro/schedules)",
    )
    p_batch.add_argument(
        "--no-cache", action="store_true", help="compile without the cache"
    )
    p_batch.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop existing cache entries before compiling",
    )
    p_batch.set_defaults(func=_cmd_compile_batch)

    def add_serving_options(p: argparse.ArgumentParser, requests: int) -> None:
        p.add_argument(
            "--requests", type=int, default=requests,
            help=f"total synthetic requests to drive (default {requests})",
        )
        p.add_argument(
            "--clients", type=int, default=4,
            help="concurrent closed-loop client threads (default 4)",
        )
        p.add_argument(
            "--workers", type=int, default=4,
            help="scheduler worker threads (default 4)",
        )
        p.add_argument(
            "--shards", type=int, default=1,
            help="worker PROCESSES to shard serving across (default 1: "
            "in-process threads). Each shard owns its own arena pool + "
            "scheduler; models are sticky-routed by rendezvous hash and "
            "tensors cross zero-copy shared-memory rings",
        )
        p.add_argument(
            "--max-batch", type=int, default=4,
            help="micro-batch limit for same-model requests; pooled "
            "executors are built batch-capable at this capacity, so a "
            "drained batch runs as ONE stacked kernel pass (default 4)",
        )
        p.add_argument(
            "--preload", action="store_true",
            help="build one executor per model before accepting traffic "
            "(kills cold-start builds in the latency tail)",
        )
        p.add_argument(
            "--budget-device",
            choices=sorted(KNOWN_DEVICES),
            help="cap resident arenas by this device's SRAM budget",
        )
        p.add_argument(
            "--budget-kb", type=float, metavar="KIB",
            help="cap resident arenas by a custom KiB budget",
        )
        p.add_argument(
            "--seed", type=int, default=0,
            help="seed for weights and request feeds (default 0)",
        )
        p.add_argument(
            "--spill",
            choices=("never", "auto", "always"),
            default="never",
            help="over-budget admission policy: refuse (never, default), "
            "degrade to spill-planned executors with measured off-chip "
            "traffic (auto), or spill-plan every executor (always)",
        )
        p.add_argument(
            "--spill-policy",
            choices=POLICY_NAMES,
            default="belady",
            help="replacement policy ranking spill victims (default: belady)",
        )
        p.add_argument(
            "--tile-bytes", type=_tile_bytes_arg, metavar="BYTES",
            help="stream spilled executors' buffers through fixed-size "
            "tile slots instead of whole-buffer staging (admits models "
            "below the whole-buffer capacity floor)",
        )
        p.add_argument(
            "--no-prefetch", action="store_true",
            help="run spilled executors' transfers inline instead of "
            "overlapping them on the background prefetch engine",
        )
        p.add_argument(
            "--offchip-mbps", type=float, metavar="MBPS",
            help="model the off-chip link at this bandwidth (MB/s) on "
            "every pooled executor's fetches/writebacks",
        )
        p.add_argument(
            "--deadline-ms", type=float, metavar="MS", default=None,
            help="per-request deadline: queued requests past it are shed "
            "before compute, in-flight ones fail typed "
            "(DeadlineExceededError) instead of blocking — identical "
            "semantics sharded and unsharded",
        )
        p.add_argument(
            "--retries", type=int, default=0,
            help="retry a request whose shard died with it in flight, "
            "rerouted through the live routing table (sharded runs; "
            "default 0)",
        )

    p_serve = sub.add_parser(
        "serve",
        help="serve compiled artifacts or freshly compiled graphs",
        description="Load CompiledModel artifacts — and/or compile "
        "benchmark cells / saved graphs on the spot through the "
        "persistent schedule cache — into the serving runtime "
        "(registry -> arena pool -> request scheduler) and drive a "
        "concurrent synthetic load, reporting throughput, latency "
        "percentiles and the arena-reuse hit rate.",
    )
    p_serve.add_argument(
        "artifacts", nargs="*", metavar="ARTIFACT",
        help="CompiledModel JSON artifact(s) to register",
    )
    p_serve.add_argument(
        "--cell",
        dest="cells",
        action="append",
        choices=sorted(BENCHMARK_SUITE),
        help="benchmark cell to compile-and-serve (repeatable; schedules "
        "come from the persistent cache when warm)",
    )
    p_serve.add_argument(
        "--graph",
        dest="graphs",
        action="append",
        metavar="FILE",
        help="saved graph JSON to compile-and-serve (repeatable)",
    )
    p_serve.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="greedy",
        help="scheduling strategy for --cell/--graph compilation "
        "(default: greedy)",
    )
    p_serve.add_argument(
        "--cache-dir",
        help="schedule cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro/schedules)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="compile --cell/--graph sources without the schedule cache",
    )
    add_serving_options(p_serve, requests=64)
    p_serve.add_argument(
        "--no-reuse", action="store_true",
        help="disable arena pooling (fresh executor per request)",
    )
    p_serve.add_argument(
        "--scrub",
        choices=("never", "zero", "fresh"),
        default="never",
        help="arena scrub policy between pooled runs (default: never)",
    )
    p_serve.add_argument(
        "--verify",
        action="store_true",
        help="compare every response bitwise against the reference "
        "executor; exit 1 on any divergence",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_bserve = sub.add_parser(
        "bench-serve",
        help="serving throughput: arena reuse vs fresh-per-request",
        description="Compile a set of models (default: the micro "
        "serving suite), then measure requests/sec twice — pooled arena "
        "reuse vs a fresh executor + arena per request — over identical "
        "workloads, and print the speedup.",
    )
    p_bserve.add_argument(
        "--cell",
        dest="cells",
        action="append",
        choices=sorted(BENCHMARK_SUITE),
        help="benchmark cell to serve instead of the micro suite "
        "(repeatable)",
    )
    p_bserve.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="greedy",
        help="scheduling strategy for compilation (default: greedy)",
    )
    add_serving_options(p_bserve, requests=160)
    p_bserve.add_argument(
        "--chaos",
        action="store_true",
        help="self-healing acceptance run: kill every shard once "
        "mid-load under a seeded FaultPlan and assert recovery — full "
        "shard count restored, >= 99%% of requests bitwise-correct, "
        "restart counters matching the schedule (needs --shards >= 2; "
        "exit 1 on failed recovery)",
    )
    p_bserve.add_argument(
        "--json-out",
        metavar="FILE",
        help="merge the chaos fault/recovery counters into this JSON "
        "document (e.g. benchmarks/results/BENCH_serving.json)",
    )
    p_bserve.set_defaults(func=_cmd_bench_serve)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument(
        "--policy",
        choices=POLICY_NAMES,
        default=None,
        help="replacement policy for the fig11 off-chip simulation (the "
        "same registry the runtime's spill planner draws from; "
        "default: belady)",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
