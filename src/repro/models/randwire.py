"""RandWire randomly wired networks (Xie et al., ICCV 2019).

Generates the random-graph stages ("cells") evaluated on CIFAR10/100.
The generative process follows the paper exactly:

1. sample an undirected graph from a classic random family —
   Watts–Strogatz ``WS(n, k, p)`` (RandWire's default, ``k=4, p=0.75``),
   Erdős–Rényi ``ER(n, p)`` or Barabási–Albert ``BA(n, m)`` — with a
   fixed seed;
2. orient every edge from lower to upper node index (yielding a DAG);
3. nodes without in-edges read from the stage input, nodes without
   out-edges are averaged into the stage output.

Each random node is lowered to one *fused* ``relu → sepconv3x3 → bn``
unit producing a single ``channels x hw x hw`` activation — the paper's
scheduling granularity (one activation tensor per graph node, Fig 6);
the transient depthwise intermediate inside the unit is private to the
fused kernel. Aggregation of multiple in-edges is an explicit ``add``
node (weighted sum in RandWire), so the irregular wiring is fully
visible to the scheduler. There are **no concats**, which is why
identity graph rewriting leaves RandWire untouched — matching Fig 10,
where the DP-only and DP+rewriting bars are identical for RandWire.

Stage emission is level-by-level (networkx topological generations),
the order a framework exporter produces — and the order the
TFLite-style baseline executes.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

__all__ = ["random_dag", "randwire_stage", "RANDWIRE_DEFAULTS"]

#: the generator settings RandWire uses for its headline results
RANDWIRE_DEFAULTS = {"k": 4, "p": 0.75}


def random_dag(
    n: int,
    generator: str = "ws",
    seed: int = 0,
    k: int = 4,
    p: float = 0.75,
    m: int = 5,
) -> "nx.DiGraph":
    """A random DAG over nodes ``0..n-1`` via index-orientation.

    ``generator``: ``ws`` (Watts–Strogatz, connected variant), ``er``
    (Erdős–Rényi G(n, p)) or ``ba`` (Barabási–Albert with ``m`` edges
    per new node).
    """
    if generator == "ws":
        und = nx.connected_watts_strogatz_graph(n, k, p, seed=seed)
    elif generator == "er":
        und = nx.erdos_renyi_graph(n, p, seed=seed)
    elif generator == "ba":
        und = nx.barabasi_albert_graph(n, m, seed=seed)
    else:
        raise GraphError(f"unknown random graph generator {generator!r}")
    dag = nx.DiGraph()
    dag.add_nodes_from(range(n))
    dag.add_edges_from((min(u, v), max(u, v)) for u, v in und.edges())
    return dag


def randwire_stage(
    n: int = 24,
    channels: int = 16,
    hw: int = 16,
    generator: str = "ws",
    seed: int = 0,
    name: str | None = None,
    **gen_kwargs,
) -> Graph:
    """One RandWire stage as a schedulable graph.

    The stage input is a ``channels x hw x hw`` activation; every random
    node is a fused separable-conv unit at the same shape; sink nodes are
    combined by ``add`` and projected by a strided pointwise conv (the
    stage's hand-off to the next resolution).
    """
    dag = random_dag(n, generator=generator, seed=seed, **gen_kwargs)
    b = GraphBuilder(name or f"randwire-{generator}{n}-s{seed}")
    x = b.input("x", (channels, hw, hw))

    produced: dict[int, str] = {}
    # level-by-level emission (exporter order): generations of the DAG
    for level in nx.topological_generations(dag):
        for i in sorted(level):
            preds = sorted(dag.predecessors(i))
            if not preds:
                feed = x
            elif len(preds) == 1:
                feed = produced[preds[0]]
            else:
                feed = b.add(
                    *[produced[j] for j in preds], name=f"n{i}/agg"
                )
            r = b.relu(feed, name=f"n{i}/relu")
            s = b.op(
                "fused_sep_conv3x3",
                (r,),
                name=f"n{i}/sep",
                out_channels=channels,
                kernel=3,
            )
            produced[i] = s

    sinks = [i for i in dag.nodes if dag.out_degree(i) == 0]
    tail = (
        produced[sinks[0]]
        if len(sinks) == 1
        else b.add(*[produced[i] for i in sorted(sinks)], name="out/agg")
    )
    b.conv2d(tail, channels * 2, kernel=1, stride=2, name="out/proj")
    return b.build()
