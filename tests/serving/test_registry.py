"""ModelRegistry: naming, signature verification, artifact loading."""

import dataclasses
import json

import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import ServingError
from repro.serving import ModelRegistry


@pytest.fixture
def compiled(diamond_graph):
    return CompilationPipeline("greedy").compile(diamond_graph)


class TestRegister:
    def test_register_and_get(self, compiled):
        registry = ModelRegistry()
        name = registry.register(compiled)
        assert name == compiled.graph.name
        assert registry.get(name) is compiled
        assert name in registry
        assert registry.names() == [name]
        assert registry.arena_bytes(name) == compiled.plan.arena_bytes

    def test_custom_name(self, compiled):
        registry = ModelRegistry()
        assert registry.register(compiled, name="prod-v1") == "prod-v1"
        assert "prod-v1" in registry

    def test_reregistering_same_artifact_is_idempotent(self, compiled):
        registry = ModelRegistry()
        registry.register(compiled, name="m")
        registry.register(compiled, name="m")
        assert len(registry) == 1

    def test_name_collision_with_different_artifact_rejected(
        self, compiled, chain_graph
    ):
        other = CompilationPipeline("greedy").compile(chain_graph)
        registry = ModelRegistry()
        registry.register(compiled, name="m")
        with pytest.raises(ServingError, match="already registered"):
            registry.register(other, name="m")

    def test_same_graph_different_compilation_rejected(self, diamond_graph):
        """Same graph signature is not the same artifact: a different
        schedule/plan under an existing name must not silently replace
        it (leased executors would desync pool byte accounting)."""
        a = CompilationPipeline("kahn").compile(diamond_graph)
        b = CompilationPipeline("greedy").compile(diamond_graph)
        registry = ModelRegistry()
        registry.register(a, name="m")
        with pytest.raises(ServingError, match="already registered"):
            registry.register(b, name="m")

    def test_signature_mismatch_rejected(self, compiled):
        forged = dataclasses.replace(compiled, signature="0" * 64)
        with pytest.raises(ServingError, match="signature"):
            ModelRegistry().register(forged)

    def test_unknown_model_rejected(self):
        with pytest.raises(ServingError, match="unknown model"):
            ModelRegistry().get("nope")


class TestLoad:
    def test_load_verified_artifact(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "m.json")
        registry = ModelRegistry()
        name = registry.load(path)
        assert registry.get(name).signature == compiled.signature

    def test_tampered_artifact_rejected(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        doc["graph"]["nodes"][0]["name"] += "-evil"
        path.write_text(json.dumps(doc))
        with pytest.raises(ServingError, match="cannot load"):
            ModelRegistry().load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ServingError, match="cannot load"):
            ModelRegistry().load(tmp_path / "absent.json")
