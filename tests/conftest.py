"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec


# ----------------------------------------------------------------------
# hermeticity: never let tests read or write the user's schedule cache
# ----------------------------------------------------------------------
@pytest.fixture(scope="session", autouse=True)
def _isolated_schedule_cache(tmp_path_factory):
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("schedule-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


# ----------------------------------------------------------------------
# deterministic example graphs
# ----------------------------------------------------------------------
@pytest.fixture
def chain_graph() -> Graph:
    """input -> conv -> relu -> conv (a straight line)."""
    b = GraphBuilder("chain")
    x = b.input("x", (4, 8, 8))
    c1 = b.conv2d(x, 8, kernel=3, name="c1")
    r = b.relu(c1, name="r")
    b.conv2d(r, 4, kernel=1, name="c2")
    return b.build()


@pytest.fixture
def diamond_graph() -> Graph:
    """Two parallel branches merged by add — the smallest graph where
    schedule order changes the peak."""
    b = GraphBuilder("diamond")
    x = b.input("x", (2, 4, 4))
    l = b.conv2d(x, 8, kernel=3, name="left")   # big branch
    r = b.conv2d(x, 2, kernel=3, name="right")  # small branch
    lr = b.conv2d(l, 2, kernel=1, name="left_down")
    b.add(lr, r, name="join")
    return b.build()


@pytest.fixture
def concat_conv_graph() -> Graph:
    """The channel-wise rewriting pattern: branches -> concat -> conv."""
    b = GraphBuilder("concat-conv")
    x = b.input("x", (4, 8, 8))
    l = b.conv2d(x, 4, kernel=1, name="l")
    m = b.conv2d(x, 6, kernel=3, name="m")
    r = b.conv2d(x, 2, kernel=3, name="r")
    cat = b.concat([l, m, r], name="cat")
    b.conv2d(cat, 5, kernel=3, stride=2, name="head")
    return b.build()


@pytest.fixture
def concat_depthwise_graph() -> Graph:
    """The kernel-wise rewriting pattern: branches -> concat -> dwconv."""
    b = GraphBuilder("concat-dw")
    x = b.input("x", (4, 8, 8))
    l = b.conv2d(x, 4, kernel=1, name="l")
    r = b.conv2d(x, 6, kernel=3, name="r")
    cat = b.concat([l, r], name="cat")
    b.depthwise_conv2d(cat, kernel=3, multiplier=2, name="head")
    return b.build()


@pytest.fixture
def hourglass_graph() -> Graph:
    """Three 'cells' joined at single-node cuts."""
    b = GraphBuilder("hourglass")
    x = b.input("x", (4, 8, 8))
    prev = x
    for cell in range(3):
        l = b.conv2d(prev, 6, kernel=3, name=f"c{cell}_l")
        r = b.conv2d(prev, 2, kernel=3, name=f"c{cell}_r")
        j = b.concat([l, r], name=f"c{cell}_cat")
        prev = b.conv2d(j, 4, kernel=1, name=f"c{cell}_out")
    return b.build()


# ----------------------------------------------------------------------
# random-graph helpers (shared by unit and property tests)
# ----------------------------------------------------------------------
def random_dag_graph(
    n_nodes: int,
    seed: int,
    edge_prob: float = 0.4,
    max_bytes_scale: int = 6,
    with_views: bool = False,
) -> Graph:
    """A random DAG of ``identity``-like ops with varied tensor sizes.

    Uses abstract single-tensor ops (op='input'/'add'/'identity'
    semantics irrelevant to memory) so tests exercise the scheduler on
    arbitrary topologies without shape-inference constraints.
    """
    rng = random.Random(seed)
    g = Graph(f"rand{seed}")
    names: list[str] = []
    for i in range(n_nodes):
        # every non-first node picks 0..3 predecessors among prior nodes
        preds: list[str] = []
        if names:
            k = rng.randint(0, min(3, len(names)))
            preds = rng.sample(names, k) if k else []
        if rng.random() < edge_prob and names and not preds:
            preds = [rng.choice(names)]
        shape = (rng.randint(1, max_bytes_scale), 2, 2)
        name = f"n{i}"
        memory = MemorySemantics()
        op = "input" if not preds else "blob"
        if with_views and len(preds) >= 2 and rng.random() < 0.3:
            # zero-copy concat: output spans all inputs' channels
            op = "concat_view"
            memory = MemorySemantics(view=True)
            shape = (sum(g.node(p).output.shape[0] for p in preds), 2, 2)
        node = Node(
            name=name,
            op=op,
            inputs=tuple(preds),
            output=TensorSpec(shape),
            memory=memory,
        )
        g.add(node)
        names.append(name)
    return g


dag_seeds = st.integers(min_value=0, max_value=10_000)
small_node_counts = st.integers(min_value=1, max_value=8)
medium_node_counts = st.integers(min_value=1, max_value=14)
