"""Quantisation what-if ablation (extension): int8 scales every peak by
the dtype ratio while SERENITY's relative wins are invariant."""

from repro.analysis.quantization import cast_graph
from repro.analysis.reporting import format_table
from repro.models.suite import get_cell
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import peak_of
from repro.scheduler.topological import kahn_schedule

CELLS = ("swiftnet-a", "swiftnet-b", "swiftnet-c")


def run():
    rows = []
    for key in CELLS:
        g32 = get_cell(key).factory()
        g8 = cast_graph(g32, "int8")
        rows.append(
            (
                key,
                peak_of(g32, kahn_schedule(g32)),
                dp_schedule(g32, max_states_per_step=50_000).peak_bytes,
                peak_of(g8, kahn_schedule(g8)),
                dp_schedule(g8, max_states_per_step=50_000).peak_bytes,
            )
        )
    return rows


def render(rows) -> str:
    body = [
        (
            key,
            f"{b32 / 1024:.1f}",
            f"{o32 / 1024:.1f}",
            f"{b8 / 1024:.1f}",
            f"{o8 / 1024:.1f}",
            f"{b32 / o32:.2f}x / {b8 / o8:.2f}x",
        )
        for key, b32, o32, b8, o8 in rows
    ]
    return format_table(
        ("cell", "fp32 base KB", "fp32 DP KB", "int8 base KB", "int8 DP KB", "ratios"),
        body,
        title="Ablation - precision vs peak (scheduling gains are dtype-invariant)",
    )


def test_quantization_ablation(benchmark, save_result):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("quantization_ablation", render(rows))
    for key, b32, o32, b8, o8 in rows:
        assert b32 == 4 * b8, key   # peaks scale exactly with width
        assert o32 == 4 * o8, key
        assert b32 / o32 == b8 / o8  # relative win invariant
