"""Fig 13: SERENITY (static) scheduling time per cell.

Absolute times are host/implementation-specific; the reproducible shape:
every cell schedules in seconds under divide-and-conquer + adaptive soft
budgeting, rewriting increases SwiftNet's time (more nodes to schedule)
and leaves DARTS/RandWire untouched (no rewrites fire there).
"""

from repro.experiments import fig13_time


def test_fig13_scheduling_time(benchmark, save_result):
    rows = benchmark.pedantic(fig13_time.run, rounds=1, iterations=1)
    save_result("fig13_scheduling_time", fig13_time.render(rows))

    assert len(rows) == 9
    by_key = {r.key: r for r in rows}

    # tractability: the paper's "less than one minute average extra
    # compilation time" claim, on our (pure-Python) implementation
    mean_gr = sum(r.time_gr_s for r in rows) / len(rows)
    assert mean_gr < 120, f"mean scheduling time {mean_gr:.1f}s is not edge-practical"

    # rewriting adds scheduling work exactly where it fires
    for key in ("swiftnet-a", "swiftnet-b", "swiftnet-c"):
        assert by_key[key].states_gr >= by_key[key].states_dp
    for key in ("darts-normal", "randwire-c10-b"):
        assert by_key[key].states_gr == by_key[key].states_dp
