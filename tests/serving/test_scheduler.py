"""RequestScheduler: dispatch, micro-batching, concurrent bitwise parity."""

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import (
    DeadlineExceededError,
    ExecutionError,
    ServingError,
)
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import (
    ArenaPool,
    ModelRegistry,
    RequestScheduler,
    run_load,
)
from repro.serving.scheduler import _Request


@pytest.fixture
def registry(chain_graph, diamond_graph):
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(chain_graph), name="chain")
    registry.register(pipeline.compile(diamond_graph), name="diamond")
    return registry


class TestDispatch:
    def test_submit_returns_reference_outputs(self, registry):
        graph = registry.get("chain").graph
        feeds = random_feeds(graph)
        ref = Executor(graph, params=init_params(graph, 0)).run(feeds)
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=2) as server:
            result = server.submit("chain", feeds).result(timeout=30)
        assert set(result.outputs) == set(ref)
        for name in ref:
            np.testing.assert_array_equal(ref[name], result.outputs[name])
        assert result.stats.model == "chain"
        assert result.stats.run_s > 0

    def test_output_subset_request(self, registry):
        graph = registry.get("chain").graph
        feeds = random_feeds(graph)
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            result = server.submit("chain", feeds, outputs=["r"]).result(timeout=30)
        assert set(result.outputs) == {"r"}

    def test_unknown_model_fails_fast(self, registry):
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            with pytest.raises(ServingError, match="unknown model"):
                server.submit("nope", {})

    def test_submit_before_start_rejected(self, registry):
        server = RequestScheduler(registry, ArenaPool(registry), workers=1)
        with pytest.raises(ServingError, match="not running"):
            server.submit("chain", {})

    def test_request_error_sets_future_exception(self, registry):
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            fut = server.submit("chain", {})  # missing feeds
            with pytest.raises(ExecutionError, match="missing feed"):
                fut.result(timeout=30)
        assert server.stats().errors == 1
        # the pool survives failed requests
        assert pool.stats().leased == 0


class TestMicroBatching:
    def _request(self, model: str) -> _Request:
        return _Request(
            model=model,
            feeds={},
            outputs=None,
            future=Future(),
            enqueued_at=time.perf_counter(),
        )

    def test_take_batch_groups_same_model(self, registry):
        server = RequestScheduler(
            registry, ArenaPool(registry), workers=1, max_batch=3
        )
        for model in ("chain", "chain", "diamond", "chain", "chain"):
            server._queue.append(self._request(model))
        batch = server._take_batch()
        assert [r.model for r in batch] == ["chain", "chain", "chain"]
        # the skipped diamond request kept its place at the head
        assert [r.model for r in server._queue] == ["diamond", "chain"]

    def test_take_batch_respects_limit_one(self, registry):
        server = RequestScheduler(registry, ArenaPool(registry), workers=1)
        for model in ("chain", "chain"):
            server._queue.append(self._request(model))
        assert len(server._take_batch()) == 1

    def test_batched_requests_all_answered(self, registry):
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry)
        with RequestScheduler(
            registry, pool, workers=1, max_batch=4
        ) as server:
            futures = [
                server.submit("diamond", random_feeds(graph, seed=i))
                for i in range(8)
            ]
            results = [f.result(timeout=30) for f in futures]
        ref = Executor(graph, params=params)
        for i, result in enumerate(results):
            want = ref.run(random_feeds(graph, seed=i))
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])
        stats = server.stats()
        assert stats.requests == 8
        assert stats.batches <= 8  # some leases served several requests


class TestStackedBatching:
    """Batch-capable executors turn a drained micro-batch into ONE
    stacked run with per-request scatter."""

    def _request(self, graph, seed, outputs=None, feeds=None) -> _Request:
        return _Request(
            model="diamond",
            feeds=feeds if feeds is not None else random_feeds(graph, seed=seed),
            outputs=outputs,
            future=Future(),
            enqueued_at=time.perf_counter(),
        )

    def test_stacked_batch_scatters_bitwise_outputs(self, registry):
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry, batch_size=8)
        with RequestScheduler(
            registry, pool, workers=1, max_batch=8
        ) as server:
            futures = [
                server.submit("diamond", random_feeds(graph, seed=i))
                for i in range(16)
            ]
            results = [f.result(timeout=30) for f in futures]
        ref = Executor(graph, params=params)
        for i, result in enumerate(results):
            want = ref.run(random_feeds(graph, seed=i))
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])
        stats = server.stats()
        assert stats.requests == 16
        # stacking happened: fewer executor runs than requests, and the
        # per-request stats carry the true stacked size
        assert stats.batches < 16
        assert stats.mean_batch > 1.0
        assert any(r.stats.batch_size > 1 for r in results)
        assert max(r.stats.batch_size for r in results) <= 8

    def test_partial_drain_runs_at_true_size(self, registry):
        """Three queued requests against capacity 8: the stacked run
        executes at size 3 (no padding) and records batch_size=3."""
        graph = registry.get("diamond").graph
        pool = ArenaPool(registry, batch_size=8)
        server = RequestScheduler(registry, pool, workers=1, max_batch=8)
        requests = [self._request(graph, seed=i) for i in range(3)]
        executor = pool.acquire("diamond")
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        for req in requests:
            result = req.future.result(timeout=5)
            assert result.stats.batch_size == 3
        assert executor.last_stats.batch == 3
        assert server.stats().batches == 1
        assert server.stats().mean_batch == 3.0

    def test_mixed_output_subsets_grouped_separately(self, registry):
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry, batch_size=8)
        server = RequestScheduler(registry, pool, workers=1, max_batch=8)
        subset = [graph.sinks[0]]
        requests = [
            self._request(graph, seed=0),
            self._request(graph, seed=1, outputs=list(subset)),
            self._request(graph, seed=2),
            self._request(graph, seed=3, outputs=list(subset)),
        ]
        executor = pool.acquire("diamond")
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        ref = Executor(graph, params=params)
        for i, req in enumerate(requests):
            result = req.future.result(timeout=5)
            assert result.stats.batch_size == 2  # two groups of two
            want = ref.run(random_feeds(graph, seed=i), outputs=req.outputs)
            assert set(result.outputs) == set(want)
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])

    def test_malformed_request_fails_alone(self, registry):
        """A bad request in a drained batch must not poison the
        stackable neighbours it was drained with."""
        graph = registry.get("diamond").graph
        pool = ArenaPool(registry, batch_size=8)
        server = RequestScheduler(registry, pool, workers=1, max_batch=8)
        good = [self._request(graph, seed=i) for i in range(2)]
        bad = self._request(graph, seed=9, feeds={})  # missing feed
        requests = [good[0], bad, good[1]]
        executor = pool.acquire("diamond")
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        for req in good:
            assert req.future.result(timeout=5).stats.batch_size == 2
        with pytest.raises(ExecutionError, match="missing feed"):
            bad.future.result(timeout=5)
        assert server.stats().errors == 1

    def test_extra_feeds_go_solo_not_poisoned(self, registry):
        """Requests carrying extra non-input feeds (which np.stack could
        trip over) must not be stacked together: each succeeds alone,
        exactly as the executor treats extra feeds solo."""
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry, batch_size=8)
        server = RequestScheduler(registry, pool, workers=1, max_batch=8)
        requests = []
        for i, extra_shape in enumerate([(2,), (3,)]):
            feeds = random_feeds(graph, seed=i)
            feeds["aux"] = np.zeros(extra_shape)  # not a graph input
            requests.append(self._request(graph, seed=i, feeds=feeds))
        executor = pool.acquire("diamond")
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        ref = Executor(graph, params=params)
        for i, req in enumerate(requests):
            result = req.future.result(timeout=5)
            assert result.stats.batch_size == 1  # solo, not stacked
            want = ref.run(random_feeds(graph, seed=i))
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])
        assert server.stats().errors == 0

    def test_drain_beyond_capacity_chunks(self, registry):
        """max_batch above the executor capacity chunks the stacked
        runs instead of overflowing the arena rows."""
        graph = registry.get("diamond").graph
        pool = ArenaPool(registry, batch_size=2)
        server = RequestScheduler(registry, pool, workers=1, max_batch=6)
        requests = [self._request(graph, seed=i) for i in range(5)]
        executor = pool.acquire("diamond")
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        sizes = sorted(
            req.future.result(timeout=5).stats.batch_size for req in requests
        )
        assert sizes == [1, 2, 2, 2, 2]
        assert server.stats().batches == 3

    def test_verified_load_with_stacking(self, registry):
        """End-to-end: concurrent load over batch-capable pool, every
        scattered sample bitwise the reference executor's."""
        report = run_load(
            registry,
            requests=48,
            clients=12,
            workers=1,
            max_batch=8,
            preload=True,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert report.mean_batch > 1.0
        assert report.batch_size == 8
        assert report.pool.preloads == 2


class TestConcurrentServing:
    def test_four_clients_two_models_bitwise(self, registry):
        """The acceptance-criterion shape: >= 4 concurrent clients over
        >= 2 resident models, every response bitwise-equal to the
        reference executor."""
        report = run_load(
            registry,
            requests=32,
            clients=4,
            workers=4,
            max_batch=4,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert len(report.models) == 2
        assert report.pool.hit_rate > 0.0
        assert report.rps > 0

    def test_budgeted_run_with_eviction_still_bitwise(self, registry):
        budget = max(
            registry.arena_bytes("chain"), registry.arena_bytes("diamond")
        ) + min(
            registry.arena_bytes("chain"), registry.arena_bytes("diamond")
        ) // 2
        report = run_load(
            registry,
            requests=24,
            clients=4,
            workers=2,
            budget=budget,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True

    def test_baseline_mode_serves_identically(self, registry):
        report = run_load(
            registry, requests=12, clients=3, workers=2, reuse=False, verify=True
        )
        assert report.verified is True
        assert report.pool.hits == 0

    def test_stats_percentiles_ordered(self, registry):
        report = run_load(registry, requests=16, clients=2, workers=2)
        assert 0.0 < report.p50_ms <= report.p99_ms


class TestErrorPaths:
    """Worker-loop failure semantics: poisoned batchmates, shutdown
    signals, and error latencies in the aggregate stats."""

    POISON = 7.5e33  # sentinel feed value the patched kernels choke on

    def _request(self, graph, seed, feeds=None) -> _Request:
        return _Request(
            model="diamond",
            feeds=feeds if feeds is not None else random_feeds(graph, seed=seed),
            outputs=None,
            future=Future(),
            enqueued_at=time.perf_counter(),
        )

    def _poison_executor(self, executor):
        """Make the executor raise whenever a feed carries the sentinel
        (stand-in for a data-dependent kernel exception)."""
        real_run, real_run_batch = executor.run, executor.run_batch

        def run(feeds, outputs=None):
            if any(np.any(np.asarray(v) == self.POISON) for v in feeds.values()):
                raise ExecutionError("poisoned feed")
            return real_run(feeds, outputs=outputs)

        def run_batch(feeds, outputs=None, batch=None):
            if any(np.any(np.asarray(v) == self.POISON) for v in feeds.values()):
                raise ExecutionError("poisoned feed in stacked batch")
            return real_run_batch(feeds, outputs=outputs, batch=batch)

        executor.run, executor.run_batch = run, run_batch

    def test_poisoned_batchmate_fails_alone_among_eight(self, registry):
        """A kernel exception inside one stacked run_batch must fail
        only the culpable request: the other seven are re-run solo and
        answered bitwise-correct."""
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry, batch_size=8)
        server = RequestScheduler(registry, pool, workers=1, max_batch=8)
        requests = [self._request(graph, seed=i) for i in range(8)]
        spec = graph.node(graph.input_nodes[0]).output.shape
        poisoned = requests[3]
        poisoned.feeds = {graph.input_nodes[0]: np.full(spec, self.POISON)}
        executor = pool.acquire("diamond")
        self._poison_executor(executor)
        try:
            server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        ref = Executor(graph, params=params)
        for i, req in enumerate(requests):
            if req is poisoned:
                continue
            result = req.future.result(timeout=5)
            assert result.stats.batch_size == 1  # served by the solo retry
            want = ref.run(random_feeds(graph, seed=i))
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])
        with pytest.raises(ExecutionError, match="poisoned feed"):
            poisoned.future.result(timeout=5)
        stats = server.stats()
        assert stats.errors == 1
        assert stats.requests == 7
        # every request — the failed one included — has a latency
        assert len(stats.latencies_s) == 8

    def test_base_exception_fails_pending_futures_and_reraises(self, registry):
        """KeyboardInterrupt inside a run aborts the batch: every
        pending future fails (no client hangs) and the signal
        propagates instead of being swallowed as a request error."""
        graph = registry.get("diamond").graph
        pool = ArenaPool(registry, batch_size=4)
        server = RequestScheduler(registry, pool, workers=1, max_batch=4)
        requests = [self._request(graph, seed=i) for i in range(4)]
        executor = pool.acquire("diamond")

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        executor.run_batch = interrupted
        try:
            with pytest.raises(KeyboardInterrupt):
                server._run_batch("diamond", requests, executor)
        finally:
            pool.release("diamond", executor)
        for req in requests:
            assert isinstance(req.future.exception(timeout=5), KeyboardInterrupt)

    def test_worker_thread_dies_on_base_exception(self, registry):
        """SystemExit from the pool stops the worker loop; the drained
        request's future carries the exception."""
        graph = registry.get("chain").graph
        pool = ArenaPool(registry)
        server = RequestScheduler(registry, pool, workers=1).start()

        def exiting_acquire(name, timeout=30.0):
            raise SystemExit("going down")

        server.pool = ArenaPool(registry)
        server.pool.acquire = exiting_acquire
        fut = server.submit("chain", random_feeds(graph))
        with pytest.raises(SystemExit):
            fut.result(timeout=10)
        server._threads[0].join(timeout=10)
        assert not server._threads[0].is_alive()
        assert server.stats().errors == 1
        server.shutdown(wait=True)

    def test_error_latencies_reach_percentiles(self, registry):
        """Failed runs must not vanish from the latency distribution."""
        graph = registry.get("chain").graph
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            ok = server.submit("chain", random_feeds(graph, seed=0))
            bad = server.submit("chain", {})  # missing feeds -> run fails
            ok.result(timeout=30)
            with pytest.raises(ExecutionError):
                bad.result(timeout=30)
        stats = server.stats()
        assert stats.requests == 1
        assert stats.errors == 1
        assert len(stats.latencies_s) == 2  # the error's latency counts

    def test_plan_execution_stats_fields_pinned_for_serving(self):
        """The scheduler reads these PlanExecutionStats names directly;
        renaming them must break loudly here, not silently zero the
        serving stats."""
        from dataclasses import fields

        from repro.runtime.plan_executor import PlanExecutionStats

        names = {f.name for f in fields(PlanExecutionStats)}
        assert {
            "measured_peak_bytes",
            "arena_reused",
            "spill_stall_s",
            "spill_hidden_s",
        } <= names
        assert isinstance(PlanExecutionStats.spill_bytes_total, property)


class TestDeadlines:
    """Single-process deadline semantics — identical to the sharded
    path, so `serve --shards 1` and unsharded serving fail the same."""

    def test_queued_request_is_shed_before_compute(self, registry):
        graph = registry.get("chain").graph
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            # stall the single worker so the second request waits in the
            # queue past its deadline
            server.run_hook = lambda: time.sleep(0.4)
            slow = server.submit("chain", random_feeds(graph, seed=0))
            doomed = server.submit(
                "chain", random_feeds(graph, seed=1), deadline_s=0.05
            )
            with pytest.raises(DeadlineExceededError, match="shed before"):
                doomed.result(timeout=30)
            assert slow.result(timeout=30) is not None
        stats = server.stats()
        assert stats.expired == 1
        assert stats.errors == 1  # expiries are a subset of errors
        assert stats.requests == 1
        assert len(stats.latencies_s) == 2  # shed latency still counts

    def test_constructor_default_applies_to_every_request(self, registry):
        graph = registry.get("chain").graph
        pool = ArenaPool(registry)
        with RequestScheduler(
            registry, pool, workers=1, deadline_s=0.05
        ) as server:
            server.run_hook = lambda: time.sleep(0.4)
            # a per-request deadline overrides the constructor default
            first = server.submit(
                "chain", random_feeds(graph, seed=0), deadline_s=30.0
            )
            second = server.submit("chain", random_feeds(graph, seed=1))
            # the second inherited the 50ms default and aged out queued
            with pytest.raises(DeadlineExceededError):
                second.result(timeout=30)
            assert first.result(timeout=30) is not None
        assert server.stats().expired == 1

    def test_no_deadline_means_no_shedding(self, registry):
        graph = registry.get("chain").graph
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            server.run_hook = lambda: time.sleep(0.1)
            futures = [
                server.submit("chain", random_feeds(graph, seed=i))
                for i in range(3)
            ]
            for f in futures:
                assert f.result(timeout=30) is not None
        assert server.stats().expired == 0

    def test_rejects_nonpositive_deadline(self, registry):
        pool = ArenaPool(registry)
        with pytest.raises(ServingError, match="deadline_s"):
            RequestScheduler(registry, pool, deadline_s=0.0)
