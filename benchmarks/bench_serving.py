"""Serving throughput: stacked tensor batching, arena reuse, baselines.

Two layers of measurement over the micro serving suite (small irregular
stages where per-request churn and per-node NumPy dispatch — not kernel
compute — dominate, the paper's edge regime):

* **executor-level** — one batch-8 ``PlanExecutor.run_batch`` over
  stacked samples vs the same samples run solo, per model. This
  isolates the tentpole win: every kernel dispatches once per node per
  batch instead of once per node per sample.
* **serving-level** — identical synthetic workloads driven through the
  full runtime (registry -> arena pool -> request scheduler) under
  three configurations: stacked batching (``max_batch 8``, batch-
  capable pooled executors, preloaded), solo pooled (``max_batch 1``),
  and the fresh-allocation-per-request baseline.

A third layer measures the scaling story:

* **thread-workers sweep** (1/2/4) — the honest GIL baseline: NumPy
  kernels hold the GIL for most of a micro-cell run, so thread workers
  plateau. Recorded, not asserted — it is the wall the shards beat.
* **sharded A/B** — the identical workload through ``shards=1`` vs
  ``shards=N`` worker *processes* (sticky rendezvous routing, zero-copy
  shared-memory tensor rings), plus a separate sharded run with
  per-request **bitwise verification** on.

Hard assertions:

* batch 8 sustains **>= 2x** the samples/sec of batch 1 (executor-level
  and serving-level), with **per-sample bitwise parity** against the
  reference executor for every stacked sample;
* pooled serving stays **>= 2x** the fresh baseline's requests/sec (the
  PR-3 guarantee, unregressed);
* a concurrent verified run (4+ clients, 2 models, stacking on) returns
  outputs bitwise-equal to the reference executor for every request —
  and so does the sharded verified run, across processes;
* sharded req/s >= 1.8x single-process at 4 shards (full mode; QUICK
  asserts >= 1.0x at 2 shards). Process speedup needs processors: the
  bar is only *asserted* when the host has the cores to honestly pass
  it (>= 4 CPUs full, >= 2 quick); on smaller hosts the A/B still runs
  and is recorded, correctness still asserted.

Results are written machine-readable to
``benchmarks/results/BENCH_serving.json`` (req/s, samples/s, p50/p99,
arena peaks, workers sweep, per-shard stats) so the perf trajectory is
tracked across PRs. The two tests merge into the same document, so CI
can run them as separate steps (``-k "not sharded"`` / ``-k sharded``).

Marked ``slow``; set ``REPRO_BENCH_QUICK=1`` (as CI does) to shrink the
request counts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.models.suite import serving_suite
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import ModelRegistry, run_load

pytestmark = pytest.mark.slow

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REQUESTS = 120 if QUICK else 320
CLIENTS = 32  # deep client pool so worker queues actually form batches
# one worker serialises kernel execution, so the A/B isolates per-run
# dispatch amortisation; multi-worker thread scaling is measured (and
# shown to plateau) by the workers sweep, and beaten by the shards
WORKERS = 1
BATCH = 8
EXEC_ROUNDS = 20 if QUICK else 60
WORKER_SWEEP = (1, 2, 4)
SHARDS = 2 if QUICK else 4
CPUS = os.cpu_count() or 1
#: the sharded speedup bar is asserted only on hosts with the cores to
#: honestly pass it; below that it is recorded, correctness-only
SPEEDUP_BAR = (1.0, 2) if QUICK else (1.8, 4)


def build_registry() -> ModelRegistry:
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    for name, factory in serving_suite().items():
        registry.register(pipeline.compile(factory()), name=name)
    return registry


def measure_executor_batching(registry: ModelRegistry) -> list[dict]:
    """Per model: samples/s of one stacked run_batch vs solo runs.

    Also proves the batching contract — every stacked sample bitwise
    equals the reference executor on the same weights and feeds.
    """
    rows = []
    for name in registry.names():
        model = registry.get(name)
        graph = model.graph
        params = init_params(graph, seed=0)
        solo = model.executor(params=params, batch_size=1)
        batched = model.executor(params=params, batch_size=BATCH)
        feeds = [random_feeds(graph, seed=i) for i in range(BATCH)]
        stacked = {
            k: np.stack([f[k] for f in feeds]) for k in feeds[0]
        }

        # parity first (also warms both arenas before timing)
        ref = Executor(graph, params=params)
        outs = batched.run_batch(stacked)
        mismatched = 0
        for b in range(BATCH):
            want = ref.run(feeds[b])
            for k in want:
                if not np.array_equal(want[k], outs[k][b]):
                    mismatched += 1
        for f in feeds:
            solo.run(f)

        t0 = time.perf_counter()
        for _ in range(EXEC_ROUNDS):
            for f in feeds:
                solo.run(f)
        solo_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(EXEC_ROUNDS):
            batched.run_batch(stacked)
        batch_s = time.perf_counter() - t0

        samples = EXEC_ROUNDS * BATCH
        rows.append(
            {
                "model": name,
                "nodes": len(graph),
                "solo_samples_per_s": samples / solo_s,
                "batched_samples_per_s": samples / batch_s,
                "speedup": solo_s / batch_s,
                "bitwise_mismatches": mismatched,
                "arena_bytes_per_sample": model.arena_bytes,
                "arena_bytes_batched": model.arena_bytes_for(BATCH),
                "measured_peak_bytes": batched.last_stats.measured_peak_bytes,
            }
        )
    return rows


def run() -> dict:
    registry = build_registry()
    exec_rows = measure_executor_batching(registry)

    common = dict(
        requests=REQUESTS, clients=CLIENTS, workers=WORKERS, seed=0
    )
    # warm every path once so none pays first-touch costs in the
    # measured window
    for reuse in (True, False):
        run_load(registry, requests=CLIENTS, clients=CLIENTS,
                 workers=WORKERS, reuse=reuse)
    # both measured pooled configs preload, so neither pays cold-start
    # builds in the measured window — the A/B isolates stacking
    batched = run_load(
        registry, max_batch=BATCH, reuse=True, preload=True, **common
    )
    solo = run_load(registry, max_batch=1, reuse=True, preload=True, **common)
    fresh = run_load(registry, max_batch=1, reuse=False, **common)
    verified = run_load(
        registry,
        requests=max(24, REQUESTS // 4),
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=BATCH,
        reuse=True,
        preload=True,
        verify=True,
    )
    # the GIL plateau the shards must beat: thread workers 1/2/4 over
    # the identical stacked-batching workload (recorded, not asserted)
    sweep = []
    for w in WORKER_SWEEP:
        r = run_load(
            registry, requests=REQUESTS, clients=CLIENTS, workers=w,
            max_batch=BATCH, reuse=True, preload=True, seed=0,
        )
        sweep.append(
            {
                "workers": w,
                "req_per_s": r.rps,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "mean_batch": r.mean_batch,
                "errors": r.errors,
            }
        )
    return {
        "exec": exec_rows,
        "batched": batched,
        "solo": solo,
        "fresh": fresh,
        "verified": verified,
        "workers_sweep": sweep,
    }


def run_sharded() -> dict:
    """The sharded-vs-single A/B plus a sharded bitwise-verified run.

    The timed pair differs in exactly one knob — ``shards`` — so the
    ratio is the process-sharding win and nothing else. Verification is
    deliberately *outside* the timed pair: the reference executor runs
    on the parent's CPU and would serialise the very parallelism being
    measured.
    """
    registry = build_registry()
    common = dict(
        requests=REQUESTS, clients=CLIENTS, workers=WORKERS,
        max_batch=BATCH, seed=0, reuse=True, preload=True,
    )
    # warm first-touch costs (schedule cache, imports) outside the A/B
    run_load(registry, requests=CLIENTS, clients=CLIENTS, workers=WORKERS)
    single = run_load(registry, **common)
    sharded = run_load(registry, shards=SHARDS, **common)
    verified = run_load(
        registry,
        requests=max(24, REQUESTS // 4),
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=BATCH,
        reuse=True,
        preload=True,
        verify=True,
        shards=SHARDS,
    )
    return {"single": single, "sharded": sharded, "verified": verified}


def render(result: dict) -> str:
    batched, solo, fresh = result["batched"], result["solo"], result["fresh"]
    verified = result["verified"]
    lines = [
        "serving throughput: stacked batching vs solo vs fresh per request "
        f"({'quick' if QUICK else 'full'} mode)",
        "",
        f"executor-level: one run_batch({BATCH}) vs {BATCH} solo runs "
        f"({EXEC_ROUNDS} rounds)",
        f"  {'model':<14s} {'nodes':>5s} {'solo /s':>10s} {'batch /s':>10s}"
        f" {'speedup':>8s}",
    ]
    for r in result["exec"]:
        lines.append(
            f"  {r['model']:<14s} {r['nodes']:>5d}"
            f" {r['solo_samples_per_s']:>10.0f}"
            f" {r['batched_samples_per_s']:>10.0f}"
            f" {r['speedup']:>7.2f}x"
        )
    lines += [
        "",
        batched.summary(),
        "",
        solo.summary(),
        "",
        fresh.summary(),
        "",
        f"batching speedup        : "
        f"{batched.samples_per_s / solo.samples_per_s:9.2f}x samples/sec "
        f"(batch {BATCH} vs batch 1)",
        f"arena reuse speedup     : {batched.rps / fresh.rps:9.2f}x "
        "requests/sec vs fresh baseline",
        "",
        "concurrent verification run (stacking on):",
        verified.summary(),
    ]
    sweep = result["workers_sweep"]
    base = sweep[0]["req_per_s"] or 1.0
    lines += [
        "",
        f"thread-workers sweep (the GIL plateau, {CPUS} cpus):",
        f"  {'workers':>7s} {'req/s':>10s} {'vs 1':>6s} {'p99 ms':>8s}",
    ]
    for row in sweep:
        lines.append(
            f"  {row['workers']:>7d} {row['req_per_s']:>10.1f}"
            f" {row['req_per_s'] / base:>5.2f}x {row['p99_ms']:>8.2f}"
        )
    lines.append(
        "  (NumPy kernels hold the GIL for most of a micro-cell run; "
        "thread workers plateau — process shards are the multiplier)"
    )
    return "\n".join(lines)


def render_sharded(result: dict) -> str:
    single, sharded = result["single"], result["sharded"]
    verified = result["verified"]
    bar, need_cpus = SPEEDUP_BAR
    speedup = sharded.rps / single.rps if single.rps else float("inf")
    verdict = (
        f"asserted >= {bar:.1f}x"
        if CPUS >= need_cpus
        else f"recorded only ({CPUS} cpus < {need_cpus}; bar {bar:.1f}x "
        "needs cores to be honest)"
    )
    lines = [
        f"sharded serving A/B: {SHARDS} processes vs single "
        f"({'quick' if QUICK else 'full'} mode, {CPUS} cpus)",
        "",
        single.summary(),
        "",
        sharded.summary(),
        "",
        f"sharding speedup        : {speedup:9.2f}x requests/sec "
        f"({SHARDS} shards vs 1 process; {verdict})",
        "",
        "sharded verification run (bitwise, across processes):",
        verified.summary(),
    ]
    return "\n".join(lines)


def payload(result: dict) -> dict:
    """The machine-readable BENCH_serving.json document."""

    batched, solo, fresh = result["batched"], result["solo"], result["fresh"]
    return {
        "quick": QUICK,
        "batch": BATCH,
        "cpus": CPUS,
        "executor": result["exec"],
        "serving": {
            "batched": load_doc(batched),
            "solo": load_doc(solo),
            "fresh": load_doc(fresh),
            "verified": load_doc(result["verified"]),
        },
        "workers_sweep": result["workers_sweep"],
        "speedups": {
            "batched_vs_solo_samples_per_s": (
                batched.samples_per_s / solo.samples_per_s
            ),
            "pooled_vs_fresh_req_per_s": batched.rps / fresh.rps,
            "executor_batched_vs_solo": [
                {"model": r["model"], "speedup": r["speedup"]}
                for r in result["exec"]
            ],
        },
        "verified_bitwise": result["verified"].verified,
    }


def load_doc(report) -> dict:
    doc = {
        "requests": report.requests,
        "clients": report.clients,
        "workers": report.workers,
        "max_batch": report.max_batch,
        "batch_size": report.batch_size,
        "reuse": report.reuse,
        "preloaded": report.preloaded,
        "req_per_s": report.rps,
        "samples_per_s": report.samples_per_s,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "mean_batch": report.mean_batch,
        "arena_hit_rate": report.pool.hit_rate,
        "resident_arena_bytes": report.pool.resident_bytes,
        "errors": report.errors,
        "shards": report.shards,
    }
    if report.shards > 1:
        doc["shard_stats"] = [s.to_doc() for s in report.shard_stats]
    return doc


def sharded_payload(result: dict) -> dict:
    """The ``sharded`` section of BENCH_serving.json."""
    single, sharded = result["single"], result["sharded"]
    bar, need_cpus = SPEEDUP_BAR
    return {
        "shards": SHARDS,
        "cpus": CPUS,
        "single": load_doc(single),
        "sharded": load_doc(sharded),
        "verified": load_doc(result["verified"]),
        "speedup_req_per_s": (
            sharded.rps / single.rps if single.rps else None
        ),
        "speedup_bar": bar,
        "speedup_asserted": CPUS >= need_cpus,
        "verified_bitwise": result["verified"].verified,
    }


def merged_payload(extra: dict) -> dict:
    """Existing BENCH_serving.json keys + ``extra``.

    The smoke test and the sharded test run as separate CI steps but
    share one document; whichever runs second must not clobber the
    first's sections.
    """
    path = Path(__file__).parent / "results" / "BENCH_serving.json"
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
        doc.pop("bench", None)
        doc.pop("host", None)
    doc.update(extra)
    return doc


def test_serving_smoke(benchmark, save_result, save_json):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("serving_smoke", render(result))
    save_json("serving", merged_payload(payload(result)))

    # the GIL-plateau sweep is recorded, not asserted — but it must at
    # least have run cleanly at every worker count
    assert [row["workers"] for row in result["workers_sweep"]] == list(
        WORKER_SWEEP
    )
    assert all(row["errors"] == 0 for row in result["workers_sweep"])

    batched, solo, fresh = result["batched"], result["solo"], result["fresh"]
    verified = result["verified"]
    assert not batched.errors and not solo.errors and not fresh.errors
    assert not verified.errors

    # the serving layer is an executor, not an approximation: every
    # concurrently served response — including samples scattered out of
    # stacked batched runs — is bitwise the reference executor's
    assert len(verified.models) >= 2
    assert verified.clients >= 4
    assert verified.mean_batch > 1.0  # stacking actually happened
    assert verified.verified is True

    # executor-level: stacked batching amortises dispatch >= 2x, with
    # per-sample bitwise parity on every stacked sample
    for row in result["exec"]:
        assert row["bitwise_mismatches"] == 0, row
        assert row["measured_peak_bytes"] <= row["arena_bytes_per_sample"]
        assert row["speedup"] >= 2.0, (
            f"{row['model']}: batched {row['batched_samples_per_s']:.0f} "
            f"samples/s vs solo {row['solo_samples_per_s']:.0f} "
            f"({row['speedup']:.2f}x < 2x)"
        )

    # serving-level: batch 8 sustains >= 2x the samples/sec of batch 1
    # over the identical workload
    assert batched.mean_batch > 1.5
    assert batched.samples_per_s >= 2.0 * solo.samples_per_s, (
        f"batched {batched.samples_per_s:.1f} samples/s vs solo "
        f"{solo.samples_per_s:.1f} "
        f"({batched.samples_per_s / solo.samples_per_s:.2f}x < 2x)"
    )

    # arena reuse still pays >= 2x over the fresh baseline (PR-3 bar)
    assert batched.pool.hit_rate > 0.5
    assert fresh.pool.hits == 0
    assert batched.rps >= 2.0 * fresh.rps, (
        f"pooled {batched.rps:.1f} req/s vs fresh {fresh.rps:.1f} req/s "
        f"({batched.rps / fresh.rps:.2f}x < 2x)"
    )


def test_sharded_serving(save_result, save_json):
    result = run_sharded()
    save_result("serving_sharded", render_sharded(result))
    save_json("serving", merged_payload({"sharded": sharded_payload(result)}))

    single, sharded = result["single"], result["sharded"]
    verified = result["verified"]
    assert not single.errors and not sharded.errors and not verified.errors

    # the zero-copy process boundary preserves the executor contract:
    # every response, scattered out of a stacked run in some worker
    # process and shipped back through the response ring, is bitwise
    # the reference executor's
    assert verified.shards == SHARDS
    assert verified.verified is True

    # sticky routing spread the suite across shards and kept arenas
    # warm inside each: requests flowed to >= 2 shards, models never
    # duplicated, and each busy shard's pool re-served its arenas
    stats = sharded.shard_stats
    assert len(stats) == SHARDS
    assert sorted(m for s in stats for m in s.models) == list(sharded.models)
    busy = [s for s in stats if s.requests > 0]
    assert len(busy) >= min(len(sharded.models), SHARDS)
    for s in busy:
        assert s.pool is not None and s.pool.hits > 0, s
        assert s.req_ring_peak > 0

    bar, need_cpus = SPEEDUP_BAR
    speedup = sharded.rps / single.rps if single.rps else float("inf")
    if CPUS >= need_cpus:
        assert speedup >= bar, (
            f"sharded {sharded.rps:.1f} req/s vs single {single.rps:.1f} "
            f"req/s ({speedup:.2f}x < {bar:.1f}x at {SHARDS} shards, "
            f"{CPUS} cpus)"
        )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
    print()
    print(render_sharded(run_sharded()))
