"""Structured findings for the static plan verifier.

Every check in :mod:`repro.analysis.verifier` (and the dynamic
byte-bounds cross-check in :mod:`repro.analysis.shadow`) reports
through one record type: a :class:`Diagnostic` names the violated
invariant (``code``), where it was observed (schedule step, buffer id,
byte range) and how bad it is (``severity``). Consumers — the CLI's
``verify-plan`` subcommand, :meth:`CompiledModel.load`, the portfolio
compiler's winner screening — only ever look at the structured fields,
so a new check integrates by emitting a new code, never by teaching
callers a new exception type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Diagnostic", "AnalysisReport", "ERROR", "WARNING"]

#: severity levels, in increasing order of badness
WARNING = "warning"
ERROR = "error"
_SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding against a compiled plan.

    ``code`` is a stable machine-readable invariant name (e.g.
    ``ARENA_OVERLAP``, ``PREFETCH_RACE``); ``message`` is the human
    explanation. ``step`` is a full-schedule step index, ``buffer`` a
    buffer id and ``byte_range`` a half-open ``[lo, hi)`` span in the
    region the invariant concerns — all optional, filled when the check
    can localise the violation.
    """

    code: str
    severity: str
    message: str
    #: full-schedule step index the finding anchors to
    step: int | None = None
    #: node name at that step, when known
    node: str | None = None
    buffer: int | None = None
    byte_range: tuple[int, int] | None = None
    #: which plan artifact the invariant belongs to
    plan: str = "arena"

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"pick one of {_SEVERITIES}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def format(self) -> str:
        """One human-readable line: ``CODE [locus]: message``."""
        locus = []
        if self.step is not None:
            locus.append(f"step {self.step}")
        if self.node is not None:
            locus.append(f"node {self.node!r}")
        if self.buffer is not None:
            locus.append(f"buffer {self.buffer}")
        if self.byte_range is not None:
            lo, hi = self.byte_range
            locus.append(f"bytes [{lo}, {hi})")
        where = f" ({', '.join(locus)})" if locus else ""
        return f"{self.severity.upper()} {self.code}{where}: {self.message}"

    def to_doc(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "step": self.step,
            "node": self.node,
            "buffer": self.buffer,
            "byte_range": list(self.byte_range) if self.byte_range else None,
            "plan": self.plan,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """All findings of one verification pass over one plan/artifact."""

    target: str
    diagnostics: tuple[Diagnostic, ...]
    #: names of the check families that actually ran (a skipped check —
    #: e.g. spill analysis on an artifact without spill plans — is
    #: absent, so "no findings" is never confused with "not checked")
    checks: tuple[str, ...] = field(default_factory=tuple)
    level: str = "full"

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding exists."""
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def summary(self) -> str:
        """Multi-line human report (the ``verify-plan`` output body)."""
        errs, warns = self.errors, self.warnings
        verdict = (
            "PASS"
            if self.ok and not warns
            else ("PASS (with warnings)" if self.ok else "FAIL")
        )
        lines = [
            f"{self.target}: {verdict} — {len(errs)} error(s), "
            f"{len(warns)} warning(s); checks: "
            f"{', '.join(self.checks) if self.checks else 'none'}"
        ]
        for d in self.diagnostics:
            lines.append(f"  {d.format()}")
        return "\n".join(lines)

    def to_doc(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "ok": self.ok,
            "level": self.level,
            "checks": list(self.checks),
            "diagnostics": [d.to_doc() for d in self.diagnostics],
        }

    @classmethod
    def merged(cls, target: str, reports: Iterable["AnalysisReport"]) -> "AnalysisReport":
        """Concatenate several partial reports into one."""
        reports = list(reports)
        seen: dict[str, None] = {}
        for r in reports:
            for c in r.checks:
                seen.setdefault(c, None)
        return cls(
            target=target,
            diagnostics=tuple(d for r in reports for d in r.diagnostics),
            checks=tuple(seen),
            level=reports[0].level if reports else "full",
        )
