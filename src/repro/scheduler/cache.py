"""Persistent on-disk compilation cache.

Scheduling is the expensive step of the pipeline (seconds of DP search
per cell), but its output — a topological order plus its verified peaks
— is tiny and deterministic. This cache persists that output across
processes, keyed by

``(graph_signature(graph), strategy cache key)``

where :func:`~repro.graph.serialization.graph_signature` is a canonical
content hash invariant under node renaming, and the strategy key is
``name@version`` from the registry (bumping a strategy's version
invalidates its old entries). Re-compiling the model suite therefore
costs one directory lookup per (graph, strategy) pair instead of a DP
search — near-instant, across process and machine restarts.

Layout: one JSON file per entry under ``<root>/<sig[:2]>/<sig>.<key>.json``
with ``root`` defaulting to ``$REPRO_CACHE_DIR`` or
``~/.cache/repro/schedules``. Writes are atomic (temp file +
``os.replace``), so concurrent compilers at worst duplicate work — they
never corrupt each other. A corrupted or truncated entry is treated as
a miss and recomputed, never raised to the caller.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CacheEntry", "CacheStats", "ScheduleCache", "default_cache_root"]

_ENTRY_FORMAT = "repro-schedule-cache/1"

#: environment override for the cache location (used by the test suite
#: to stay hermetic, and by deployments to share a warm cache)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "schedules"


@dataclass(frozen=True)
class CacheEntry:
    """One cached compilation outcome."""

    signature: str
    strategy_key: str
    graph_name: str
    order: tuple[str, ...]
    peak_bytes: int
    arena_bytes: int
    #: rename-invariant canonical key per order entry (same length as
    #: ``order``); lets consumers replay the schedule on a relabeled
    #: instance of the graph
    canon_order: tuple[str, ...] | None = None
    #: strategy-specific extras (e.g. rewrite_count, original time)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_doc(self) -> dict[str, Any]:
        return {
            "format": _ENTRY_FORMAT,
            "signature": self.signature,
            "strategy_key": self.strategy_key,
            "graph_name": self.graph_name,
            "order": list(self.order),
            "canon_order": list(self.canon_order) if self.canon_order else None,
            "peak_bytes": self.peak_bytes,
            "arena_bytes": self.arena_bytes,
            "meta": self.meta,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "CacheEntry":
        if doc.get("format") != _ENTRY_FORMAT:
            raise ValueError(f"unsupported cache format {doc.get('format')!r}")
        order = doc["order"]
        if not isinstance(order, list) or not all(
            isinstance(n, str) for n in order
        ):
            raise ValueError("cache entry order is not a list of node names")
        canon = doc.get("canon_order")
        return cls(
            signature=doc["signature"],
            strategy_key=doc["strategy_key"],
            graph_name=doc.get("graph_name", "graph"),
            order=tuple(order),
            canon_order=tuple(canon) if canon else None,
            peak_bytes=int(doc["peak_bytes"]),
            arena_bytes=int(doc["arena_bytes"]),
            meta=dict(doc.get("meta", {})),
        )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ScheduleCache:
    """Directory-backed map ``(signature, strategy_key) -> CacheEntry``."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    def _path(self, signature: str, strategy_key: str) -> Path:
        return self.root / signature[:2] / f"{signature}.{strategy_key}.json"

    def get(self, signature: str, strategy_key: str) -> CacheEntry | None:
        """Look up an entry; corrupted/unreadable entries count as misses."""
        path = self._path(signature, strategy_key)
        try:
            doc = json.loads(path.read_text())
            entry = CacheEntry.from_doc(doc)
            if entry.signature != signature or entry.strategy_key != strategy_key:
                raise ValueError("cache entry key mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupted entry: drop it and recompute rather than crash
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
            return None
        self.stats.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> Path:
        """Atomically persist ``entry``; last writer wins."""
        path = self._path(entry.signature, entry.strategy_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(entry.to_doc(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best effort
                pass
            raise
        self.stats.writes += 1
        return path

    #: entries live at <root>/<2-hex shard>/<64-hex sig>.<key>.json —
    #: clear()/__len__ match only this shape, so pointing --cache-dir at
    #: an arbitrary directory can never destroy unrelated JSON files
    _ENTRY_NAME = re.compile(r"^[0-9a-f]{64}\.[^/]+\.json$")
    _SHARD_NAME = re.compile(r"^[0-9a-f]{2}$")

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and self._SHARD_NAME.match(shard.name)):
                continue
            for path in sorted(shard.iterdir()):
                if path.is_file() and self._ENTRY_NAME.match(path.name):
                    yield path

    def clear(self) -> int:
        """Delete every *cache entry* (and only entries); returns count."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - best effort
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleCache({str(self.root)!r}, entries={len(self)})"
