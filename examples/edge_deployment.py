"""Edge deployment study: will SwiftNet fit a SparkFun-Edge-class device?

Run:  python examples/edge_deployment.py

The motivating scenario of the paper (Section 2.2): a 250 KB
activation-memory microcontroller. This example compiles the full
62-node SwiftNet with and without SERENITY, checks the hard memory
constraint, and sweeps on-chip capacities to show the off-chip traffic
a device with a memory hierarchy would see (Fig 11's methodology).
"""

from repro import Serenity, SerenityConfig, kahn_schedule, offchip_traffic
from repro.analysis.cdf import SPARKFUN_EDGE_BYTES
from repro.models import swiftnet_hpd


def main() -> None:
    graph = swiftnet_hpd()
    print(f"network: {graph.name} ({len(graph)} nodes, "
          f"{graph.total_macs() / 1e6:.1f}M MACs)\n")

    report = Serenity(SerenityConfig(max_states_per_step=20_000)).compile(graph)
    budget_kb = SPARKFUN_EDGE_BYTES / 1024

    print(f"device activation budget      : {budget_kb:7.1f}KB (SparkFun Edge)")
    baseline_kb = report.baseline_arena_bytes / 1024
    ours_kb = report.arena_bytes / 1024
    verdict = lambda kb: "FITS" if kb <= budget_kb else "DOES NOT FIT"  # noqa: E731
    print(f"baseline schedule peak        : {baseline_kb:7.1f}KB  -> "
          f"{verdict(baseline_kb)}")
    print(f"SERENITY schedule peak        : {ours_kb:7.1f}KB  -> "
          f"{verdict(ours_kb)}")
    if report.divide:
        sizes = ",".join(str(s) for s in report.divide.partition_sizes)
        print(f"divide-and-conquer partitions : {{{sizes}}}")

    print("\noff-chip traffic by on-chip capacity (Belady policy):")
    print(f"  {'capacity':>10}  {'baseline':>12}  {'SERENITY':>12}  {'saving':>8}")
    baseline_sched = kahn_schedule(graph)
    for cap_kb in (32, 64, 128, 256, 512):
        base = offchip_traffic(
            graph, baseline_sched, cap_kb * 1024
        ).total_bytes
        ours = offchip_traffic(
            report.scheduled_graph, report.schedule, cap_kb * 1024
        ).total_bytes
        if base == ours == 0:
            saving = "on-chip"
        elif ours == 0:
            saving = "removed"
        else:
            saving = f"{base / ours:.2f}x"
        print(
            f"  {cap_kb:>8}KB  {base / 1024:>10.1f}KB  {ours / 1024:>10.1f}KB"
            f"  {saving:>8}"
        )


if __name__ == "__main__":
    main()
