"""Schedulers: the DP core, its accelerators, and baselines."""

from repro.scheduler.annealing import AnnealingResult, anneal_schedule

from repro.scheduler.brute import BruteForceResult, brute_force_schedule
from repro.scheduler.device import (
    AMBIQ_APOLLO3,
    KNOWN_DEVICES,
    SPARKFUN_EDGE,
    STM32F746,
    DeviceFitReport,
    DeviceSpec,
    fit_to_device,
)
from repro.scheduler.budget import (
    AdaptiveSoftBudgetScheduler,
    BudgetProbe,
    BudgetSearchResult,
)
from repro.scheduler.divide import (
    DivideAndConquerResult,
    DivideAndConquerScheduler,
    SegmentOutcome,
)
from repro.scheduler.dp import DPResult, DPScheduler, dp_schedule
from repro.scheduler.greedy import greedy_schedule
from repro.scheduler.memory import (
    BufferModel,
    MemoryTrace,
    peak_of,
    simulate_schedule,
)
from repro.scheduler.schedule import Schedule
from repro.scheduler.serenity import (
    Serenity,
    SerenityConfig,
    SerenityReport,
    schedule_graph,
)
from repro.scheduler.topological import (
    count_topological_orders,
    dfs_schedule,
    iter_topological_orders,
    kahn_schedule,
    random_topological,
)

__all__ = [
    "Schedule",
    "BufferModel",
    "MemoryTrace",
    "simulate_schedule",
    "peak_of",
    "kahn_schedule",
    "dfs_schedule",
    "random_topological",
    "iter_topological_orders",
    "count_topological_orders",
    "greedy_schedule",
    "brute_force_schedule",
    "BruteForceResult",
    "DPScheduler",
    "DPResult",
    "dp_schedule",
    "AdaptiveSoftBudgetScheduler",
    "BudgetProbe",
    "BudgetSearchResult",
    "DivideAndConquerScheduler",
    "DivideAndConquerResult",
    "SegmentOutcome",
    "Serenity",
    "SerenityConfig",
    "SerenityReport",
    "schedule_graph",
    "anneal_schedule",
    "AnnealingResult",
    "DeviceSpec",
    "DeviceFitReport",
    "fit_to_device",
    "SPARKFUN_EDGE",
    "STM32F746",
    "AMBIQ_APOLLO3",
    "KNOWN_DEVICES",
]
