"""Deployment-artifact export: schedule + arena plan as JSON.

The compiler's end product on a real device is not a Python object but
an execution order plus a byte offset per buffer inside one arena —
exactly what TFLite bakes into its flatbuffer. ``export_plan`` emits
that artifact so a (hypothetical) C runtime could execute the SERENITY
schedule directly; the document is versioned and round-trip tested.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.allocator.arena import AllocationPlan, plan_allocation
from repro.graph.analysis import bits
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["plan_to_dict", "export_plan"]

_FORMAT = "repro-plan/1"


def plan_to_dict(
    graph: Graph,
    schedule: Schedule,
    plan: AllocationPlan | None = None,
    model: BufferModel | None = None,
) -> dict[str, Any]:
    """Serialise the deployment artifact.

    Contains the execution order, the arena size, and per-node tensor
    placement: each node's output buffer id, byte offset and size (nodes
    sharing a buffer — views, in-place accumulation — share offsets).
    """
    model = model or BufferModel.of(graph)
    plan = plan or plan_allocation(graph, schedule, model=model)
    idx = model.index

    tensors = []
    for i, name in enumerate(idx.order):
        b = model.buffer_of[i]
        tensors.append(
            {
                "node": name,
                "op": graph.node(name).op,
                "buffer": b,
                "offset": plan.offsets[b],
                "bytes": graph.node(name).output_bytes,
            }
        )
    return {
        "format": _FORMAT,
        "graph": graph.name,
        "arena_bytes": plan.arena_bytes,
        "strategy": plan.strategy,
        "schedule": list(schedule.order),
        "tensors": tensors,
        "buffers": [
            {
                "id": b,
                "offset": plan.offsets[b],
                "bytes": model.buf_size[b],
                "persistent": model.buf_persistent[b],
                "producers": [idx.order[i] for i in bits(model.buf_members[b])],
            }
            for b in range(model.n_buffers)
        ],
    }


def export_plan(
    graph: Graph,
    schedule: Schedule,
    path: str | Path,
    strategy: str = "first_fit",
) -> dict[str, Any]:
    """Write the artifact to ``path`` and return the document."""
    model = BufferModel.of(graph)
    plan = plan_allocation(graph, schedule, strategy=strategy, model=model)
    doc = plan_to_dict(graph, schedule, plan=plan, model=model)
    Path(path).write_text(json.dumps(doc, indent=2))
    return doc
