"""Divide-and-conquer graph partitioning (paper Section 3.2, Fig 7).

Irregularly wired networks from NAS are "hourglass shaped": cells with a
single input and single output stacked in sequence. At each waist of the
hourglass there is a **cut node** ``v`` such that

1. every other node is an ancestor or a descendant of ``v`` (any
   topological order schedules all of ``anc(v)`` before ``v`` and all of
   ``desc(v)`` after), and
2. no edge jumps over ``v`` from an ancestor to a descendant — so at the
   moment ``v`` has just executed, ``v``'s activation is the *only* live
   tensor.

Under these two conditions the scheduling problem splits exactly: the
optimal peak of the whole graph is the max of the optimal peaks of the
segments between consecutive cut nodes (Wilken et al., 2000), which is
what :mod:`repro.scheduler.divide` exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import GraphIndex, bits
from repro.graph.graph import Graph

__all__ = ["CutPoint", "find_cut_nodes", "partition_at_cuts", "Segment"]


@dataclass(frozen=True)
class CutPoint:
    """A single-node graph cut."""

    name: str
    index: int
    #: nodes scheduled strictly before the cut (mask over GraphIndex bits)
    before_mask: int


@dataclass(frozen=True)
class Segment:
    """One divide-and-conquer subproblem.

    ``entry`` is the upstream cut node whose activation is live when the
    segment starts (``None`` for the first segment). ``graph`` contains
    the entry as an ``input`` stub so the segment is independently
    schedulable; ``exit`` is the downstream cut node, included in the
    segment (it is the segment's sink).
    """

    graph: Graph
    entry: str | None
    exit: str | None
    #: names of the segment's nodes in the parent graph, excluding the
    #: entry stub (i.e. the nodes this segment is responsible for
    #: scheduling), in parent topological order.
    owned: tuple[str, ...]


def find_cut_nodes(graph: Graph, index: GraphIndex | None = None) -> list[CutPoint]:
    """All single-node cuts of ``graph``, in topological order.

    A node ``v`` qualifies iff (a) every node is comparable to ``v`` and
    (b) every edge leaving the downset ``anc(v) | {v}`` originates at
    ``v`` itself. Sources/sinks of a connected hourglass graph qualify
    trivially and delimit the first/last segments.
    """
    idx = index or GraphIndex.build(graph)
    full = idx.full_mask
    cuts: list[CutPoint] = []
    for i in range(idx.n):
        if idx.comparable_mask(i) != full:
            continue
        before = idx.ancestors_mask[i]
        inside = before | (1 << i)
        ok = True
        for j in bits(before):
            if idx.succs_mask[j] & ~inside:
                ok = False
                break
        if ok:
            cuts.append(CutPoint(name=idx.order[i], index=i, before_mask=before))
    cuts.sort(key=lambda c: c.before_mask.bit_count())
    return cuts


def partition_at_cuts(
    graph: Graph,
    cuts: list[CutPoint] | None = None,
    min_segment_nodes: int = 2,
) -> list[Segment]:
    """Split ``graph`` into segments between consecutive cut nodes.

    Consecutive cuts with fewer than ``min_segment_nodes`` new nodes in
    between are merged (cutting there buys nothing). Returns at least one
    segment; with no interior cut the single segment is the whole graph.
    """
    idx = GraphIndex.build(graph)
    cuts = find_cut_nodes(graph, idx) if cuts is None else cuts

    # Keep cuts that advance by at least min_segment_nodes.
    kept: list[CutPoint] = []
    prev_count = 0
    for cut in cuts:
        count = cut.before_mask.bit_count() + 1  # nodes up to and incl. cut
        if count - prev_count >= min_segment_nodes and count < idx.n:
            kept.append(cut)
            prev_count = count
        elif count == idx.n:
            # final sink — never a useful boundary on its own
            continue

    segments: list[Segment] = []
    prev_cut: CutPoint | None = None
    boundaries = kept + [None]  # type: ignore[list-item]
    for cut in boundaries:
        if cut is None:
            lo_mask = prev_cut.before_mask | (1 << prev_cut.index) if prev_cut else 0
            owned_idx = [i for i in range(idx.n) if not (lo_mask >> i) & 1]
            exit_name = None
        else:
            lo_mask = prev_cut.before_mask | (1 << prev_cut.index) if prev_cut else 0
            hi_mask = cut.before_mask | (1 << cut.index)
            owned_idx = [i for i in bits(hi_mask & ~lo_mask)]
            exit_name = cut.name
        if not owned_idx:
            prev_cut = cut
            continue
        owned = tuple(idx.order[i] for i in sorted(owned_idx))
        entry = prev_cut.name if prev_cut else None
        # The entry cut node is *not* owned: induced_subgraph stubs it as
        # an ``input`` node automatically, modelling its activation being
        # live (and already paid for) at the segment boundary.
        sub = graph.induced_subgraph(
            list(owned), name=f"{graph.name}/seg{len(segments)}"
        )
        segments.append(Segment(graph=sub, entry=entry, exit=exit_name, owned=owned))
        prev_cut = cut
    return segments
