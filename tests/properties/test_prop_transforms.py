"""Properties of graph normalisation and model determinism."""

import random

from hypothesis import given, settings, strategies as st

from repro.graph.transforms import mark_concat_views
from tests.conftest import random_dag_graph


def _random_concat_graph(seed: int):
    """Random DAG of convs with concat joins (realistic view targets)."""
    from repro.graph.builder import GraphBuilder

    rng = random.Random(seed)
    b = GraphBuilder(f"cat{seed}")
    tensors = [b.input("x", (rng.randint(1, 4), 4, 4))]
    for i in range(rng.randint(2, 10)):
        if len(tensors) >= 2 and rng.random() < 0.35:
            k = rng.randint(2, min(3, len(tensors)))
            srcs = rng.sample(tensors, k)
            tensors.append(b.concat(srcs, name=f"cat{i}"))
        else:
            src = rng.choice(tensors)
            tensors.append(
                b.conv2d(src, rng.randint(1, 4), kernel=1, name=f"c{i}")
            )
    return b.build()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_mark_concat_views_idempotent(seed):
    g1 = mark_concat_views(_random_concat_graph(seed))
    g2 = mark_concat_views(g1)
    assert g1 == g2


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_mark_concat_views_preserves_structure(seed):
    g0 = _random_concat_graph(seed)
    g1 = mark_concat_views(g0)
    g1.validate()
    assert g1.node_names == g0.node_names
    assert g1.edges() == g0.edges()
    for node in g0:
        assert g1.node(node.name).output == node.output


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_view_marking_keeps_schedules_valid(seed):
    """Any topological order of the original graph is still valid and
    simulable on the view-marked graph (same nodes and edges)."""
    from repro.scheduler.memory import simulate_schedule
    from repro.scheduler.topological import random_topological

    g0 = _random_concat_graph(seed)
    g1 = mark_concat_views(g0)
    sched = random_topological(g0, random.Random(seed))
    trace = simulate_schedule(g1, sched)
    assert trace.peak_bytes > 0


class TestModelDeterminism:
    def test_suite_factories_are_pure(self):
        from repro.models.suite import suite_cells

        for spec in suite_cells():
            assert spec.factory() == spec.factory()

    def test_random_dag_graph_deterministic(self):
        assert random_dag_graph(10, 7).__eq__(random_dag_graph(10, 7))


class TestMemsimGranularityModes:
    def test_whole_tensor_mode_bypasses_large_tensors(self, chain_graph):
        from repro.memsim.hierarchy import offchip_traffic
        from repro.scheduler.topological import kahn_schedule

        sched = kahn_schedule(chain_graph)
        report = offchip_traffic(
            chain_graph, sched, capacity_bytes=128, tile_bytes=0
        )
        assert report.bypass_bytes > 0

    def test_tiled_mode_has_no_bypass_when_tiles_fit(self, chain_graph):
        from repro.memsim.hierarchy import offchip_traffic
        from repro.scheduler.topological import kahn_schedule

        sched = kahn_schedule(chain_graph)
        report = offchip_traffic(
            chain_graph, sched, capacity_bytes=4096, tile_bytes=1024
        )
        assert report.bypass_bytes == 0


class TestExperimentSubsets:
    def test_fig13_runs_on_subset(self):
        from repro.experiments import fig13_time

        rows = fig13_time.run(keys=["swiftnet-c"])
        assert len(rows) == 1 and rows[0].key == "swiftnet-c"

    def test_fig11_rewrite_variant(self):
        from repro.experiments import fig11_offchip

        cells = fig11_offchip.run(keys=["swiftnet-c"], rewrite=True)
        assert len(cells) == 1
