"""Buffer lifetime extraction: schedule -> allocation intervals.

Bridges the scheduler's buffer model and the offset allocators: given a
concrete schedule, every buffer gets a half-open step interval
``[start, end)`` during which it must hold memory. Graph outputs extend
to the end of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import bits
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["BufferLifetime", "compute_lifetimes"]


@dataclass(frozen=True)
class BufferLifetime:
    """One buffer's demand on the arena."""

    buffer_id: int
    size: int
    #: step at which the buffer's first producer executes
    start: int
    #: exclusive step bound: the step *after* the last required node
    end: int
    #: representative node names (producers), for diagnostics
    producers: tuple[str, ...]

    @property
    def steps(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "BufferLifetime") -> bool:
        """Temporal overlap — both live during some step."""
        return self.start < other.end and other.start < self.end


def compute_lifetimes(
    graph: Graph,
    schedule: Schedule,
    model: BufferModel | None = None,
) -> list[BufferLifetime]:
    """Lifetimes of all buffers under ``schedule``, ordered by start."""
    model = model or BufferModel.of(graph)
    idx = model.index
    pos = schedule.positions()
    n = len(schedule)

    out: list[BufferLifetime] = []
    for b in range(model.n_buffers):
        member_steps = [pos[idx.order[i]] for i in bits(model.buf_members[b])]
        start = min(member_steps)
        if model.buf_persistent[b]:
            end = n
        else:
            end = max(pos[idx.order[i]] for i in bits(model.buf_required[b])) + 1
        out.append(
            BufferLifetime(
                buffer_id=b,
                size=model.buf_size[b],
                start=start,
                end=end,
                producers=tuple(
                    idx.order[i] for i in bits(model.buf_members[b])
                ),
            )
        )
    out.sort(key=lambda lt: (lt.start, -lt.size, lt.buffer_id))
    return out
