"""Spill planning: determinism, floors, serialization, policy registry."""

import pytest

from repro.allocator.arena import plan_allocation
from repro.allocator.spill import (
    SpillPlan,
    buffer_access_trace,
    min_capacity_bytes,
    plan_spill,
    step_touches,
)
from repro.exceptions import SpillError
from repro.models.suite import get_cell
from repro.scheduler.memory import BufferModel
from repro.scheduler.registry import run_strategy


@pytest.fixture(scope="module")
def compiled_cell():
    out = run_strategy("greedy", get_cell("randwire-c10-b").factory())
    graph, schedule = out.scheduled_graph, out.schedule
    plan = plan_allocation(graph, schedule)
    return graph, schedule, plan, BufferModel.of(graph)


class TestPlanSpill:
    def test_trivial_at_full_capacity(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(graph, schedule, plan, plan.arena_bytes)
        assert sp.is_trivial
        assert sp.resident_bytes == plan.arena_bytes
        assert sp.spill_bytes == 0
        assert sp.resident_offsets == plan.offsets

    def test_constrained_capacity_spills(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        cap = int(plan.arena_bytes * 0.75)
        sp = plan_spill(graph, schedule, plan, cap)
        assert not sp.is_trivial
        assert sp.resident_bytes <= cap
        model = BufferModel.of(graph)
        assert sp.spill_bytes == sum(
            model.buf_size[b] for b in sp.spilled
        )
        # every spilled buffer has a home and at least one window
        for b in sp.spilled:
            assert b in sp.home_offsets
            assert sp.windows[b]

    def test_deterministic(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        cap = int(plan.arena_bytes * 0.6)
        assert plan_spill(graph, schedule, plan, cap) == plan_spill(
            graph, schedule, plan, cap
        )

    def test_below_floor_raises(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        floor = min_capacity_bytes(graph, schedule, model)
        assert 0 < floor <= plan.arena_bytes
        with pytest.raises(SpillError, match="working set"):
            plan_spill(graph, schedule, plan, floor - 8)

    def test_at_floor_succeeds(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        floor = min_capacity_bytes(graph, schedule, model)
        sp = plan_spill(graph, schedule, plan, floor)
        assert sp.resident_bytes <= floor

    def test_nonpositive_capacity_raises(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        with pytest.raises(SpillError, match="positive"):
            plan_spill(graph, schedule, plan, 0)

    @pytest.mark.parametrize("policy", ["belady", "lru", "fifo"])
    def test_policy_registry_shared_with_memsim(self, compiled_cell, policy):
        """Every fig11 simulator policy also drives spill planning."""
        graph, schedule, plan, _ = compiled_cell
        cap = int(plan.arena_bytes * 0.7)
        sp = plan_spill(graph, schedule, plan, cap, policy=policy)
        assert sp.policy == policy
        assert sp.resident_bytes <= cap

    def test_unknown_policy_raises(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        with pytest.raises(ValueError, match="unknown replacement policy"):
            plan_spill(
                graph, schedule, plan, plan.arena_bytes // 2, policy="magic"
            )

    def test_windows_cover_every_touch(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        cap = int(plan.arena_bytes * 0.6)
        sp = plan_spill(graph, schedule, plan, cap)
        touch = step_touches(graph, schedule, model)
        for s, bufs in enumerate(touch):
            for b in bufs:
                if b in sp.spilled:
                    w = sp.window_at(b, s)
                    assert w.start <= s < w.end


class TestTiledPlan:
    """Tile-granularity staging: the floor drops to the largest tile
    working set and plans exist below the whole-buffer floor."""

    TILE = 8192

    def test_tiled_floor_at_most_whole_floor(self, compiled_cell):
        graph, schedule, _, model = compiled_cell
        floor = min_capacity_bytes(graph, schedule, model)
        tile_floor = min_capacity_bytes(
            graph, schedule, model, tile_bytes=self.TILE
        )
        assert 0 < tile_floor <= floor

    def test_tiled_floor_strictly_below_for_large_buffers(self):
        out = run_strategy("greedy", get_cell("randwire-c100-b").factory())
        graph, schedule = out.scheduled_graph, out.schedule
        floor = min_capacity_bytes(graph, schedule)
        tile_floor = min_capacity_bytes(graph, schedule, tile_bytes=self.TILE)
        assert tile_floor < floor

    def test_plans_below_whole_buffer_floor(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        floor = min_capacity_bytes(graph, schedule, model)
        tile_floor = min_capacity_bytes(
            graph, schedule, model, tile_bytes=self.TILE
        )
        cap = max(tile_floor, min(floor - 1, tile_floor * 2))
        if cap >= floor:
            pytest.skip("cell has no tile headroom below the whole floor")
        with pytest.raises(SpillError):
            plan_spill(graph, schedule, plan, cap)
        sp = plan_spill(graph, schedule, plan, cap, tile_bytes=self.TILE)
        assert sp.tile_bytes == self.TILE
        assert not sp.is_trivial
        assert sp.resident_bytes <= cap

    def test_tiled_plan_deterministic(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        cap = int(plan.arena_bytes * 0.6)
        assert plan_spill(
            graph, schedule, plan, cap, tile_bytes=self.TILE
        ) == plan_spill(graph, schedule, plan, cap, tile_bytes=self.TILE)

    def test_tile_zero_means_whole_buffer(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        cap = int(plan.arena_bytes * 0.7)
        assert plan_spill(
            graph, schedule, plan, cap, tile_bytes=0
        ) == plan_spill(graph, schedule, plan, cap)

    def test_negative_tile_rejected(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        with pytest.raises(Exception, match="tile_bytes"):
            plan_spill(
                graph, schedule, plan, plan.arena_bytes, tile_bytes=-4
            )
        with pytest.raises(Exception, match="tile_bytes"):
            min_capacity_bytes(graph, schedule, model, tile_bytes=-4)

    def test_below_tiled_floor_still_raises(self, compiled_cell):
        graph, schedule, plan, model = compiled_cell
        tile_floor = min_capacity_bytes(
            graph, schedule, model, tile_bytes=self.TILE
        )
        with pytest.raises(SpillError):
            plan_spill(
                graph, schedule, plan, tile_floor - 8, tile_bytes=self.TILE
            )

    def test_doc_round_trip_preserves_tile_bytes(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(
            graph,
            schedule,
            plan,
            int(plan.arena_bytes * 0.6),
            tile_bytes=self.TILE,
        )
        doc = sp.to_doc()
        assert doc["tile_bytes"] == self.TILE
        assert SpillPlan.from_doc(doc) == sp

    def test_untiled_doc_is_legacy_identical(self, compiled_cell):
        """Whole-buffer plans serialize without a tile key at all, so
        artifacts written before tiling existed stay byte-identical."""
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(graph, schedule, plan, int(plan.arena_bytes * 0.7))
        doc = sp.to_doc()
        assert "tile_bytes" not in doc
        assert SpillPlan.from_doc(doc).tile_bytes is None

    def test_nonpositive_doc_tile_rejected(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(
            graph,
            schedule,
            plan,
            int(plan.arena_bytes * 0.6),
            tile_bytes=self.TILE,
        )
        doc = sp.to_doc()
        doc["tile_bytes"] = 0
        with pytest.raises(SpillError, match="tile_bytes"):
            SpillPlan.from_doc(doc)


class TestSpillPlanDoc:
    def test_round_trip(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(graph, schedule, plan, int(plan.arena_bytes * 0.7))
        assert SpillPlan.from_doc(sp.to_doc()) == sp

    def test_trivial_round_trip(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(graph, schedule, plan, plan.arena_bytes)
        assert SpillPlan.from_doc(sp.to_doc()) == sp

    def test_bad_format_rejected(self):
        with pytest.raises(SpillError, match="format"):
            SpillPlan.from_doc({"format": "nope"})

    def test_corrupt_doc_rejected(self, compiled_cell):
        graph, schedule, plan, _ = compiled_cell
        sp = plan_spill(graph, schedule, plan, int(plan.arena_bytes * 0.7))
        doc = sp.to_doc()
        doc["resident_bytes"] = doc["capacity_bytes"] + 1
        with pytest.raises(SpillError, match="exceeds"):
            SpillPlan.from_doc(doc)


class TestBufferTrace:
    def test_first_access_is_a_write(self, compiled_cell):
        """Every buffer's first access is its producing write — the
        invariant the executor's no-fetch-on-first-window rule rests on."""
        graph, schedule, plan, model = compiled_cell
        trace = buffer_access_trace(graph, schedule, model)
        for obj, positions in trace.positions.items():
            assert trace.accesses[positions[0]].kind == "write", obj
