"""Convolution op schemas: shapes, MACs, weights."""

import pytest

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops import infer_shape, op_macs, op_weights


def _chw(c, h, w):
    return TensorSpec((c, h, w))


class TestConv2dShape:
    def test_same_keeps_hw(self):
        out = infer_shape("conv2d", [_chw(3, 8, 8)], {"out_channels": 5, "kernel": 3})
        assert out.shape == (5, 8, 8)

    def test_same_with_stride_ceil(self):
        out = infer_shape(
            "conv2d",
            [_chw(3, 9, 7)],
            {"out_channels": 5, "kernel": 3, "stride": 2},
        )
        assert out.shape == (5, 5, 4)

    def test_valid(self):
        out = infer_shape(
            "conv2d",
            [_chw(3, 8, 8)],
            {"out_channels": 5, "kernel": 3, "padding": "valid"},
        )
        assert out.shape == (5, 6, 6)

    def test_explicit_padding(self):
        out = infer_shape(
            "conv2d",
            [_chw(3, 8, 8)],
            {"out_channels": 5, "kernel": 5, "padding": 2},
        )
        assert out.shape == (5, 8, 8)

    def test_rect_kernel(self):
        out = infer_shape(
            "conv2d",
            [_chw(3, 8, 8)],
            {"out_channels": 5, "kernel": (1, 3), "padding": "valid"},
        )
        assert out.shape == (5, 8, 6)

    def test_collapsed_output_rejected(self):
        with pytest.raises(ShapeError, match="collapsed"):
            infer_shape(
                "conv2d",
                [_chw(3, 2, 2)],
                {"out_channels": 5, "kernel": 5, "padding": "valid"},
            )

    def test_bad_out_channels(self):
        with pytest.raises(ShapeError):
            infer_shape("conv2d", [_chw(3, 8, 8)], {"out_channels": 0})

    def test_requires_chw(self):
        with pytest.raises(ShapeError):
            infer_shape("conv2d", [TensorSpec((8,))], {"out_channels": 5})

    def test_dtype_propagated(self):
        out = infer_shape(
            "conv2d",
            [TensorSpec((3, 8, 8), "int8")],
            {"out_channels": 5, "kernel": 1},
        )
        assert out.dtype.value == "int8"


class TestConv2dCosts:
    def test_macs(self):
        inp, attrs = _chw(3, 8, 8), {"out_channels": 5, "kernel": 3}
        out = infer_shape("conv2d", [inp], attrs)
        assert op_macs("conv2d", [inp], out, attrs) == 5 * 8 * 8 * 3 * 3 * 3

    def test_weights_with_bias(self):
        inp, attrs = _chw(3, 8, 8), {"out_channels": 5, "kernel": 3}
        out = infer_shape("conv2d", [inp], attrs)
        assert op_weights("conv2d", [inp], out, attrs) == 5 * 3 * 9 + 5

    def test_weights_no_bias(self):
        inp = _chw(3, 8, 8)
        attrs = {"out_channels": 5, "kernel": 3, "use_bias": False}
        out = infer_shape("conv2d", [inp], attrs)
        assert op_weights("conv2d", [inp], out, attrs) == 5 * 3 * 9


class TestDepthwise:
    def test_shape_multiplier(self):
        out = infer_shape(
            "depthwise_conv2d", [_chw(4, 8, 8)], {"kernel": 3, "multiplier": 3}
        )
        assert out.shape == (12, 8, 8)

    def test_bad_multiplier(self):
        with pytest.raises(ShapeError):
            infer_shape(
                "depthwise_conv2d", [_chw(4, 8, 8)], {"kernel": 3, "multiplier": 0}
            )

    def test_macs(self):
        inp, attrs = _chw(4, 8, 8), {"kernel": 3}
        out = infer_shape("depthwise_conv2d", [inp], attrs)
        assert op_macs("depthwise_conv2d", [inp], out, attrs) == 4 * 8 * 8 * 9

    def test_weights(self):
        inp, attrs = _chw(4, 8, 8), {"kernel": 3, "multiplier": 2}
        out = infer_shape("depthwise_conv2d", [inp], attrs)
        assert op_weights("depthwise_conv2d", [inp], out, attrs) == 8 * 9 + 8


class TestPartialConv:
    def test_accumulating_needs_two_inputs(self):
        with pytest.raises(ShapeError):
            infer_shape(
                "partial_conv2d",
                [_chw(3, 8, 8)],
                {"out_channels": 5, "kernel": 3, "accumulate": True},
            )

    def test_accumulator_shape_must_match(self):
        with pytest.raises(ShapeError, match="accumulator"):
            infer_shape(
                "partial_conv2d",
                [_chw(3, 8, 8), _chw(4, 8, 8)],
                {"out_channels": 5, "kernel": 3, "accumulate": True},
            )

    def test_accumulating_ok(self):
        out = infer_shape(
            "partial_conv2d",
            [_chw(3, 8, 8), _chw(5, 8, 8)],
            {"out_channels": 5, "kernel": 3, "accumulate": True},
        )
        assert out.shape == (5, 8, 8)

    def test_non_accumulating_single_input(self):
        with pytest.raises(ShapeError):
            infer_shape(
                "partial_conv2d",
                [_chw(3, 8, 8), _chw(5, 8, 8)],
                {"out_channels": 5, "kernel": 3},
            )

    def test_bias_counted_only_for_owner(self):
        inp = _chw(3, 8, 8)
        base = {"out_channels": 5, "kernel": 3}
        out = infer_shape("partial_conv2d", [inp], base)
        owner = dict(base, owns_bias=True)
        other = dict(base, owns_bias=False)
        w_owner = op_weights("partial_conv2d", [inp], out, owner)
        w_other = op_weights("partial_conv2d", [inp], out, other)
        assert w_owner - w_other == 5


class TestFusedSepConv:
    def test_shape(self):
        out = infer_shape(
            "fused_sep_conv3x3", [_chw(4, 8, 8)], {"out_channels": 6, "kernel": 3}
        )
        assert out.shape == (6, 8, 8)

    def test_macs_sum_of_parts(self):
        inp = _chw(4, 8, 8)
        attrs = {"out_channels": 6, "kernel": 3}
        out = infer_shape("fused_sep_conv3x3", [inp], attrs)
        dw = 4 * 8 * 8 * 9
        pw = 6 * 8 * 8 * 4
        assert op_macs("fused_sep_conv3x3", [inp], out, attrs) == dw + pw

    def test_default_out_channels_is_input(self):
        out = infer_shape("fused_sep_conv3x3", [_chw(4, 8, 8)], {"kernel": 3})
        assert out.shape == (4, 8, 8)
