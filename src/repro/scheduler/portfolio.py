"""Parallel portfolio compilation over batches of graphs.

The paper's pipeline compiles one graph at a time; production compiles
*fleets* of irregularly wired networks against concrete devices. This
module scales that out along two axes:

* **portfolio racing** — every graph is compiled by several registered
  strategies (:mod:`repro.scheduler.registry`), from the free Kahn
  baseline up to full SERENITY. When a :class:`DeviceSpec` budget is
  given, the race short-circuits: as soon as any strategy's
  allocator-level peak fits the device (the same criterion as
  :func:`~repro.scheduler.device.fit_to_device`), the remaining —
  strictly more expensive — strategies for that graph are cancelled.
* **process parallelism** — strategy runs fan out over a
  ``concurrent.futures.ProcessPoolExecutor``; only graph documents and
  strategy *names* cross the process boundary, so workers stay cheap to
  feed and results are plain dicts.

Every outcome is recorded in a persistent
:class:`~repro.scheduler.cache.ScheduleCache` keyed by the canonical
:func:`~repro.graph.serialization.graph_signature`, so a warm re-run of
the whole model suite reduces to directory lookups.
"""

from __future__ import annotations

import time
from collections import defaultdict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.graph.graph import Graph
from repro.graph.serialization import (
    canonical_node_keys,
    graph_from_dict,
    graph_signature,
    graph_to_dict,
)
from repro.scheduler.cache import CacheEntry, ScheduleCache
from repro.scheduler.device import DeviceSpec
from repro.scheduler.registry import (
    StrategyOutcome,
    StrategySpec,
    default_portfolio,
    get_strategy,
    run_strategy,
)
from repro.scheduler.schedule import Schedule

__all__ = [
    "PortfolioResult",
    "BatchReport",
    "PortfolioCompiler",
    "schedule_from_entry",
    "outcome_from_cache",
    "store_outcome",
]


def schedule_from_entry(entry: CacheEntry, target: Graph) -> Schedule | None:
    """Replay a cached order onto a concrete graph, defensively.

    The stored order may use another instance's node names (cache keys
    are rename-invariant); in that case it is translated through the
    canonical node keys. Either way the schedule is validated against
    ``target`` — a stale, colliding, or hand-edited entry yields
    ``None`` (recompute), never an invalid schedule.
    """
    from repro.exceptions import InvalidScheduleError

    order = entry.order
    if set(order) != set(target.node_names):
        if entry.canon_order is None or len(entry.canon_order) != len(order):
            return None
        key_to_name = {k: n for n, k in canonical_node_keys(target).items()}
        try:
            order = tuple(key_to_name[k] for k in entry.canon_order)
        except KeyError:
            return None
    schedule = Schedule(order, target.name)
    try:
        schedule.validate(target)
    except InvalidScheduleError:
        return None
    return schedule


def outcome_from_cache(
    cache: ScheduleCache,
    spec: StrategySpec,
    signature: str,
    graph: Graph,
    rewritten: Callable[[], Graph],
) -> StrategyOutcome | None:
    """Serve one (graph, strategy) pair from the persistent cache.

    Peaks are recomputed by replaying the served schedule rather than
    trusted from the entry, so a bad entry can at worst cause a
    recompute, never a wrong number. Shared by the portfolio compiler
    and the :class:`~repro.compiler.pipeline.CompilationPipeline`.
    """
    from repro.allocator.arena import arena_peak_bytes
    from repro.scheduler.memory import simulate_schedule

    entry = cache.get(signature, spec.cache_key)
    if entry is None:
        return None
    target = rewritten() if spec.rewrites else graph
    schedule = schedule_from_entry(entry, target)
    if schedule is None:
        return None
    return StrategyOutcome(
        strategy=spec.name,
        schedule=schedule,
        scheduled_graph=target,
        peak_bytes=simulate_schedule(target, schedule, validate=False).peak_bytes,
        arena_bytes=arena_peak_bytes(target, schedule),
        time_s=float(entry.meta.get("time_s", 0.0)),
        cached=True,
    )


def store_outcome(
    cache: ScheduleCache,
    signature: str,
    spec: StrategySpec,
    out: StrategyOutcome,
) -> None:
    """Record a freshly-compiled outcome under the strategy's cache key."""
    keys = canonical_node_keys(out.scheduled_graph)
    cache.put(
        CacheEntry(
            signature=signature,
            strategy_key=spec.cache_key,
            graph_name=out.scheduled_graph.name,
            order=out.schedule.order,
            canon_order=tuple(keys[n] for n in out.schedule.order),
            peak_bytes=out.peak_bytes,
            arena_bytes=out.arena_bytes,
            meta={"time_s": out.time_s, "strategy": spec.name},
        )
    )


@dataclass(frozen=True)
class PortfolioResult:
    """All strategy outcomes for one graph, plus the race verdict."""

    graph_name: str
    signature: str
    outcomes: tuple[StrategyOutcome, ...]
    #: strategies skipped or cancelled by the early budget exit
    cancelled: tuple[str, ...]
    #: strategies recomputed in-process after their worker pool broke
    fallbacks: tuple[str, ...] = ()
    device: DeviceSpec | None = None
    #: strategies disqualified by the static plan verifier — a schedule
    #: or plan with error-severity findings can never win the race
    rejected: tuple[str, ...] = ()

    @property
    def winner(self) -> StrategyOutcome:
        """Lowest ideal peak among verified outcomes; ties break on
        arena peak, then on cost."""
        pool = [o for o in self.outcomes if o.strategy not in self.rejected]
        return min(
            pool or self.outcomes,
            key=lambda o: (o.peak_bytes, o.arena_bytes, get_strategy(o.strategy).rank),
        )

    @property
    def cache_hit(self) -> bool:
        """Whether *every* outcome was served from the persistent cache."""
        return all(o.cached for o in self.outcomes)

    @property
    def fits(self) -> bool | None:
        """Budget verdict for the winner (None without a device)."""
        if self.device is None:
            return None
        return self.winner.fits(self.device.sram_bytes)


@dataclass(frozen=True)
class BatchReport:
    """One ``compile_batch`` run over a set of graphs."""

    results: tuple[PortfolioResult, ...]
    strategies: tuple[str, ...]
    workers: int
    wall_time_s: float
    #: per-(graph, strategy) cache accounting for THIS batch
    cache_hits: int
    cache_lookups: int
    device: DeviceSpec | None = None

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    def summary(self) -> str:
        lines = [
            "portfolio compilation report",
            f"  graphs {len(self.results)}, workers {self.workers}, "
            f"strategies: {','.join(self.strategies)}",
        ]
        if self.device is not None:
            lines.append(
                f"  device: {self.device.name} ({self.device.sram_kib:.0f}KB budget)"
            )
        lines.append("")
        header = (
            f"  {'graph':<18s} {'winner':<14s} {'peak KB':>9s} {'arena KB':>9s}"
            f" {'time':>8s}  {'fits':<5s} {'cache':<7s} {'cancelled':<s}"
        )
        lines.append(header)
        for r in self.results:
            w = r.winner
            fits = "-" if r.fits is None else ("yes" if r.fits else "no")
            cache = "hit" if r.cache_hit else (
                "part" if any(o.cached for o in r.outcomes) else "miss"
            )
            cancelled = ",".join(r.cancelled) if r.cancelled else "-"
            lines.append(
                f"  {r.graph_name:<18s} {w.strategy:<14s}"
                f" {w.peak_bytes / 1024:>9.1f} {w.arena_bytes / 1024:>9.1f}"
                f" {w.time_s:>7.2f}s  {fits:<5s} {cache:<7s} {cancelled}"
            )
        lines.append("")
        lines.append(
            f"  wall time {self.wall_time_s:.2f}s; cache hits "
            f"{self.cache_hits}/{self.cache_lookups} "
            f"({100.0 * self.hit_rate:.1f}%)"
        )
        degraded = [
            f"{r.graph_name}:{name}" for r in self.results for name in r.fallbacks
        ]
        if degraded:
            lines.append(
                "  worker pool broke; recomputed in-process: "
                + ", ".join(degraded)
            )
        disqualified = [
            f"{r.graph_name}:{name}" for r in self.results for name in r.rejected
        ]
        if disqualified:
            lines.append(
                "  rejected by plan verification: " + ", ".join(disqualified)
            )
        if self.device is not None:
            n_fit = sum(1 for r in self.results if r.fits)
            lines.append(
                f"  deployable on {self.device.name}: {n_fit}/{len(self.results)}"
            )
        return "\n".join(lines)


def _strategy_task(doc: dict[str, Any], name: str) -> dict[str, Any]:
    """Worker-side strategy run: document in, plain dict out.

    Runs in a ``ProcessPoolExecutor`` worker; the strategy is resolved
    from the worker's own registry, so no callables are pickled.
    """
    graph = graph_from_dict(doc)
    out = run_strategy(name, graph)
    rewrites = get_strategy(name).rewrites
    return {
        "strategy": name,
        "order": list(out.schedule.order),
        "peak_bytes": out.peak_bytes,
        "arena_bytes": out.arena_bytes,
        "time_s": out.time_s,
        "target_doc": graph_to_dict(out.scheduled_graph) if rewrites else None,
    }


class PortfolioCompiler:
    """Race a portfolio of scheduling strategies over a batch of graphs.

    Parameters
    ----------
    strategies:
        Registry names to race (default :func:`default_portfolio`);
        always executed cheapest-first per the registry's cost ranks.
    workers:
        ``<= 1`` runs in-process (deterministic, no executor);
        ``>= 2`` fans strategy runs out over that many worker processes.
    cache:
        A :class:`ScheduleCache`, or ``None`` to compile uncached.
    device:
        Optional budget enabling the early-cancellation race.
    verify:
        When true (default), each graph's would-be winner is screened
        through the static plan verifier before the race verdict:
        its schedule plus a fresh arena plan must analyze clean at
        ``"basic"`` level. A failing strategy is *rejected* (recorded
        on the result) and the next-best outcome races in its place —
        a corrupted or hazardous plan can never be crowned. Raises
        :class:`~repro.exceptions.SchedulingError` when every outcome
        for a graph fails analysis.
    """

    def __init__(
        self,
        strategies: Sequence[str] | None = None,
        *,
        workers: int = 0,
        cache: ScheduleCache | None = None,
        device: DeviceSpec | None = None,
        verify: bool = True,
    ) -> None:
        names = tuple(
            dict.fromkeys(strategies if strategies is not None else default_portfolio())
        )
        specs = sorted(
            (get_strategy(n) for n in names), key=lambda s: (s.rank, s.name)
        )
        self.strategies: tuple[str, ...] = tuple(s.name for s in specs)
        self.workers = workers
        self.cache = cache
        self.device = device
        self.verify = verify

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _cached_outcome(
        self,
        spec: StrategySpec,
        signature: str,
        graph: Graph,
        rewritten: Callable[[], Graph],
    ) -> StrategyOutcome | None:
        if self.cache is None:
            return None
        return outcome_from_cache(self.cache, spec, signature, graph, rewritten)

    def _store(self, signature: str, spec: StrategySpec, out: StrategyOutcome) -> None:
        if self.cache is None:
            return
        store_outcome(self.cache, signature, spec, out)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, graph: Graph) -> PortfolioResult:
        """Portfolio-compile a single graph."""
        return self.compile_batch([graph]).results[0]

    def compile_batch(self, graphs: Sequence[Graph]) -> BatchReport:
        """Compile every graph with every strategy (modulo cache hits and
        budget cancellations) and report the per-graph winners.

        Duplicate graphs in one cold batch are compiled independently
        (the cache only dedupes across *completed* compilations).
        """
        t0 = time.perf_counter()
        graphs = list(graphs)
        budget = self.device.sram_bytes if self.device is not None else None

        signatures = [graph_signature(g) for g in graphs]
        rewritten_memo: dict[int, Graph] = {}

        def rewritten_of(gi: int) -> Graph:
            if gi not in rewritten_memo:
                from repro.rewriting.rewriter import rewrite_graph

                rewritten_memo[gi] = rewrite_graph(graphs[gi]).graph
            return rewritten_memo[gi]

        outcomes: dict[int, dict[str, StrategyOutcome]] = defaultdict(dict)
        cancelled: dict[int, list[str]] = defaultdict(list)
        fallbacks: dict[int, list[str]] = defaultdict(list)
        hits = 0
        lookups = 0

        # Phase 1: serve what we can from the cache, cheapest-first, and
        # plan the remaining runs. A cached outcome that already fits the
        # budget cancels everything more expensive before it is submitted.
        pending: list[tuple[int, str]] = []  # rank-ordered per graph
        for gi, graph in enumerate(graphs):
            satisfied = False
            for name in self.strategies:
                spec = get_strategy(name)
                if satisfied:
                    cancelled[gi].append(name)
                    continue
                if self.cache is not None:
                    lookups += 1
                out = self._cached_outcome(
                    spec, signatures[gi], graph, lambda gi=gi: rewritten_of(gi)
                )
                if out is not None:
                    hits += 1
                    outcomes[gi][name] = out
                    if budget is not None and out.fits(budget):
                        satisfied = True
                else:
                    pending.append((gi, name))

        # Phase 2: run the misses.
        if pending:
            if self.workers <= 1:
                self._run_serial(pending, graphs, signatures, outcomes, cancelled)
            else:
                self._run_parallel(
                    pending, graphs, signatures, outcomes, cancelled, fallbacks
                )

        rejected: dict[int, tuple[str, ...]] = {}
        for gi in range(len(graphs)):
            got = tuple(
                outcomes[gi][n] for n in self.strategies if n in outcomes[gi]
            )
            rejected[gi] = self._screen_winner(graphs[gi].name, got)

        results = tuple(
            PortfolioResult(
                graph_name=graphs[gi].name,
                signature=signatures[gi],
                outcomes=tuple(
                    outcomes[gi][n] for n in self.strategies if n in outcomes[gi]
                ),
                cancelled=tuple(cancelled[gi]),
                fallbacks=tuple(fallbacks[gi]),
                device=self.device,
                rejected=rejected[gi],
            )
            for gi in range(len(graphs))
        )
        return BatchReport(
            results=results,
            strategies=self.strategies,
            workers=self.workers,
            wall_time_s=time.perf_counter() - t0,
            cache_hits=hits,
            cache_lookups=lookups,
            device=self.device,
        )

    # ------------------------------------------------------------------
    def _screen_winner(
        self, graph_name: str, got: tuple[StrategyOutcome, ...]
    ) -> tuple[str, ...]:
        """Disqualify would-be winners whose plans fail static analysis.

        Candidates are tried in race order (the :attr:`winner` key);
        the first whose schedule + fresh arena plan analyzes clean at
        ``"basic"`` level stops the screen, so the common case costs
        one verification per graph. Returns the rejected strategy
        names; raises :class:`~repro.exceptions.SchedulingError` when
        no outcome survives.
        """
        if not self.verify or not got:
            return ()
        from repro.allocator.arena import plan_allocation
        from repro.analysis.verifier import analyze_plan
        from repro.exceptions import AllocationError, SchedulingError

        rejected: list[str] = []
        ordered = sorted(
            got,
            key=lambda o: (o.peak_bytes, o.arena_bytes, get_strategy(o.strategy).rank),
        )
        for out in ordered:
            target = out.scheduled_graph
            try:
                plan = plan_allocation(target, out.schedule)
                report = analyze_plan(
                    target, out.schedule, plan, level="basic"
                )
            except AllocationError:
                rejected.append(out.strategy)
                continue
            if report.ok:
                return tuple(rejected)
            rejected.append(out.strategy)
        raise SchedulingError(
            f"every portfolio outcome for {graph_name!r} failed static "
            f"plan verification: {', '.join(rejected)}"
        )

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: list[tuple[int, str]],
        graphs: list[Graph],
        signatures: list[str],
        outcomes: dict[int, dict[str, StrategyOutcome]],
        cancelled: dict[int, list[str]],
    ) -> None:
        budget = self.device.sram_bytes if self.device is not None else None
        satisfied: set[int] = set()
        for gi, name in pending:  # already rank-ordered within each graph
            if gi in satisfied:
                cancelled[gi].append(name)
                continue
            spec = get_strategy(name)
            out = run_strategy(name, graphs[gi])
            outcomes[gi][name] = out
            self._store(signatures[gi], spec, out)
            if budget is not None and out.fits(budget):
                satisfied.add(gi)

    def _collect(
        self,
        gi: int,
        name: str,
        res: dict[str, Any],
        graphs: list[Graph],
        signatures: list[str],
        outcomes: dict[int, dict[str, StrategyOutcome]],
    ) -> StrategyOutcome:
        """Turn one worker result dict into a stored StrategyOutcome."""
        target = (
            graph_from_dict(res["target_doc"])
            if res["target_doc"] is not None
            else graphs[gi]
        )
        out = StrategyOutcome(
            strategy=name,
            schedule=Schedule(tuple(res["order"]), target.name),
            scheduled_graph=target,
            peak_bytes=res["peak_bytes"],
            arena_bytes=res["arena_bytes"],
            time_s=res["time_s"],
        )
        outcomes[gi][name] = out
        self._store(signatures[gi], get_strategy(name), out)
        return out

    def _run_parallel(
        self,
        pending: list[tuple[int, str]],
        graphs: list[Graph],
        signatures: list[str],
        outcomes: dict[int, dict[str, StrategyOutcome]],
        cancelled: dict[int, list[str]],
        fallbacks: dict[int, list[str]],
    ) -> None:
        try:
            self._run_pool(pending, graphs, signatures, outcomes, cancelled)
        except BrokenProcessPool:
            # A worker died (OOM-killed, segfaulted, ...) and took the
            # whole pool with it; every in-flight result is lost. Rather
            # than aborting the batch, degrade the unfinished jobs to the
            # in-process sequential path and record the downgrade.
            remaining = [
                (gi, name)
                for gi, name in pending
                if name not in outcomes[gi] and name not in cancelled[gi]
            ]
            self._run_serial(remaining, graphs, signatures, outcomes, cancelled)
            for gi, name in remaining:
                if name in outcomes[gi]:
                    fallbacks[gi].append(name)

    def _run_pool(
        self,
        pending: list[tuple[int, str]],
        graphs: list[Graph],
        signatures: list[str],
        outcomes: dict[int, dict[str, StrategyOutcome]],
        cancelled: dict[int, list[str]],
    ) -> None:
        budget = self.device.sram_bytes if self.device is not None else None
        docs = {gi: graph_to_dict(graphs[gi]) for gi, _ in pending}

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            if budget is None:
                # no race to win: submit everything, cheapest-first
                rank_of = {n: get_strategy(n).rank for n in self.strategies}
                future_of = {
                    pool.submit(_strategy_task, docs[gi], name): (gi, name)
                    for gi, name in sorted(
                        pending, key=lambda job: (rank_of[job[1]], job[0])
                    )
                }
                for fut, (gi, name) in future_of.items():
                    self._collect(gi, name, fut.result(), graphs, signatures, outcomes)
                return

            # Budget race. ProcessPoolExecutor cannot interrupt a task
            # that already started, so a bulk submit would let expensive
            # strategies begin before a cheap fit could cancel them. We
            # instead chain each graph's strategies strictly
            # cheapest-first (matching the serial path's semantics) and
            # keep the pool busy by racing the *graphs* in parallel; a
            # fit skips the graph's remaining, never-started strategies.
            queues: dict[int, list[str]] = defaultdict(list)
            for gi, name in pending:  # already rank-ordered per graph
                queues[gi].append(name)
            in_flight: dict[Any, tuple[int, str]] = {
                pool.submit(_strategy_task, docs[gi], queue[0]): (gi, queue[0])
                for gi, queue in queues.items()
            }
            for gi in queues:
                queues[gi].pop(0)

            while in_flight:
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for fut in done:
                    gi, name = in_flight.pop(fut)
                    out = self._collect(
                        gi, name, fut.result(), graphs, signatures, outcomes
                    )
                    if out.fits(budget):
                        cancelled[gi].extend(queues[gi])
                        queues[gi].clear()
                    elif queues[gi]:
                        nxt = queues[gi].pop(0)
                        in_flight[
                            pool.submit(_strategy_task, docs[gi], nxt)
                        ] = (gi, nxt)
