"""Schedulers: the DP core, its accelerators, and baselines."""

from repro.scheduler.annealing import AnnealingResult, anneal_schedule

from repro.scheduler.brute import BruteForceResult, brute_force_schedule
from repro.scheduler.cache import CacheEntry, CacheStats, ScheduleCache
from repro.scheduler.device import (
    AMBIQ_APOLLO3,
    KNOWN_DEVICES,
    SPARKFUN_EDGE,
    STM32F746,
    DeviceFitReport,
    DeviceSpec,
    fit_to_device,
)
from repro.scheduler.budget import (
    AdaptiveSoftBudgetScheduler,
    BudgetProbe,
    BudgetSearchResult,
)
from repro.scheduler.divide import (
    DivideAndConquerResult,
    DivideAndConquerScheduler,
    SegmentOutcome,
)
from repro.scheduler.dp import DPResult, DPScheduler, dp_schedule
from repro.scheduler.greedy import greedy_schedule
from repro.scheduler.memory import (
    BufferModel,
    MemoryTrace,
    peak_of,
    simulate_schedule,
)
from repro.scheduler.portfolio import (
    BatchReport,
    PortfolioCompiler,
    PortfolioResult,
    schedule_from_entry,
)
from repro.scheduler.registry import (
    StrategyOutcome,
    StrategySpec,
    default_portfolio,
    get_strategy,
    register_strategy,
    run_strategy,
    strategy_names,
)
from repro.scheduler.schedule import Schedule
from repro.scheduler.serenity import (
    Serenity,
    SerenityConfig,
    SerenityReport,
    schedule_graph,
)
from repro.scheduler.topological import (
    count_topological_orders,
    dfs_schedule,
    iter_topological_orders,
    kahn_schedule,
    random_topological,
)

__all__ = [
    "Schedule",
    "BufferModel",
    "MemoryTrace",
    "simulate_schedule",
    "peak_of",
    "kahn_schedule",
    "dfs_schedule",
    "random_topological",
    "iter_topological_orders",
    "count_topological_orders",
    "greedy_schedule",
    "brute_force_schedule",
    "BruteForceResult",
    "DPScheduler",
    "DPResult",
    "dp_schedule",
    "AdaptiveSoftBudgetScheduler",
    "BudgetProbe",
    "BudgetSearchResult",
    "DivideAndConquerScheduler",
    "DivideAndConquerResult",
    "SegmentOutcome",
    "Serenity",
    "SerenityConfig",
    "SerenityReport",
    "schedule_graph",
    "anneal_schedule",
    "AnnealingResult",
    "DeviceSpec",
    "DeviceFitReport",
    "fit_to_device",
    "SPARKFUN_EDGE",
    "STM32F746",
    "AMBIQ_APOLLO3",
    "KNOWN_DEVICES",
    "ScheduleCache",
    "CacheEntry",
    "CacheStats",
    "StrategySpec",
    "StrategyOutcome",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "default_portfolio",
    "run_strategy",
    "PortfolioCompiler",
    "PortfolioResult",
    "BatchReport",
    "schedule_from_entry",
]
