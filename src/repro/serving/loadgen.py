"""Synthetic load driver for the serving runtime.

One function, :func:`run_load`, drives N closed-loop clients against a
:class:`~repro.serving.scheduler.RequestScheduler` and reports
throughput, latency percentiles and the pool's arena-reuse hit rate.
It is shared by the ``serve`` / ``bench-serve`` CLI subcommands and by
``benchmarks/bench_serving.py``, so the number the benchmark asserts on
is the number the CLI prints.

With ``verify=True`` every response is compared **bitwise** against the
reference :class:`~repro.runtime.executor.Executor` on the same weights
and feeds — the serving layer inherits the plan executor's equivalence
contract, per request, under full concurrency, *including* requests
that were served as one sample of a stacked batched run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ServingError
from repro.memsim import OffchipLink
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.scheduler.device import DeviceSpec
from repro.serving.faults import FaultPlan
from repro.serving.pool import ArenaPool, PoolStats
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import RequestScheduler
from repro.serving.shard import ShardedScheduler, ShardStats

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one synthetic serving run."""

    requests: int
    clients: int
    workers: int
    max_batch: int
    reuse: bool
    models: tuple[str, ...]
    wall_s: float
    p50_ms: float
    p99_ms: float
    mean_batch: float
    pool: PoolStats
    errors: int
    #: ``None`` when verification was off; otherwise all-bitwise-equal
    verified: bool | None
    mismatches: tuple[int, ...] = ()
    #: batch capacity of the pooled executors (1 = solo runs only)
    batch_size: int = 1
    #: whether the pool was warmed before the measured window
    preloaded: bool = False
    #: over-budget admission policy the pool ran with
    spill: str = "never"
    #: total simulated off-chip bytes moved by spilled executor runs
    spill_bytes: int = 0
    #: whether spilled executors ran with the background prefetch engine
    prefetch: bool = True
    #: staging tile size spilled executors streamed at (``None`` =
    #: whole-buffer staging)
    tile_bytes: int | None = None
    #: transfer seconds runs stalled on vs hid behind compute (sums
    #: over every executor run in the window)
    spill_stall_s: float = 0.0
    spill_hidden_s: float = 0.0
    #: worker processes the run was sharded across (1 = in-process
    #: thread scheduler, no IPC)
    shards: int = 1
    #: per-shard snapshots when ``shards > 1`` (sticky routing, ring
    #: occupancy, child-side queue depth and spill accounting)
    shard_stats: tuple[ShardStats, ...] = ()
    #: self-healing counters (sharded runs): shard respawns, request
    #: retries, deadline expiries, load-shed rejections
    restarts: int = 0
    retries: int = 0
    expired: int = 0
    shed: int = 0
    #: shards permanently failed by the crash-loop circuit breaker
    breaker_trips: int = 0

    @property
    def rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def samples_per_s(self) -> float:
        """Samples served per second (every request carries one sample,
        so this equals :attr:`rps`; stacked runs serve several samples
        per executor dispatch)."""
        return self.rps

    @property
    def hidden_fraction(self) -> float:
        """Share of off-chip transfer time hidden behind compute."""
        busy = self.spill_stall_s + self.spill_hidden_s
        return self.spill_hidden_s / busy if busy > 0 else 0.0

    def summary(self) -> str:
        mode = "arena reuse" if self.reuse else "fresh alloc per request"
        if self.batch_size > 1:
            mode += f", batch {self.batch_size}"
        if self.preloaded:
            mode += ", preloaded"
        lines = [
            f"serving run: {self.requests} requests, {self.clients} clients, "
            f"{self.workers} workers, max_batch {self.max_batch} ({mode})",
            f"  models resident       : {', '.join(self.models)}",
            f"  throughput            : {self.rps:9.1f} req/s "
            f"({self.wall_s:.2f}s wall)",
            f"  latency p50 / p99     : {self.p50_ms:7.2f} / {self.p99_ms:.2f} ms "
            f"({self.errors} errors, included)",
            f"  arena reuse hit rate  : {100.0 * self.pool.hit_rate:7.1f}% "
            f"({self.pool.hits} hits, {self.pool.misses} fresh, "
            f"{self.pool.preloads} preloaded, {self.pool.evictions} evicted)",
            f"  mean stacked batch    : {self.mean_batch:7.2f}",
            f"  resident arena bytes  : {self.pool.resident_bytes / 1024:7.1f}KB",
        ]
        if self.shards > 1:
            lines.append(
                f"  shards                : {self.shards} processes, "
                "sticky rendezvous routing"
            )
            for s in self.shard_stats:
                rps = s.requests / self.wall_s if self.wall_s else 0.0
                state = "alive" if s.alive else (
                    "BREAKER-OPEN" if s.failed else "DEAD"
                )
                if s.incarnation:
                    state += f", incarnation {s.incarnation}"
                lines.append(
                    f"    shard {s.shard} ({state}): {rps:7.1f} req/s | "
                    f"models {', '.join(s.models) or '-'} | "
                    f"queue {s.queue_depth} | "
                    f"ring peak {s.req_ring_peak}/{s.req_slots} req, "
                    f"{s.resp_ring_peak}/{s.resp_slots} resp | "
                    f"stall/hidden {s.spill_stall_s * 1e3:.1f}/"
                    f"{s.spill_hidden_s * 1e3:.1f} ms"
                )
        if self.restarts or self.retries or self.expired or self.shed:
            lines.append(
                f"  self-healing          : {self.restarts} restarts, "
                f"{self.retries} retries, {self.expired} deadline-expired, "
                f"{self.shed} shed"
                + (
                    f", {self.breaker_trips} breaker trip(s)"
                    if self.breaker_trips
                    else ""
                )
            )
        if self.spill != "never" or self.spill_bytes:
            lines.append(
                f"  off-chip spill traffic: {self.spill_bytes / 1024:7.1f}KB "
                f"(spill={self.spill}, {self.pool.spilled_builds} spilled "
                f"executors, {self.pool.prefetch_builds} prefetching)"
            )
            lines.append(
                f"  transfer stall/hidden : {self.spill_stall_s * 1e3:7.1f} / "
                f"{self.spill_hidden_s * 1e3:.1f} ms "
                f"({100.0 * self.hidden_fraction:.0f}% hidden)"
            )
        if self.errors:
            lines.append(f"  ERRORS                : {self.errors}")
        if self.verified is not None:
            verdict = (
                "bitwise-equal to reference executor on every request"
                if self.verified
                else f"DIVERGED on requests {list(self.mismatches)}"
            )
            lines.append(f"  verification          : {verdict}")
        return "\n".join(lines)


def run_load(
    registry: ModelRegistry,
    *,
    requests: int = 64,
    clients: int = 4,
    workers: int = 4,
    max_batch: int = 1,
    batch_size: int | None = None,
    budget: DeviceSpec | int | None = None,
    seed: int = 0,
    reuse: bool = True,
    scrub: str = "never",
    verify: bool = False,
    preload: bool = False,
    spill: str = "never",
    spill_policy: str = "belady",
    tile_bytes: int | None = None,
    prefetch: bool = True,
    link: OffchipLink | None = None,
    shards: int = 1,
    deadline_s: float | None = None,
    retries: int = 0,
    max_inflight: int | None = None,
    supervise: bool = True,
    faults: FaultPlan | None = None,
) -> LoadReport:
    """Drive ``requests`` inferences from ``clients`` concurrent threads.

    Request *i* targets model ``names[i % len(names)]`` with feeds drawn
    deterministically from ``seed + i``, so a pooled and a baseline run
    serve byte-identical workloads. Each client is closed-loop: it
    submits, waits for the response, optionally verifies it against the
    reference executor (outside the latency window), then issues its
    next request.

    ``batch_size`` sets the pooled executors' batch capacity (default:
    ``max_batch``, so a fully drained micro-batch runs as one stacked
    kernel pass). ``preload=True`` warms the pool — one executor per
    model — before the clients start, so the measured window contains
    no cold-start builds. ``spill`` picks what happens to arenas the
    budget cannot hold: refuse (``never``), degrade to planned
    off-chip staging with measured traffic (``auto``), or spill-plan
    every executor (``always``); outputs stay bitwise-verified either
    way. ``prefetch=False`` forces spilled executors' transfers inline
    (the stall-everything baseline); ``link`` attaches a modeled
    off-chip bandwidth/latency to every fetch and writeback.

    ``shards > 1`` swaps the in-process thread scheduler for a
    :class:`~repro.serving.shard.ShardedScheduler`: that many worker
    *processes*, each with its own pool and scheduler (every knob above
    passes through), models sticky-routed by rendezvous hash, tensors
    crossing over zero-copy shared-memory rings. The client loop,
    verification and reporting are identical — only the server behind
    ``submit()`` changes.

    The robustness knobs pass through to whichever scheduler runs:
    ``deadline_s`` bounds every request end to end (expiries count as
    errors and in :attr:`LoadReport.expired`); sharded runs also honor
    ``retries`` (retry-with-reroute on shard death), ``max_inflight``
    (per-shard cap, excess shed as
    :class:`~repro.exceptions.OverloadedError`), ``supervise`` (dead
    and wedged shards respawn), and ``faults`` — a deterministic
    :class:`~repro.serving.faults.FaultPlan` injected into the workers,
    which is how the chaos benchmark proves the self-healing counters
    it reports.
    """
    names = registry.names()
    if not names:
        raise ValueError("registry has no models to serve")
    if shards < 1:
        raise ServingError(f"shards must be >= 1, got {shards}")
    if faults is not None and shards < 2:
        raise ServingError(
            "fault injection needs shards >= 2: a chaos run must keep "
            "serving from surviving shards while one is down"
        )
    if batch_size is None:
        batch_size = max_batch if reuse else 1
    pool: ArenaPool | None = None
    if shards > 1:
        # raises ServingError on reuse=False: sharding exists to keep
        # per-shard arenas warm, the no-reuse baseline is single-process
        server_ctx: ShardedScheduler | RequestScheduler = ShardedScheduler(
            registry,
            shards=shards,
            workers=workers,
            max_batch=max_batch,
            batch_size=batch_size,
            budget=budget,
            seed=seed,
            scrub=scrub,
            reuse=reuse,
            spill=spill,
            spill_policy=spill_policy,
            tile_bytes=tile_bytes,
            prefetch=prefetch,
            link=link,
            preload=preload,
            ring_slots=max(16, 2 * -(-clients // shards)),
            deadline_s=deadline_s,
            retries=retries,
            max_inflight=max_inflight,
            supervise=supervise,
            faults=faults,
        )
    else:
        pool = ArenaPool(
            registry,
            budget,
            seed=seed,
            scrub=scrub,
            reuse=reuse,
            batch_size=batch_size,
            spill=spill,
            spill_policy=spill_policy,
            tile_bytes=tile_bytes,
            prefetch=prefetch,
            link=link,
        )
        server_ctx = RequestScheduler(
            registry,
            pool,
            workers=workers,
            max_batch=max_batch,
            deadline_s=deadline_s,
        )
    preloaded = (
        bool(pool.preload()) if (preload and pool is not None) else False
    )
    references = (
        {
            name: Executor(
                registry.get(name).graph,
                params=init_params(registry.get(name).graph, seed),
            )
            for name in names
        }
        if verify
        else {}
    )

    errors = 0
    mismatches: list[int] = []
    lock = threading.Lock()

    def client(client_id: int, server: RequestScheduler) -> None:
        nonlocal errors
        for i in range(client_id, requests, clients):
            name = names[i % len(names)]
            graph = registry.get(name).graph
            feeds = random_feeds(graph, seed=seed + i)
            try:
                result = server.submit(name, feeds).result()
            except Exception:
                with lock:
                    errors += 1
                continue
            if verify:
                ref = references[name].run(feeds)
                ok = set(ref) == set(result.outputs) and all(
                    np.array_equal(ref[k], result.outputs[k]) for k in ref
                )
                if not ok:
                    with lock:
                        mismatches.append(i)

    shard_stats: tuple[ShardStats, ...] = ()
    with server_ctx as server:
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(c, server), name=f"client-{c}")
            for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t0
        stats = server.stats()
        if isinstance(server, ShardedScheduler):
            shard_stats = tuple(server.shard_stats(refresh=False))
            preloaded = preload and stats.pool is not None and stats.pool.preloads > 0

    if pool is not None:
        pool.close()
    pool_stats = stats.pool
    if pool_stats is None:  # every shard died before the snapshot
        pool_stats = PoolStats(
            **{name: 0 for name in PoolStats.__dataclass_fields__}
        )
    return LoadReport(
        requests=requests,
        clients=clients,
        workers=workers,
        max_batch=max_batch,
        reuse=reuse,
        models=tuple(names),
        wall_s=wall_s,
        p50_ms=stats.p50_s * 1e3,
        p99_ms=stats.p99_s * 1e3,
        mean_batch=stats.mean_batch,
        pool=pool_stats,
        errors=errors,
        verified=(not mismatches) if verify else None,
        mismatches=tuple(mismatches),
        batch_size=batch_size,
        preloaded=preloaded,
        spill=spill,
        spill_bytes=stats.spill_bytes,
        prefetch=prefetch,
        tile_bytes=tile_bytes,
        spill_stall_s=stats.spill_stall_s,
        spill_hidden_s=stats.spill_hidden_s,
        shards=shards,
        shard_stats=shard_stats,
        restarts=stats.restarts,
        retries=stats.retries,
        expired=stats.expired,
        shed=stats.shed,
        breaker_trips=sum(1 for s in shard_stats if s.failed),
    )
