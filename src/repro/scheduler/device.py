"""Device-targeted compilation: does this network fit this edge device?

The paper's end goal is a go/no-go answer for a concrete microcontroller
("caps and minimizes the footprint to the limitations of the edge
device"). This module packages the pipeline into that decision:

>>> from repro.scheduler.device import SPARKFUN_EDGE, fit_to_device
>>> fit = fit_to_device(graph, SPARKFUN_EDGE)
>>> fit.fits, fit.stage
(True, 'dp+rewriting')

``fit_to_device`` escalates through the same stages a deployment
engineer would: the framework's default order, then optimal scheduling,
then scheduling after identity rewriting — stopping at the first stage
whose *allocator-level* peak meets the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocator.arena import arena_peak_bytes
from repro.graph.graph import Graph
from repro.scheduler.divide import DivideAndConquerScheduler
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import kahn_schedule

__all__ = [
    "DeviceSpec",
    "FitStage",
    "DeviceFitReport",
    "fit_to_device",
    "resolve_budget",
    "SPARKFUN_EDGE",
    "STM32F746",
    "AMBIQ_APOLLO3",
    "KNOWN_DEVICES",
]


@dataclass(frozen=True)
class DeviceSpec:
    """An edge target's activation-memory budget."""

    name: str
    sram_bytes: int

    @property
    def sram_kib(self) -> float:
        return self.sram_bytes / 1024.0


#: the paper's reference device (Section 2.2): 250 KB weight/activation
SPARKFUN_EDGE = DeviceSpec("SparkFun Edge", 250 * 1024)
#: a common Cortex-M7 evaluation target
STM32F746 = DeviceSpec("STM32F746", 320 * 1024)
#: the Apollo3 MCU family the SparkFun Edge is built around, bare config
AMBIQ_APOLLO3 = DeviceSpec("Ambiq Apollo3", 384 * 1024)

KNOWN_DEVICES = {d.name: d for d in (SPARKFUN_EDGE, STM32F746, AMBIQ_APOLLO3)}


def resolve_budget(
    device: str | None = None, kib: float | None = None
) -> DeviceSpec | None:
    """Resolve a CLI-style memory budget into a :class:`DeviceSpec`.

    Pass a :data:`KNOWN_DEVICES` name, a custom KiB figure, or neither
    (``None``: unbounded). Used by the serving runtime to cap the
    resident arena set the same way device fitting caps a single plan.
    """
    if device is not None:
        if device not in KNOWN_DEVICES:
            raise KeyError(
                f"unknown device {device!r}; known: {sorted(KNOWN_DEVICES)}"
            )
        return KNOWN_DEVICES[device]
    if kib is not None:
        return DeviceSpec(f"custom-{kib:g}KiB", int(kib * 1024))
    return None


@dataclass(frozen=True)
class FitStage:
    """One escalation stage's outcome."""

    name: str  # 'baseline' | 'dp' | 'dp+rewriting'
    peak_bytes: int
    arena_bytes: int
    fits: bool
    schedule: Schedule


@dataclass(frozen=True)
class DeviceFitReport:
    """Outcome of fitting a graph onto a device."""

    device: DeviceSpec
    graph_name: str
    stages: tuple[FitStage, ...]

    @property
    def fits(self) -> bool:
        return any(s.fits for s in self.stages)

    @property
    def stage(self) -> str | None:
        """First (cheapest) stage that fits, or None."""
        for s in self.stages:
            if s.fits:
                return s.name
        return None

    @property
    def best(self) -> FitStage:
        """The stage with the lowest arena peak."""
        return min(self.stages, key=lambda s: s.arena_bytes)

    @property
    def headroom_bytes(self) -> int:
        """Budget left under the best stage (negative = shortfall)."""
        return self.device.sram_bytes - self.best.arena_bytes

    def summary(self) -> str:
        lines = [
            f"fit report: {self.graph_name} on {self.device.name} "
            f"({self.device.sram_kib:.0f}KB)"
        ]
        for s in self.stages:
            verdict = "fits" if s.fits else "over budget"
            lines.append(
                f"  {s.name:13s} arena {s.arena_bytes / 1024:8.1f}KB  {verdict}"
            )
        lines.append(
            f"  => {'DEPLOYABLE via ' + str(self.stage) if self.fits else 'NOT DEPLOYABLE'}"
            f" (headroom {self.headroom_bytes / 1024:+.1f}KB)"
        )
        return "\n".join(lines)


def _stage(name: str, graph: Graph, schedule: Schedule, budget: int) -> FitStage:
    arena = arena_peak_bytes(graph, schedule)
    return FitStage(
        name=name,
        peak_bytes=simulate_schedule(graph, schedule, validate=False).peak_bytes,
        arena_bytes=arena,
        fits=arena <= budget,
        schedule=schedule,
    )


def fit_to_device(
    graph: Graph,
    device: DeviceSpec,
    max_states_per_step: int | None = 50_000,
    stop_early: bool = True,
) -> DeviceFitReport:
    """Escalate baseline → DP → DP+rewriting until the budget is met.

    With ``stop_early`` (default) later stages are skipped once one
    fits; pass ``False`` to measure all three regardless.
    """
    budget = device.sram_bytes
    stages: list[FitStage] = []

    stages.append(_stage("baseline", graph, kahn_schedule(graph), budget))
    if not (stop_early and stages[-1].fits):
        dnc = DivideAndConquerScheduler(max_states_per_step=max_states_per_step)
        stages.append(_stage("dp", graph, dnc.schedule(graph).schedule, budget))
    if not (stop_early and stages[-1].fits):
        from repro.rewriting.rewriter import rewrite_graph

        rewritten = rewrite_graph(graph).graph
        dnc = DivideAndConquerScheduler(max_states_per_step=max_states_per_step)
        stages.append(
            _stage(
                "dp+rewriting", rewritten, dnc.schedule(rewritten).schedule, budget
            )
        )

    return DeviceFitReport(
        device=device, graph_name=graph.name, stages=tuple(stages)
    )
