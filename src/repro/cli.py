"""Command-line interface: ``serenity`` (or ``python -m repro.cli``).

Subcommands
-----------
``schedule``     compile one benchmark cell (or a saved graph) and print
                 the schedule report
``experiment``   regenerate one of the paper's tables/figures
``list``         list benchmark cells and experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.models.suite import BENCHMARK_SUITE, get_cell

_EXPERIMENTS = {
    "fig2": "repro.experiments.fig2_pareto",
    "fig3": "repro.experiments.fig3_cdf",
    "fig10": "repro.experiments.fig10_peak",
    "fig11": "repro.experiments.fig11_offchip",
    "fig12": "repro.experiments.fig12_trace",
    "fig13": "repro.experiments.fig13_time",
    "fig15": "repro.experiments.fig10_peak",  # same harness, raw KB columns
    "table1": "repro.experiments.table1_networks",
    "table2": "repro.experiments.table2_ablation",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmark cells:")
    for key, spec in BENCHMARK_SUITE.items():
        print(f"  {key:18s} {spec.display}")
    print("\nexperiments:")
    for key in sorted(set(_EXPERIMENTS) - {"fig15"}):
        print(f"  {key}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.graph.serialization import load_graph
    from repro.scheduler.serenity import Serenity, SerenityConfig

    if args.cell:
        graph = get_cell(args.cell).factory()
    elif args.graph:
        graph = load_graph(args.graph)
    else:
        print("error: pass --cell <key> or --graph <file.json>", file=sys.stderr)
        return 2

    config = SerenityConfig(
        rewrite=not args.no_rewrite,
        divide=not args.no_divide,
        adaptive_budget=not args.no_budget,
        max_states_per_step=args.max_states,
    )
    report = Serenity(config).compile(graph)

    print(f"graph: {graph.name} ({len(graph)} nodes -> "
          f"{len(report.scheduled_graph)} after rewriting)")
    print(f"rewrites applied        : {report.rewrite_count}")
    print(f"baseline (Kahn) peak    : {report.baseline_peak_bytes / 1024:9.1f}KB")
    print(f"baseline arena peak     : {report.baseline_arena_bytes / 1024:9.1f}KB")
    print(f"SERENITY peak           : {report.peak_bytes / 1024:9.1f}KB")
    print(f"SERENITY arena peak     : {report.arena_bytes / 1024:9.1f}KB")
    print(f"reduction (arena)       : {report.reduction_with_alloc:9.2f}x")
    print(f"scheduling time         : {report.scheduling_time_s:9.2f}s")
    if report.divide:
        sizes = ",".join(str(s) for s in report.divide.partition_sizes)
        print(f"partitions              : {{{sizes}}}")
    if args.emit_plan:
        from repro.allocator.export import export_plan

        export_plan(report.scheduled_graph, report.schedule, args.emit_plan)
        print(f"deployment plan written to {args.emit_plan}")
    if args.show_schedule:
        print("\nschedule:")
        for i, name in enumerate(report.schedule):
            print(f"  {i:4d}  {name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(_EXPERIMENTS[args.name])
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="serenity",
        description="SERENITY: memory-aware scheduling of irregularly wired "
        "neural networks (MLSys 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list cells and experiments")
    p_list.set_defaults(func=_cmd_list)

    p_sched = sub.add_parser("schedule", help="compile a graph")
    p_sched.add_argument("--cell", choices=sorted(BENCHMARK_SUITE), default=None)
    p_sched.add_argument("--graph", help="path to a saved graph JSON")
    p_sched.add_argument("--no-rewrite", action="store_true")
    p_sched.add_argument("--no-divide", action="store_true")
    p_sched.add_argument("--no-budget", action="store_true")
    p_sched.add_argument("--max-states", type=int, default=50_000)
    p_sched.add_argument("--show-schedule", action="store_true")
    p_sched.add_argument(
        "--emit-plan",
        metavar="FILE",
        help="write the schedule + arena offsets as a JSON deployment plan",
    )
    p_sched.set_defaults(func=_cmd_schedule)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
