"""Diff two ``BENCH_*.json`` documents and gate on regressions.

CI runs every benchmark smoke against the numbers committed in
``benchmarks/results/`` and posts the diff to the step summary. Raw
throughput (req/s, samples/s) moves with the host, so only
**machine-portable** metrics gate the build:

* ratio metrics — ``*speedup*``, ``req_per_s_*_vs_*``,
  ``hidden_fraction`` — must not drop by more than ``--threshold``
  (relative);
* correctness metrics — ``errors`` must not grow, ``verified_bitwise``
  and ``*_verified`` must not flip away from true, ``*mismatch*``
  counts must not grow.

Everything else (absolute req/s, stall seconds, traffic bytes, floors)
is reported for the record but never fails the build.

Two guards keep the gate honest: ratio metrics whose baseline is
below ``MIN_GATED_RATIO`` are report-only (a 0.0005 -> 0 drop is
noise, not a regression), and when the two documents were produced
under different ``quick`` settings (full committed baseline vs a
quick-mode CI smoke with fewer reps/requests) ratio gating is
disabled entirely — only correctness metrics still gate.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.15] [--markdown]

Exit status: 0 clean, 1 regression past the threshold, 2 unreadable
input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterator

#: relative drop a gated ratio metric may suffer before failing
DEFAULT_THRESHOLD = 0.15

#: ratio metrics with a baseline below this are report-only — relative
#: drops on near-zero fractions are measurement noise
MIN_GATED_RATIO = 0.05

_RATIO_MARKERS = ("speedup", "hidden_fraction", "_vs_")
_ERROR_KEYS = ("errors", "mismatch")
_VERIFIED_MARKERS = ("verified",)


def flatten(doc: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Yield ``(dotted.path, leaf)`` pairs for every scalar in ``doc``."""
    if isinstance(doc, dict):
        for key in sorted(doc):
            yield from flatten(doc[key], f"{prefix}{key}.")
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            yield from flatten(item, f"{prefix}{i}.")
    else:
        yield prefix.rstrip("."), doc


def classify(path: str) -> str:
    """``ratio`` / ``error`` / ``verified`` / ``info`` for one metric path."""
    leaf = path.rsplit(".", 1)[-1]
    if any(marker in leaf for marker in _RATIO_MARKERS):
        return "ratio"
    if any(leaf == key or key in leaf for key in _ERROR_KEYS):
        return "error"
    if any(marker in leaf for marker in _VERIFIED_MARKERS):
        return "verified"
    return "info"


def compare(
    baseline: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> tuple[list[dict], list[dict]]:
    """Diff two bench documents.

    Returns ``(rows, regressions)``: every changed shared metric, and
    the subset that fails the gate. Paths present in only one document
    (new cells, removed sections) are reported as info, never gated —
    benches grow fields across PRs.
    """
    base = dict(flatten(baseline))
    curr = dict(flatten(current))
    # a full-mode baseline vs a quick-mode run (or vice versa) differ in
    # reps/requests by design; ratios are not comparable across modes
    same_mode = baseline.get("quick") == current.get("quick")
    rows: list[dict] = []
    regressions: list[dict] = []
    for path in sorted(base.keys() | curr.keys()):
        b, c = base.get(path), curr.get(path)
        if b == c:
            continue
        kind = classify(path)
        row = {"path": path, "kind": kind, "baseline": b, "current": c}
        if b is None or c is None:
            row["verdict"] = "added" if b is None else "removed"
            rows.append(row)
            continue
        verdict = "changed"
        if kind == "ratio" and _is_num(b) and _is_num(c):
            if (
                same_mode
                and b >= MIN_GATED_RATIO
                and c < b * (1.0 - threshold)
            ):
                verdict = "REGRESSED"
        elif kind == "error" and _is_num(b) and _is_num(c):
            if c > b:
                verdict = "REGRESSED"
        elif kind == "verified":
            if b is True and c is not True:
                verdict = "REGRESSED"
        row["verdict"] = verdict
        rows.append(row)
        if verdict == "REGRESSED":
            regressions.append(row)
    return rows, regressions


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render(rows: list[dict], regressions: list[dict], markdown: bool) -> str:
    if not rows:
        return "benchmarks unchanged vs baseline"
    lines = []
    if markdown:
        lines += [
            "| metric | kind | baseline | current | verdict |",
            "| --- | --- | --- | --- | --- |",
        ]
        for row in rows:
            mark = "**REGRESSED**" if row["verdict"] == "REGRESSED" else row["verdict"]
            lines.append(
                f"| `{row['path']}` | {row['kind']} | {_fmt(row['baseline'])} "
                f"| {_fmt(row['current'])} | {mark} |"
            )
    else:
        width = max(len(row["path"]) for row in rows)
        for row in rows:
            lines.append(
                f"{row['path']:<{width}}  {row['kind']:<8} "
                f"{_fmt(row['baseline'])} -> {_fmt(row['current'])} "
                f"[{row['verdict']}]"
            )
    lines.append("")
    lines.append(
        f"{len(rows)} metric(s) differ; {len(regressions)} regression(s) "
        "past the gate"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("current", help="freshly generated BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max relative drop a gated ratio metric may take "
        f"(default {DEFAULT_THRESHOLD})",
    )
    ap.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-flavored markdown table (for step summaries)",
    )
    args = ap.parse_args(argv)
    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        with open(args.current) as fh:
            current = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bench document: {exc}", file=sys.stderr)
        return 2
    rows, regressions = compare(baseline, current, threshold=args.threshold)
    try:
        print(render(rows, regressions, markdown=args.markdown))
    except BrokenPipeError:
        # downstream pager/head closed the pipe; the verdict still stands
        sys.stderr.close()
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
