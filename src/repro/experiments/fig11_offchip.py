"""Fig 11: off-chip memory traffic under a two-level hierarchy.

For every cell and on-chip capacity in {32, 64, 128, 256} KB, replay the
TFLite-baseline schedule and the SERENITY schedule through the
Belady-policy memory simulator and compare total off-chip bytes. Cells
whose baseline already runs entirely on-chip are N/A (as in the paper's
figure); cells where only SERENITY fits on-chip "eliminate" the traffic
(the starred bars).

SERENITY here means the DP schedule *without* graph rewriting: the
paper's Fig 11 gains track its Fig 10 DP-only ratios (e.g. DARTS
1.92-2.00x vs the DP bar's 1.83x, not the rewritten 2.20x), and the
accumulating partial convolutions that rewriting introduces trade peak
footprint for extra accumulator round-trips, which is the wrong currency
when the metric is traffic. Pass ``rewrite=True`` to measure that
trade-off explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table, geomean
from repro.experiments.common import CellRun, suite_runs
from repro.memsim.hierarchy import offchip_traffic
from repro.models.suite import PAPER_GEOMEANS

__all__ = ["CAPACITIES_KB", "Fig11Cell", "run", "render"]

CAPACITIES_KB = (32, 64, 128, 256)


@dataclass(frozen=True)
class Fig11Cell:
    key: str
    display: str
    #: capacity KB -> (baseline_bytes, serenity_bytes, ratio-or-None)
    by_capacity: dict[int, tuple[int, int, float | None]]

    def eliminated_at(self, cap_kb: int) -> bool:
        base, ours, _ = self.by_capacity[cap_kb]
        return ours == 0 and base > 0


def _traffic(
    run_: CellRun, cap_kb: int, policy: str, rewrite: bool
) -> tuple[int, int]:
    cap = cap_kb * 1024
    rep = run_.gr if rewrite else run_.dp
    base = offchip_traffic(
        rep.graph,
        _baseline_schedule(run_),
        cap,
        policy=policy,
    ).total_bytes
    ours = offchip_traffic(
        rep.scheduled_graph, rep.schedule, cap, policy=policy
    ).total_bytes
    return base, ours


def _baseline_schedule(run_: CellRun):
    from repro.scheduler.topological import kahn_schedule

    return kahn_schedule(run_.gr.graph)


def run(
    keys: list[str] | None = None,
    policy: str = "belady",
    rewrite: bool = False,
) -> list[Fig11Cell]:
    out = []
    for r in suite_runs(keys):
        by_cap: dict[int, tuple[int, int, float | None]] = {}
        for cap in CAPACITIES_KB:
            base, ours = _traffic(r, cap, policy, rewrite)
            if base == 0 and ours == 0:
                ratio = None  # N/A: fits on-chip under both schedules
            elif ours == 0:
                ratio = float("inf")  # SERENITY eliminates the traffic
            else:
                ratio = base / ours
            by_cap[cap] = (base, ours, ratio)
        out.append(Fig11Cell(key=r.spec.key, display=r.spec.display, by_capacity=by_cap))
    return out


def _cell_str(entry: tuple[int, int, float | None]) -> str:
    base, ours, ratio = entry
    if ratio is None:
        return "N/A"
    if ratio == float("inf"):
        return "elim*"
    return f"{ratio:.2f}x"


def render(cells: list[Fig11Cell], policy: str = "belady") -> str:
    rows = [
        (c.display, *[_cell_str(c.by_capacity[cap]) for cap in CAPACITIES_KB])
        for c in cells
    ]
    # geomean over cells with a finite ratio, per capacity
    gm_row = ["GEOMEAN (finite)"]
    for cap in CAPACITIES_KB:
        finite = [
            c.by_capacity[cap][2]
            for c in cells
            if c.by_capacity[cap][2] not in (None, float("inf"))
        ]
        gm_row.append(f"{geomean(finite):.2f}x" if finite else "N/A")
    rows.append(tuple(gm_row))
    title = (
        f"Fig 11 - off-chip traffic reduction vs TFLite ({policy} policy); "
        f"paper geomean at 256KB: {PAPER_GEOMEANS['fig11_256kb']:.2f}x; "
        "'elim*' = SERENITY removes all off-chip communication"
    )
    return format_table(
        ("cell", *[f"{c}KB" for c in CAPACITIES_KB]), rows, title=title
    )


def main(policy: str = "belady") -> str:  # pragma: no cover - via CLI/benches
    out = render(run(policy=policy), policy=policy)
    print(out)
    return out
