"""Pooling operators (max / average / global average)."""

from __future__ import annotations

from typing import Any

from repro.graph.tensor import TensorSpec
from repro.ops.base import (
    OpSchema,
    conv_output_hw,
    normalize_pair,
    register_op,
    require_chw,
)


def _pool_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "pool2d")
    kernel = normalize_pair(attrs.get("kernel", 2), "kernel")
    stride = normalize_pair(attrs.get("stride", kernel), "stride")
    padding = attrs.get("padding", "valid")
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return TensorSpec((c, oh, ow), inputs[0].dtype)


def _pool_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    # Comparisons/additions, counted like one MAC per window element, the
    # convention used by common profilers for pooling cost.
    kernel = normalize_pair(attrs.get("kernel", 2), "kernel")
    return out.elements * kernel[0] * kernel[1]


register_op(OpSchema(name="max_pool2d", infer_shape=_pool_shape, macs=_pool_macs))
register_op(OpSchema(name="avg_pool2d", infer_shape=_pool_shape, macs=_pool_macs))


def _gap_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "global_avg_pool")
    return TensorSpec((c, 1, 1), inputs[0].dtype)


def _gap_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    return inputs[0].elements


register_op(OpSchema(name="global_avg_pool", infer_shape=_gap_shape, macs=_gap_macs))
