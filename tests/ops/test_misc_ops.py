"""Pooling, dense, norm, elementwise and shape-manipulation op schemas."""

import pytest

from repro.exceptions import ShapeError, UnknownOpError
from repro.graph.tensor import TensorSpec
from repro.ops import get_op, has_op, infer_shape, op_macs, op_weights, registered_ops
from repro.ops.base import OpSchema, register_op


def _chw(c, h, w):
    return TensorSpec((c, h, w))


class TestRegistry:
    def test_expected_ops_present(self):
        names = registered_ops()
        for op in (
            "input",
            "conv2d",
            "depthwise_conv2d",
            "partial_conv2d",
            "partial_depthwise_conv2d",
            "fused_sep_conv3x3",
            "concat",
            "add",
            "relu",
            "max_pool2d",
            "avg_pool2d",
            "global_avg_pool",
            "dense",
            "batch_norm",
            "flatten",
            "slice_channels",
        ):
            assert op in names

    def test_unknown_op_raises(self):
        with pytest.raises(UnknownOpError):
            get_op("frobnicate")

    def test_has_op(self):
        assert has_op("conv2d") and not has_op("frobnicate")

    def test_reregistration_replaces(self):
        schema = OpSchema(name="test_tmp_op", infer_shape=lambda i, a: i[0])
        register_op(schema)
        assert get_op("test_tmp_op") is schema

    def test_arity_enforced(self):
        with pytest.raises(ShapeError, match="inputs"):
            infer_shape("relu", [_chw(1, 2, 2), _chw(1, 2, 2)], {})
        with pytest.raises(ShapeError, match="inputs"):
            infer_shape("add", [_chw(1, 2, 2)], {})


class TestPooling:
    def test_max_pool_defaults_stride_kernel(self):
        out = infer_shape("max_pool2d", [_chw(3, 8, 8)], {"kernel": 2})
        assert out.shape == (3, 4, 4)

    def test_avg_pool_same_padding(self):
        out = infer_shape(
            "avg_pool2d", [_chw(3, 7, 7)], {"kernel": 3, "stride": 1, "padding": "same"}
        )
        assert out.shape == (3, 7, 7)

    def test_pool_macs(self):
        inp, attrs = _chw(3, 8, 8), {"kernel": 2}
        out = infer_shape("max_pool2d", [inp], attrs)
        assert op_macs("max_pool2d", [inp], out, attrs) == 3 * 4 * 4 * 4

    def test_global_avg_pool(self):
        inp = _chw(5, 9, 9)
        out = infer_shape("global_avg_pool", [inp], {})
        assert out.shape == (5, 1, 1)
        assert op_macs("global_avg_pool", [inp], out, {}) == 5 * 81

    def test_pool_has_no_weights(self):
        inp, attrs = _chw(3, 8, 8), {"kernel": 2}
        out = infer_shape("max_pool2d", [inp], attrs)
        assert op_weights("max_pool2d", [inp], out, attrs) == 0


class TestDense:
    def test_shape(self):
        out = infer_shape("dense", [TensorSpec((12,))], {"units": 4})
        assert out.shape == (4,)

    def test_macs_and_weights(self):
        inp, attrs = TensorSpec((12,)), {"units": 4}
        out = infer_shape("dense", [inp], attrs)
        assert op_macs("dense", [inp], out, attrs) == 48
        assert op_weights("dense", [inp], out, attrs) == 48 + 4

    def test_rejects_feature_maps(self):
        with pytest.raises(ShapeError):
            infer_shape("dense", [_chw(3, 2, 2)], {"units": 4})

    def test_bad_units(self):
        with pytest.raises(ShapeError):
            infer_shape("dense", [TensorSpec((12,))], {"units": -1})


class TestBatchNorm:
    def test_shape_identity(self):
        assert infer_shape("batch_norm", [_chw(6, 4, 4)], {}).shape == (6, 4, 4)

    def test_weights_two_per_channel(self):
        inp = _chw(6, 4, 4)
        out = infer_shape("batch_norm", [inp], {})
        assert op_weights("batch_norm", [inp], out, {}) == 12


class TestElementwise:
    def test_add_nary(self):
        specs = [_chw(2, 3, 3)] * 4
        assert infer_shape("add", specs, {}).shape == (2, 3, 3)

    def test_add_macs_scale_with_arity(self):
        specs = [_chw(2, 3, 3)] * 4
        out = infer_shape("add", specs, {})
        assert op_macs("add", specs, out, {}) == 18 * 3

    def test_mul_shape_mismatch(self):
        with pytest.raises(ShapeError):
            infer_shape("mul", [_chw(2, 3, 3), _chw(2, 3, 4)], {})

    def test_dtype_mismatch(self):
        with pytest.raises(ShapeError):
            infer_shape(
                "add", [_chw(2, 3, 3), TensorSpec((2, 3, 3), "int8")], {}
            )

    def test_identity_costs_nothing(self):
        inp = _chw(2, 3, 3)
        out = infer_shape("identity", [inp], {})
        assert op_macs("identity", [inp], out, {}) == 0

    def test_relu_macs(self):
        inp = _chw(2, 3, 3)
        out = infer_shape("relu", [inp], {})
        assert op_macs("relu", [inp], out, {}) == 18


class TestShapeOps:
    def test_input_requires_shape_attr(self):
        with pytest.raises(ShapeError):
            infer_shape("input", [], {})

    def test_concat_sums_channels(self):
        out = infer_shape("concat", [_chw(2, 3, 3), _chw(5, 3, 3)], {})
        assert out.shape == (7, 3, 3)

    def test_concat_axis_restriction(self):
        with pytest.raises(ShapeError):
            infer_shape("concat", [_chw(2, 3, 3)], {"axis": 1})

    def test_flatten(self):
        assert infer_shape("flatten", [_chw(2, 3, 4)], {}).shape == (24,)

    def test_slice_channels(self):
        out = infer_shape("slice_channels", [_chw(8, 3, 3)], {"range": (2, 6)})
        assert out.shape == (4, 3, 3)
