"""NumPy runtimes: the reference dict executor, the arena-backed plan
executor, and the verification harnesses tying them together."""

from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.kernels import KERNELS, conv2d, depthwise_conv2d
from repro.runtime.plan_executor import PlanExecutionStats, PlanExecutor
from repro.runtime.verify import (
    EquivalenceReport,
    derive_rewritten_params,
    verify_execution,
    verify_rewrite,
)

__all__ = [
    "Executor",
    "PlanExecutor",
    "PlanExecutionStats",
    "init_params",
    "random_feeds",
    "KERNELS",
    "conv2d",
    "depthwise_conv2d",
    "EquivalenceReport",
    "derive_rewritten_params",
    "verify_execution",
    "verify_rewrite",
]
