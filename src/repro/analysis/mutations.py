"""Seeded-defect corpus: plan corruptions the static verifier must catch.

The verifier's acceptance bar is behavioural: *every* corruption class
below, injected into a real compiled artifact, must produce at least
one error-severity diagnostic from the expected family — and the
unmutated artifact must pass with zero findings. Each mutator takes an
artifact document (the JSON form of a
:class:`~repro.compiler.model.CompiledModel`), deep-copies it, applies
one deterministic corruption and returns a :class:`Mutant` naming the
diagnostic codes that should fire. A mutator returns ``None`` when the
artifact lacks the surface it corrupts (e.g. no embedded spill plans),
so callers assert applicability explicitly.

Mutations only ever touch the *plan* side of the document — the carried
graph (and therefore its embedded signature) stays intact, so every
mutant exercises the analyzer proper rather than the artifact parser.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.allocator.lifetimes import BufferLifetime, compute_lifetimes
from repro.allocator.spill import min_capacity_bytes
from repro.graph.graph import Graph
from repro.graph.serialization import graph_from_dict
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["Mutant", "MUTATION_CLASSES", "iter_mutants"]


@dataclass(frozen=True)
class Mutant:
    """One corrupted artifact document and the verdict it must draw."""

    name: str
    description: str
    doc: dict[str, Any]
    #: the verifier catches this mutant iff at least one error carries
    #: one of these codes (collateral findings are allowed)
    expect_codes: frozenset[str]


def _ctx(
    doc: dict[str, Any],
) -> tuple[Graph, Schedule, BufferModel, list[BufferLifetime]]:
    graph = graph_from_dict(doc["graph"])
    schedule = Schedule(tuple(doc["plan"]["schedule"]), graph.name)
    model = BufferModel.of(graph)
    lifetimes = compute_lifetimes(graph, schedule, model=model)
    return graph, schedule, model, lifetimes


def _arena_extent(doc: dict[str, Any], model: BufferModel) -> int:
    return max(
        int(b["offset"]) + model.buf_size[int(b["id"])]
        for b in doc["plan"]["buffers"]
    )


# ----------------------------------------------------------------------
# mutators: doc (already deep-copied) -> Mutant | None
# ----------------------------------------------------------------------
def _shifted_offset(doc: dict[str, Any]) -> Mutant | None:
    """Alias two temporally-overlapping buffers' arena offsets."""
    _, _, _, lifetimes = _ctx(doc)
    offsets = {int(b["id"]): int(b["offset"]) for b in doc["plan"]["buffers"]}
    for i, a in enumerate(lifetimes):
        for b in lifetimes[i + 1 :]:
            if not a.overlaps(b):
                continue
            for ent in doc["plan"]["buffers"]:
                if int(ent["id"]) == b.buffer_id:
                    ent["offset"] = offsets[a.buffer_id]
            return Mutant(
                name="shifted_offset",
                description=f"buffer {b.buffer_id} moved onto buffer "
                f"{a.buffer_id}'s offset while both are live",
                doc=doc,
                expect_codes=frozenset({"ARENA_OVERLAP"}),
            )
    return None


def _stale_peak(doc: dict[str, Any]) -> Mutant | None:
    """Inflate the declared arena peak past the true high-water mark."""
    doc["plan"]["arena_bytes"] = int(doc["plan"]["arena_bytes"]) + 4096
    return Mutant(
        name="stale_peak",
        description="declared arena_bytes inflated by 4096 over the "
        "recomputed liveness peak",
        doc=doc,
        expect_codes=frozenset({"ARENA_PEAK"}),
    )


def _row_overlap(doc: dict[str, Any]) -> Mutant | None:
    """Understate the arena so batched rows (stride arena_bytes) alias."""
    _, _, model, _ = _ctx(doc)
    extent = _arena_extent(doc, model)
    if extent < 2:
        return None
    doc["plan"]["arena_bytes"] = extent - 1
    return Mutant(
        name="row_overlap",
        description="arena_bytes understated below the layout extent: "
        "row N's tail bytes alias row N+1's head in batched mode",
        doc=doc,
        expect_codes=frozenset({"ARENA_ROW_OVERLAP", "ARENA_BOUNDS"}),
    )


def _reordered_schedule(doc: dict[str, Any]) -> Mutant | None:
    """Swap a producer past one of its consumers."""
    graph, _, _, _ = _ctx(doc)
    order = list(doc["plan"]["schedule"])
    pos = {name: i for i, name in enumerate(order)}
    for src, dst in graph.edges():
        i, j = pos[src], pos[dst]
        order[i], order[j] = order[j], order[i]
        doc["plan"]["schedule"] = order
        return Mutant(
            name="reordered_schedule",
            description=f"swapped {src!r} (producer) with {dst!r} "
            "(consumer) in the execution order",
            doc=doc,
            expect_codes=frozenset({"SCHED_TOPO"}),
        )
    return None


def _pick_window(
    doc: dict[str, Any], want_last: bool, min_span: int = 2
) -> tuple[dict[str, Any], str, int] | None:
    """A (spill_doc, buffer_key, window_index) whose window spans >=
    ``min_span`` steps, preferring the buffer's last (or a non-last)
    window."""
    for sp in doc.get("spill_plans", ()):
        for b_key, ws in sp["windows"].items():
            indices = (
                [len(ws) - 1]
                if want_last
                else list(range(len(ws) - 1))
            )
            for k in indices:
                s, e, _off = ws[k]
                if e - s >= min_span:
                    return sp, b_key, k
    return None


def _shrink_window(
    doc: dict[str, Any], want_last: bool, name: str, description: str
) -> Mutant | None:
    # prefer multi-step windows (a clean off-by-one truncation); a
    # span-1 window shrunk to empty still uncovers its touch step
    picked = _pick_window(doc, want_last=want_last, min_span=2) or _pick_window(
        doc, want_last=want_last, min_span=1
    )
    if picked is None:
        return None
    sp, b_key, k = picked
    sp["windows"][b_key][k][1] -= 1
    pf = sp.get("prefetch")
    if pf is not None and b_key in pf["windows"]:
        pf["windows"][b_key][k][1] -= 1
    return Mutant(
        name=name,
        description=description.format(buffer=b_key, window=k),
        doc=doc,
        expect_codes=frozenset(
            {"SPILL_WINDOW_MISS", "SPILL_WINDOW_MALFORMED"}
        ),
    )


def _truncated_lifetime(doc: dict[str, Any]) -> Mutant | None:
    """Shrink a buffer's final staging window: its last touch would hit
    an already-released slot."""
    return _shrink_window(
        doc,
        want_last=True,
        name="truncated_lifetime",
        description="buffer {buffer}'s last staging window truncated by "
        "one step — its final touch lands outside every window",
    )


def _premature_writeback(doc: dict[str, Any]) -> Mutant | None:
    """Shrink a non-final window: the writeback (at window exit) now
    happens while a step still touches the staged bytes."""
    return _shrink_window(
        doc,
        want_last=False,
        name="premature_writeback",
        description="buffer {buffer}'s window {window} exits one step "
        "early — the writeback fires while step end-1 still touches it",
    )


def _dropped_fetch(doc: dict[str, Any]) -> Mutant | None:
    """Delete a buffer's second staging window outright — its touches
    run with no fetch ever staged."""
    for sp in doc.get("spill_plans", ()):
        for b_key, ws in sp["windows"].items():
            if len(ws) < 2:
                continue
            del ws[1]
            pf = sp.get("prefetch")
            if pf is not None and b_key in pf["windows"]:
                del pf["windows"][b_key][1]
                del pf["window_leads"][b_key][1]
            return Mutant(
                name="dropped_fetch",
                description=f"buffer {b_key}'s second staging window "
                "deleted: its touches execute with no fetch",
                doc=doc,
                expect_codes=frozenset({"SPILL_WINDOW_MISS"}),
            )
    return None


def _overlapping_prefetch_lead(doc: dict[str, Any]) -> Mutant | None:
    """Alias a prefetch staging slot with bytes that are live while the
    leaded transfer may be in flight."""
    _, _, _, lifetimes = _ctx(doc)
    lt_of = {lt.buffer_id: lt for lt in lifetimes}
    for sp in doc.get("spill_plans", ()):
        pf = sp.get("prefetch")
        if pf is None:
            continue
        for b_key, ws in pf["windows"].items():
            leads = pf["window_leads"][b_key]
            for k, (s, e, _off) in enumerate(ws):
                t0 = max(0, s - leads[k])
                for r_key, r_off in pf["resident_offsets"].items():
                    lt = lt_of.get(int(r_key))
                    if lt is None:
                        continue
                    if t0 < lt.end and lt.start < e:
                        ws[k][2] = r_off
                        return Mutant(
                            name="overlapping_prefetch_lead",
                            description=f"buffer {b_key}'s window {k} "
                            f"prefetch slot aliased onto resident buffer "
                            f"{r_key}, live while the transfer flies",
                            doc=doc,
                            expect_codes=frozenset({"PREFETCH_RACE"}),
                        )
        # no resident overlaps in time: alias two concurrently-held
        # staging windows instead
        for b_key, ws in pf["windows"].items():
            for k, (s, e, _off) in enumerate(ws):
                t0 = max(0, s - pf["window_leads"][b_key][k])
                for b2_key, ws2 in pf["windows"].items():
                    if b2_key == b_key:
                        continue
                    for s2, e2, off2 in ws2:
                        if t0 < e2 and s2 < e:
                            ws[k][2] = off2
                            return Mutant(
                                name="overlapping_prefetch_lead",
                                description=f"buffer {b_key}'s window {k} "
                                "prefetch slot aliased onto buffer "
                                f"{b2_key}'s concurrently-held slot",
                                doc=doc,
                                expect_codes=frozenset({"PREFETCH_RACE"}),
                            )
    return None


def _dropped_offset(doc: dict[str, Any]) -> Mutant | None:
    """Remove one buffer's arena placement entirely."""
    buffers = doc["plan"]["buffers"]
    if not buffers:
        return None
    dropped = buffers.pop()
    return Mutant(
        name="dropped_offset",
        description=f"buffer {dropped['id']}'s arena offset removed "
        "from the plan",
        doc=doc,
        expect_codes=frozenset({"ARENA_COVERAGE"}),
    )


def _home_overlap(doc: dict[str, Any]) -> Mutant | None:
    """Alias two spilled buffers' off-chip home slots."""
    for sp in doc.get("spill_plans", ()):
        homes = sorted(sp["home_offsets"].items(), key=lambda kv: kv[1])
        if len(homes) < 2:
            continue
        (a_key, a_off), (b_key, _b_off) = homes[0], homes[1]
        sp["home_offsets"][b_key] = a_off
        return Mutant(
            name="home_overlap",
            description=f"buffer {b_key}'s off-chip home aliased onto "
            f"buffer {a_key}'s slot",
            doc=doc,
            expect_codes=frozenset({"SPILL_HOME_OVERLAP"}),
        )
    return None


def _capacity_floor(doc: dict[str, Any]) -> Mutant | None:
    """Declare a capacity below the schedule's irreducible working set
    (the floor matching the plan's own staging granularity)."""
    sps = doc.get("spill_plans", ())
    if not sps:
        return None
    graph, schedule, model, _ = _ctx(doc)
    floor = min_capacity_bytes(
        graph, schedule, model=model, tile_bytes=sps[0].get("tile_bytes")
    )
    if floor < 2:
        return None
    sps[0]["capacity_bytes"] = floor - 1
    return Mutant(
        name="capacity_floor",
        description=f"capacity_bytes lowered to {floor - 1}, below the "
        f"{floor}-byte single-step working-set floor",
        doc=doc,
        expect_codes=frozenset({"SPILL_FLOOR"}),
    )


def _overlapping_tile_slot(doc: dict[str, Any]) -> Mutant | None:
    """Alias two time-overlapping tile slots in a tiled spill plan —
    tile N of one buffer would stream over tile M of another."""
    for sp in doc.get("spill_plans", ()):
        if sp.get("tile_bytes") is None:
            continue
        wins = [
            (b_key, k, s, e)
            for b_key, ws in sp["windows"].items()
            for k, (s, e, _off) in enumerate(ws)
        ]
        for i, (b1, k1, s1, e1) in enumerate(wins):
            off1 = sp["windows"][b1][k1][2]
            for b2, k2, s2, e2 in wins[i + 1 :]:
                if b2 == b1 or not (s1 < e2 and s2 < e1):
                    continue
                sp["windows"][b2][k2][2] = off1
                return Mutant(
                    name="overlapping_tile_slot",
                    description=f"buffer {b2}'s window {k2} tile slot "
                    f"aliased onto buffer {b1}'s concurrently-held tile "
                    "slot",
                    doc=doc,
                    expect_codes=frozenset({"SPILL_OVERLAP"}),
                )
    return None


def _dropped_tile_fetch(doc: dict[str, Any]) -> Mutant | None:
    """Delete a staging window from a tiled plan — its touches stream
    tiles through a slot that was never reserved (no fetch staged)."""
    for sp in doc.get("spill_plans", ()):
        if sp.get("tile_bytes") is None:
            continue
        for b_key, ws in sp["windows"].items():
            if len(ws) < 2:
                continue
            del ws[1]
            pf = sp.get("prefetch")
            if pf is not None and b_key in pf["windows"]:
                del pf["windows"][b_key][1]
                del pf["window_leads"][b_key][1]
            return Mutant(
                name="dropped_tile_fetch",
                description=f"buffer {b_key}'s second tile staging window "
                "deleted from the tiled plan: its touches execute with no "
                "tile ever fetched",
                doc=doc,
                expect_codes=frozenset({"SPILL_WINDOW_MISS"}),
            )
    return None


def _tile_floor(doc: dict[str, Any]) -> Mutant | None:
    """Understate a tiled plan's capacity below the tile-working-set
    floor (the tile-granularity analogue of ``capacity_floor``)."""
    for sp in doc.get("spill_plans", ()):
        tb = sp.get("tile_bytes")
        if tb is None:
            continue
        graph, schedule, model, _ = _ctx(doc)
        floor = min_capacity_bytes(
            graph, schedule, model=model, tile_bytes=tb
        )
        if floor < 2:
            return None
        sp["capacity_bytes"] = floor - 1
        return Mutant(
            name="tile_floor",
            description=f"tiled plan capacity_bytes lowered to "
            f"{floor - 1}, below the {floor}-byte largest-tile "
            "working-set floor",
            doc=doc,
            expect_codes=frozenset({"SPILL_FLOOR"}),
        )
    return None


_MUTATORS: tuple[Callable[[dict[str, Any]], Mutant | None], ...] = (
    _shifted_offset,
    _stale_peak,
    _row_overlap,
    _reordered_schedule,
    _truncated_lifetime,
    _dropped_fetch,
    _premature_writeback,
    _overlapping_prefetch_lead,
    _dropped_offset,
    _home_overlap,
    _capacity_floor,
    _overlapping_tile_slot,
    _dropped_tile_fetch,
    _tile_floor,
)

#: every corruption class the corpus can seed, in application order
MUTATION_CLASSES: tuple[str, ...] = tuple(
    fn.__name__.lstrip("_") for fn in _MUTATORS
)


def iter_mutants(doc: dict[str, Any]) -> Iterator[Mutant]:
    """Yield every mutation class applicable to this artifact document.

    Each mutant gets its own deep copy; the input document is never
    modified. Classes that need a surface the artifact lacks (spill
    plans, prefetch layouts, multiple windows) are silently skipped —
    assert on the yielded names when a test requires full coverage.
    """
    for fn in _MUTATORS:
        mutant = fn(copy.deepcopy(doc))
        if mutant is not None:
            yield mutant
