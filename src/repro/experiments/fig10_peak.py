"""Fig 10 + Fig 15: peak-memory reduction against the TFLite baseline.

Fig 10 plots, per cell, the baseline-over-SERENITY ratio of arena peak
bytes under the first-fit allocator, for the DP-only and the
DP + graph-rewriting pipelines; Fig 15 (appendix) is the same data in
raw KB. One harness regenerates both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table, geomean
from repro.experiments.common import suite_runs
from repro.models.suite import PAPER_GEOMEANS

__all__ = ["Fig10Row", "run", "render"]


@dataclass(frozen=True)
class Fig10Row:
    key: str
    display: str
    tflite_kb: float
    dp_kb: float
    gr_kb: float
    ratio_dp: float
    ratio_gr: float
    paper_tflite_kb: float
    paper_dp_kb: float
    paper_gr_kb: float
    paper_ratio_dp: float
    paper_ratio_gr: float


def run(keys: list[str] | None = None) -> list[Fig10Row]:
    rows = []
    for r in suite_runs(keys):
        rows.append(
            Fig10Row(
                key=r.spec.key,
                display=r.spec.display,
                tflite_kb=r.dp.baseline_arena_bytes / 1024.0,
                dp_kb=r.dp.arena_bytes / 1024.0,
                gr_kb=r.gr.arena_bytes / 1024.0,
                ratio_dp=r.dp.reduction_with_alloc,
                ratio_gr=r.gr.reduction_with_alloc,
                paper_tflite_kb=r.spec.paper_tflite_kb,
                paper_dp_kb=r.spec.paper_dp_kb,
                paper_gr_kb=r.spec.paper_gr_kb,
                paper_ratio_dp=r.spec.paper_ratio_dp,
                paper_ratio_gr=r.spec.paper_ratio_gr,
            )
        )
    return rows


def render(rows: list[Fig10Row]) -> str:
    body = [
        (
            row.display,
            f"{row.tflite_kb:.1f}",
            f"{row.dp_kb:.1f}",
            f"{row.gr_kb:.1f}",
            f"{row.ratio_dp:.2f}x",
            f"{row.paper_ratio_dp:.2f}x",
            f"{row.ratio_gr:.2f}x",
            f"{row.paper_ratio_gr:.2f}x",
        )
        for row in rows
    ]
    gm_dp = geomean([r.ratio_dp for r in rows])
    gm_gr = geomean([r.ratio_gr for r in rows])
    body.append(
        (
            "GEOMEAN",
            "",
            "",
            "",
            f"{gm_dp:.2f}x",
            f"{PAPER_GEOMEANS['fig10_dp']:.2f}x",
            f"{gm_gr:.2f}x",
            f"{PAPER_GEOMEANS['fig10_gr']:.2f}x",
        )
    )
    return format_table(
        (
            "cell",
            "tflite KB",
            "DP KB",
            "DP+GR KB",
            "DP ratio",
            "(paper)",
            "GR ratio",
            "(paper)",
        ),
        body,
        title="Fig 10 / Fig 15 - peak memory vs TensorFlow Lite baseline",
    )


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
