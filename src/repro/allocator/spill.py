"""Compile-time spill planning: fit a plan into a smaller on-chip arena.

The :class:`~repro.allocator.arena.AllocationPlan` promises one arena
big enough for the schedule's whole working set. When the target's
on-chip capacity is *smaller* than that promise, the runtime used to
refuse outright (``AdmissionError``). This module turns that refusal
into a planned degradation, the way the paper's §5 off-chip story (and
SERENITY's off-chip extension) treats overflow: partition the plan's
buffers into

* **resident** buffers, which keep an on-chip slot for their whole
  lifetime, and
* **spilled** buffers, whose *home* is a second, off-chip region; they
  are **staged** on-chip only for the contiguous step windows in which
  the schedule actually touches them, fetched at window entry and
  written back at window exit when dirty.

Victim selection reuses the replacement-policy registry of the Fig 11
memory simulator (:func:`repro.memsim.policies.make_policy` — Belady's
clairvoyant farthest-next-use by default, LRU/FIFO for ablations): the
schedule fixes the whole access sequence at compile time, so next-use
distances are exact, exactly as in the offline simulator. Offsets for
the resident region (full lifetimes for resident buffers, one interval
per staging window for spilled ones) come from the same
``greedy_by_size`` allocator that lays out ordinary arenas, and the
resulting region is *proved* to fit the capacity before any kernel
runs.

Spill model (mirrors the :mod:`repro.memsim.hierarchy` rules; the
fetch/writeback steps the executor inserts implement it literally):

* a buffer must be staged on-chip to be read or written — the
  irreducible capacity floor is therefore the largest single-step
  working set (everything one kernel touches at once);
* a window that *creates* data (the buffer's first-ever access is
  always its producing write) fetches nothing; every later window
  entry fetches the whole buffer (``bytes_in += size``), preserving
  every byte written by earlier windows;
* at window exit a **dirty** buffer (some step in the window produced
  a member tensor) is written back (``bytes_out += size``) iff the
  data is needed again — a later window exists — or the buffer holds a
  graph output; clean or dead windows drop silently;
* fetch/writeback moves whole buffers by default; with
  ``tile_bytes`` set, spilled buffers instead *stream* through a tile
  slot of ``min(size, tile_bytes)`` bytes — the same
  :func:`repro.memsim.trace.tile_spans` geometry the Fig 11 simulator
  traces at — so the capacity floor drops from the largest-buffer to
  the largest-tile working set and traffic is counted per tile.

Because fetch and writeback copy bytes verbatim, a spilled execution
is **bitwise identical** to the resident one under every capacity —
spilling trades traffic for footprint, never accuracy.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.allocator.arena import (
    AllocationPlan,
    first_fit_arena,
    greedy_by_size_plan,
)
from repro.allocator.lifetimes import BufferLifetime
from repro.exceptions import SpillError
from repro.graph.graph import Graph
from repro.memsim.policies import POLICY_NAMES, BeladyPolicy, make_policy
from repro.memsim.trace import Access, AccessTrace, resolve_tile_bytes
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "SPILL_MODES",
    "StageWindow",
    "PrefetchPlan",
    "SpillPlan",
    "plan_spill",
    "min_capacity_bytes",
    "step_touches",
    "buffer_access_trace",
]

#: serving/CLI spill policy knob: refuse over-capacity arenas (the old
#: behaviour), degrade them to a spill plan, or force spill planning
SPILL_MODES = ("never", "auto", "always")

SPILL_FORMAT = "repro-spill/1"


@dataclass(frozen=True)
class StageWindow:
    """One on-chip residency interval of a spilled buffer.

    ``[start, end)`` are full-schedule step bounds covering a maximal
    run of consecutive steps that touch the buffer; ``offset`` is the
    staging slot's byte offset in the resident region. Whether the
    staged copy turns dirty is tracked dynamically by the executor
    (a pruned run may skip the window's writing steps)."""

    start: int
    end: int
    offset: int


@dataclass(frozen=True)
class PrefetchPlan:
    """Double-buffered (ping/pong) staging layout over a base plan.

    The base :class:`SpillPlan` reuses one slot for consecutive windows
    of a buffer, which forces the fetch of window N+1 to wait for
    window N's exit. This layout re-allocates the resident region with
    each staging interval's *head* extended by that window's lead:
    window N+1's slot is already reserved while window N still
    computes, so windows whose extended intervals overlap land on
    disjoint ping/pong offsets and the executor may issue the fetch up
    to ``lead`` steps early on a background transfer engine. Writebacks
    need no reservation at all — the executor retires every one of
    them asynchronously and synchronizes only when the slot's bytes are
    demonstrably reused — so even a zero-lead layout (identical to the
    base) overlaps writeback traffic. Leads are assigned per-window —
    a window crossing the schedule's peak step has no slack and keeps
    lead 0 (its fetch stays inline) while windows with headroom get up
    to ``lead_steps`` of overlap. Window ``(start, end)`` bounds are
    identical to the base plan's — only offsets (and the region
    high-water mark, still capped by the capacity) differ."""

    lead_steps: int
    resident_bytes: int
    resident_offsets: dict[int, int]
    windows: dict[int, tuple[StageWindow, ...]]
    #: per-buffer, per-window lead (parallel to ``windows``); 0 means
    #: that window's transfers execute inline even under prefetch
    window_leads: dict[int, tuple[int, ...]]

    def to_doc(self) -> dict[str, Any]:
        return {
            "lead_steps": self.lead_steps,
            "resident_bytes": self.resident_bytes,
            "resident_offsets": {
                str(b): off for b, off in sorted(self.resident_offsets.items())
            },
            "windows": {
                str(b): [[w.start, w.end, w.offset] for w in ws]
                for b, ws in sorted(self.windows.items())
            },
            "window_leads": {
                str(b): list(ls) for b, ls in sorted(self.window_leads.items())
            },
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "PrefetchPlan":
        return cls(
            lead_steps=int(doc["lead_steps"]),
            resident_bytes=int(doc["resident_bytes"]),
            resident_offsets={
                int(b): int(off)
                for b, off in doc["resident_offsets"].items()
            },
            windows={
                int(b): tuple(
                    StageWindow(int(s), int(e), int(off)) for s, e, off in ws
                )
                for b, ws in doc["windows"].items()
            },
            window_leads={
                int(b): tuple(int(x) for x in ls)
                for b, ls in doc["window_leads"].items()
            },
        )


@dataclass(frozen=True)
class SpillPlan:
    """A two-region arena layout for one (schedule, plan, capacity).

    The resident region holds resident buffers at ``resident_offsets``
    plus the staging windows of spilled buffers; its high-water mark
    ``resident_bytes`` never exceeds ``capacity_bytes``. The spill
    region holds one *home* slot per spilled buffer at
    ``home_offsets`` (``spill_bytes`` total). An empty ``spilled`` set
    is the trivial plan: the whole arena fits on-chip and no traffic
    occurs. ``prefetch`` optionally carries a double-buffered layout of
    the same windows for overlapped transfers; ``None`` (e.g. when the
    ping/pong slots would not fit the capacity) keeps transfers
    inline. ``tile_bytes`` set means spilled buffers stream through
    tile slots of ``min(size, tile_bytes)`` bytes instead of staging
    whole buffers — window offsets then address tile slots, and the
    executor moves per-tile pieces through them."""

    capacity_bytes: int
    policy: str
    resident_bytes: int
    spill_bytes: int
    spilled: frozenset[int]
    resident_offsets: dict[int, int]
    home_offsets: dict[int, int]
    windows: dict[int, tuple[StageWindow, ...]]
    prefetch: PrefetchPlan | None = None
    #: transfer granularity for spilled buffers; ``None`` = whole-buffer
    tile_bytes: int | None = None

    @property
    def is_trivial(self) -> bool:
        """True when nothing spills (zero off-chip traffic)."""
        return not self.spilled

    @property
    def spilled_count(self) -> int:
        return len(self.spilled)

    def window_at(self, buffer_id: int, step: int) -> StageWindow:
        """The staging window of ``buffer_id`` covering schedule
        ``step`` (every touch step is covered by construction)."""
        ws = self.windows[buffer_id]
        i = bisect.bisect_right([w.start for w in ws], step) - 1
        if i >= 0 and ws[i].start <= step < ws[i].end:
            return ws[i]
        raise SpillError(
            f"step {step} touches spilled buffer {buffer_id} outside "
            "every staging window (corrupt spill plan)"
        )

    # ------------------------------------------------------------------
    def validate(self) -> "SpillPlan":
        """Structural sanity: regions bounded, windows ordered,
        spilled/home/window sets consistent. Raises :class:`SpillError`
        on violation. (Home-slot *overlap* needs buffer sizes, which
        the plan does not carry — the executor cross-checks it against
        the graph's buffer model at construction.)"""
        if self.resident_bytes > self.capacity_bytes:
            raise SpillError(
                f"spill plan resident region ({self.resident_bytes} bytes) "
                f"exceeds the {self.capacity_bytes}-byte capacity"
            )
        if self.tile_bytes is not None and self.tile_bytes <= 0:
            raise SpillError(
                f"spill plan tile_bytes must be positive, got "
                f"{self.tile_bytes}"
            )
        if set(self.windows) != set(self.spilled) or set(
            self.home_offsets
        ) != set(self.spilled):
            raise SpillError(
                "spill plan is inconsistent: spilled set, homes and "
                "windows disagree"
            )
        for b, ws in self.windows.items():
            prev_end = -1
            for w in ws:
                if w.start < 0 or w.end <= w.start:
                    raise SpillError(
                        f"buffer {b}: malformed window [{w.start}, {w.end})"
                    )
                if w.start <= prev_end:
                    raise SpillError(
                        f"buffer {b}: staging windows overlap or are "
                        "out of order"
                    )
                prev_end = w.end - 1
                if w.offset < 0 or w.offset > self.resident_bytes:
                    raise SpillError(
                        f"buffer {b}: staging offset {w.offset} escapes "
                        f"the {self.resident_bytes}-byte resident region"
                    )
        for b, off in sorted(self.home_offsets.items()):
            if off < 0 or off > self.spill_bytes:
                raise SpillError(
                    f"buffer {b}: home offset {off} escapes the "
                    f"{self.spill_bytes}-byte spill region"
                )
        if self.prefetch is not None:
            self._validate_prefetch(self.prefetch)
        return self

    def _validate_prefetch(self, p: PrefetchPlan) -> None:
        if p.lead_steps < 0:
            raise SpillError(
                f"prefetch lead must be >= 0 steps, got {p.lead_steps}"
            )
        if p.resident_bytes > self.capacity_bytes:
            raise SpillError(
                f"prefetch resident region ({p.resident_bytes} bytes) "
                f"exceeds the {self.capacity_bytes}-byte capacity"
            )
        if (
            set(p.windows) != set(self.spilled)
            or set(p.window_leads) != set(self.spilled)
            or set(p.resident_offsets) != set(self.resident_offsets)
        ):
            raise SpillError(
                "prefetch layout is inconsistent: buffer sets disagree "
                "with the base spill plan"
            )
        for b, ws in p.windows.items():
            base = self.windows[b]
            if len(ws) != len(base) or any(
                w.start != bw.start or w.end != bw.end
                for w, bw in zip(ws, base)
            ):
                raise SpillError(
                    f"buffer {b}: prefetch windows disagree with the "
                    "base staging windows"
                )
            for w in ws:
                if w.offset < 0 or w.offset > p.resident_bytes:
                    raise SpillError(
                        f"buffer {b}: prefetch staging offset {w.offset} "
                        f"escapes the {p.resident_bytes}-byte region"
                    )
            leads = p.window_leads[b]
            if len(leads) != len(ws) or any(
                ld < 0 or ld > p.lead_steps for ld in leads
            ):
                raise SpillError(
                    f"buffer {b}: prefetch window leads are malformed "
                    f"(want {len(ws)} leads in [0, {p.lead_steps}])"
                )

    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible document (artifact embedding)."""
        doc = {
            "format": SPILL_FORMAT,
            "capacity_bytes": self.capacity_bytes,
            "policy": self.policy,
            "resident_bytes": self.resident_bytes,
            "spill_bytes": self.spill_bytes,
            "spilled": sorted(self.spilled),
            "resident_offsets": {
                str(b): off for b, off in sorted(self.resident_offsets.items())
            },
            "home_offsets": {
                str(b): off for b, off in sorted(self.home_offsets.items())
            },
            "windows": {
                str(b): [[w.start, w.end, w.offset] for w in ws]
                for b, ws in sorted(self.windows.items())
            },
        }
        if self.prefetch is not None:
            doc["prefetch"] = self.prefetch.to_doc()
        if self.tile_bytes is not None:
            doc["tile_bytes"] = self.tile_bytes
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "SpillPlan":
        if doc.get("format") != SPILL_FORMAT:
            raise SpillError(
                f"unsupported spill plan format {doc.get('format')!r}"
            )
        return cls(
            capacity_bytes=int(doc["capacity_bytes"]),
            policy=str(doc["policy"]),
            resident_bytes=int(doc["resident_bytes"]),
            spill_bytes=int(doc["spill_bytes"]),
            spilled=frozenset(int(b) for b in doc["spilled"]),
            resident_offsets={
                int(b): int(off)
                for b, off in doc["resident_offsets"].items()
            },
            home_offsets={
                int(b): int(off) for b, off in doc["home_offsets"].items()
            },
            windows={
                int(b): tuple(
                    StageWindow(int(s), int(e), int(off)) for s, e, off in ws
                )
                for b, ws in doc["windows"].items()
            },
            prefetch=(
                PrefetchPlan.from_doc(doc["prefetch"])
                if doc.get("prefetch") is not None
                else None
            ),
            tile_bytes=(
                int(doc["tile_bytes"])
                if doc.get("tile_bytes") is not None
                else None
            ),
        ).validate()


# ----------------------------------------------------------------------
# schedule -> buffer touch structure
# ----------------------------------------------------------------------
def step_touches(
    graph: Graph, schedule: Schedule, model: BufferModel
) -> list[tuple[int, ...]]:
    """Buffers each schedule step touches, executor-faithfully.

    Step *s* (executing node *u*) touches *u*'s own buffer (written)
    plus every input's buffer (read) — the exact set of arena ranges
    the plan executor's kernel for *u* binds views into. Order is own
    buffer first, then inputs in declaration order, deduplicated."""
    idx = model.index
    out: list[tuple[int, ...]] = []
    for name in schedule:
        u = idx.index[name]
        seen: dict[int, None] = {model.buffer_of[u]: None}
        for p in idx.preds[u]:
            seen.setdefault(model.buffer_of[p], None)
        out.append(tuple(seen))
    return out


def buffer_access_trace(
    graph: Graph, schedule: Schedule, model: BufferModel
) -> AccessTrace:
    """Buffer-granularity access trace for the replacement policies.

    The Fig 11 simulator traces at tile granularity; spill planning
    moves whole buffers, so victims are ranked over buffer-level
    accesses. Object ids are ``(buffer_id, 0)`` tuples, matching the
    ``(tensor, tile)`` shape :mod:`repro.memsim.policies` expects."""
    idx = model.index
    raw: list[Access] = []
    for step, name in enumerate(schedule):
        u = idx.index[name]
        own = model.buffer_of[u]
        seen: dict[int, None] = {}
        for p in idx.preds[u]:
            seen.setdefault(model.buffer_of[p], None)
        for b in seen:
            if b != own:
                raw.append(
                    Access(step, name, (b, 0), model.buf_size[b], "read", False)
                )
        raw.append(
            Access(step, name, (own, 0), model.buf_size[own], "write", False)
        )
    positions: dict[tuple[int, int], list[int]] = {}
    for i, acc in enumerate(raw):
        positions.setdefault(acc.buffer_id, []).append(i)
    return AccessTrace(
        accesses=tuple(raw),
        positions={obj: tuple(ps) for obj, ps in positions.items()},
        n_buffers=model.n_buffers,
    )


def _live_table(
    lifetimes: Iterable[BufferLifetime], n_steps: int
) -> list[list[int]]:
    """Per-step list of live buffer ids."""
    live: list[list[int]] = [[] for _ in range(n_steps)]
    for lt in lifetimes:
        for s in range(lt.start, min(lt.end, n_steps)):
            live[s].append(lt.buffer_id)
    return live


def _select_spilled(
    model: BufferModel,
    live: list[list[int]],
    touch: list[tuple[int, ...]],
    capacity: int,
    policy_name: str,
    trace: AccessTrace,
    pos_end: list[int],
    slot: Sequence[int] | None = None,
) -> frozenset[int]:
    """Pick the spilled buffer set for a selection capacity.

    Iteratively finds the step with the highest ideal resident demand
    (resident live bytes + staged touch bytes) and spills the victim
    the replacement policy names among buffers live-but-untouched
    there, until every step fits. Belady uses exact next-use distances
    from the trace; LRU/FIFO replay the access history up to the
    overflow point. ``slot`` gives the staged footprint per buffer
    (tile-clamped under tiling; defaults to full sizes)."""
    size = model.buf_size
    if slot is None:
        slot = size
    spilled: set[int] = set()
    n_steps = len(touch)
    for _ in range(model.n_buffers + 1):
        peak_step, peak = -1, 0
        for s in range(n_steps):
            demand = sum(size[b] for b in live[s] if b not in spilled)
            demand += sum(slot[b] for b in touch[s] if b in spilled)
            if demand > peak:
                peak_step, peak = s, demand
        if peak <= capacity:
            return frozenset(spilled)
        # cold buffers (live-but-untouched at the peak step) spill for
        # free at this step; buffers touched there still pay their
        # staged footprint, so they only help when tiling shrinks it
        # (slot < size) — and they thrash a window per touch run, so
        # they are a last resort, not peers of the cold pool
        candidates = {
            (b, 0)
            for b in live[peak_step]
            if b not in spilled and b not in touch[peak_step]
        }
        if not candidates:
            candidates = {
                (b, 0)
                for b in touch[peak_step]
                if b not in spilled and slot[b] < size[b]
            }
        if not candidates:
            raise SpillError(
                f"no spill configuration fits {capacity} bytes on-chip: "
                f"step {peak_step} needs {peak} bytes staged at once"
            )
        policy = make_policy(policy_name, trace)
        position = pos_end[peak_step]
        if not isinstance(policy, BeladyPolicy):
            # reactive policies rank by history: replay it
            for i in range(position + 1):
                acc = trace.accesses[i]
                policy.on_access(acc.buffer_id, i)
        victim = policy.victim(candidates, position)
        spilled.add(victim[0])
    raise SpillError(
        f"spill selection did not converge under {capacity} bytes"
    )  # pragma: no cover - loop is bounded by construction


def _stage_runs(
    touch: list[tuple[int, ...]], b: int
) -> list[tuple[int, int]]:
    """Maximal runs of consecutive steps touching buffer ``b``, as
    inclusive ``(first, last)`` step pairs."""
    runs: list[tuple[int, int]] = []
    for s, bufs in enumerate(touch):
        if b not in bufs:
            continue
        if runs and runs[-1][1] == s - 1:
            runs[-1] = (runs[-1][0], s)
        else:
            runs.append((s, s))
    return runs


def _layout_staging(
    plan: AllocationPlan,
    spilled: frozenset[int],
    runs_of: dict[int, list[tuple[int, int]]],
    size: Sequence[int],
    leads: int | dict[tuple[int, int], int],
) -> tuple[int, dict[int, int], dict[tuple[int, int], int]]:
    """Allocate the resident region: full lifetimes for resident
    buffers plus one interval per staging window of each spilled
    buffer, window ``(b, k)``'s interval head-extended by its lead
    (``leads`` is a uniform int or a per-window map). With lead 0 this
    is the base (inline) layout; with a positive lead, windows whose
    extended intervals overlap land on disjoint ping/pong slots, making
    the early fetch safe. Writebacks take no tail reservation — the
    executor drains them asynchronously and syncs at the slot's first
    actual reuse. Returns ``(region_bytes, resident_offsets,
    window_offsets)``."""
    intervals: list[BufferLifetime] = []
    tag: list[tuple] = []  # synthetic id -> ("res", b) | ("win", b, k)
    for lt in plan.lifetimes:
        if lt.buffer_id in spilled:
            continue
        intervals.append(
            BufferLifetime(
                buffer_id=len(tag),
                size=lt.size,
                start=lt.start,
                end=lt.end,
                producers=lt.producers,
            )
        )
        tag.append(("res", lt.buffer_id))
    for b in sorted(spilled):
        for k, (s0, s1) in enumerate(runs_of[b]):
            lead = leads if isinstance(leads, int) else leads[(b, k)]
            intervals.append(
                BufferLifetime(
                    buffer_id=len(tag),
                    size=size[b],
                    start=max(0, s0 - lead),
                    end=s1 + 1,
                    producers=(),
                )
            )
            tag.append(("win", b, k))
    # two offset allocators, tightest region wins (fragmentation
    # profiles differ; both only ever see the same interval set)
    region = min(
        (greedy_by_size_plan(intervals), first_fit_arena(intervals)),
        key=lambda r: r.arena_bytes,
    )
    resident_offsets: dict[int, int] = {}
    window_offsets: dict[tuple[int, int], int] = {}
    for synthetic_id, entry in enumerate(tag):
        if entry[0] == "res":
            resident_offsets[entry[1]] = region.offsets[synthetic_id]
        else:
            window_offsets[(entry[1], entry[2])] = region.offsets[synthetic_id]
    return region.arena_bytes, resident_offsets, window_offsets


#: allocator-call budget for per-window lead refinement — keeps spill
#: planning bounded on schedules with many staging windows
_LEAD_ASSIGN_BUDGET = 1500


def _assign_leads(
    plan: AllocationPlan,
    spilled: frozenset[int],
    runs_of: dict[int, list[tuple[int, int]]],
    size: Sequence[int],
    capacity_bytes: int,
    max_lead: int,
) -> dict[tuple[int, int], int]:
    """Grant each staging window as much prefetch lead as the capacity
    allows. Fast path: a uniform lead (halving from ``max_lead``) for
    the common case with slack. Refinement: round-robin over windows,
    granting one step at a time while the extended region still fits —
    windows crossing the schedule's peak demand naturally end at 0 and
    stay inline. Deterministic and bounded by an allocator-call
    budget."""
    keys = [(b, k) for b in sorted(spilled) for k in range(len(runs_of[b]))]
    leads = dict.fromkeys(keys, 0)
    budget = _LEAD_ASSIGN_BUDGET

    def fits() -> bool:
        nonlocal budget
        budget -= 1
        region_bytes, _, _ = _layout_staging(
            plan, spilled, runs_of, size, leads
        )
        return region_bytes <= capacity_bytes

    uniform = max_lead
    while uniform >= 1 and budget > 0:
        leads = dict.fromkeys(keys, uniform)
        if fits():
            break
        uniform //= 2
    else:
        leads = dict.fromkeys(keys, 0)

    improved = True
    while improved and budget > 0:
        improved = False
        for key in keys:
            if leads[key] >= max_lead or budget <= 0:
                continue
            leads[key] += 1
            if fits():
                improved = True
            else:
                leads[key] -= 1
    return leads


def _windows_from(
    spilled: frozenset[int],
    runs_of: dict[int, list[tuple[int, int]]],
    window_offsets: dict[tuple[int, int], int],
) -> dict[int, tuple[StageWindow, ...]]:
    return {
        b: tuple(
            StageWindow(start=s0, end=s1 + 1, offset=window_offsets[(b, k)])
            for k, (s0, s1) in enumerate(runs_of[b])
        )
        for b in sorted(spilled)
    }


def min_capacity_bytes(
    graph: Graph,
    schedule: Schedule,
    model: BufferModel | None = None,
    tile_bytes: int | None = None,
) -> int:
    """The irreducible on-chip floor of ``schedule``: the largest
    single-step working set. Whole-buffer staging must hold every
    tensor one kernel touches simultaneously; with ``tile_bytes`` set,
    each touched buffer needs only a ``min(size, tile_bytes)`` tile
    slot, so the floor drops from the largest-buffer to the
    largest-tile working set — no spill configuration can execute
    below this."""
    model = model or BufferModel.of(graph)
    touch = step_touches(graph, schedule, model)
    tile = resolve_tile_bytes(tile_bytes, default=None)
    size = model.buf_size
    if tile is None:
        return max((sum(size[b] for b in bufs) for bufs in touch), default=0)
    return max(
        (sum(min(size[b], tile) for b in bufs) for bufs in touch), default=0
    )


def plan_spill(
    graph: Graph,
    schedule: Schedule,
    plan: AllocationPlan,
    capacity_bytes: int,
    policy: str = "belady",
    model: BufferModel | None = None,
    prefetch_lead: int = 8,
    tile_bytes: int | None = None,
) -> SpillPlan:
    """Partition ``plan``'s buffers into resident vs spilled so the
    resident region fits ``capacity_bytes`` (see module docstring).

    Deterministic: the same ``(graph, schedule, plan, capacity,
    policy, tile_bytes)`` always yields the same plan. Raises
    :class:`SpillError` when the capacity is below the schedule's
    irreducible single-step working set — no spill configuration can
    help there, because every tensor a kernel touches must be staged
    on-chip while it runs.

    ``prefetch_lead`` asks for a ping/pong :class:`PrefetchPlan`
    alongside the base layout (``0`` disables it); each window gets as
    much fetch lead as the capacity allows, down to 0 for windows
    crossing the schedule's peak (writeback overlap needs no lead, so
    the layout ships even when every lead lands at 0).

    ``tile_bytes`` switches spilled buffers to tile streaming: staging
    slots shrink to ``min(size, tile_bytes)`` and the executor moves
    :func:`repro.memsim.trace.tile_spans` pieces through them, so the
    capacity floor drops to the largest-tile working set. ``None`` (and
    ``0``) keep whole-buffer staging."""
    if capacity_bytes <= 0:
        raise SpillError(
            f"on-chip capacity must be positive, got {capacity_bytes}"
        )
    if policy not in POLICY_NAMES:
        raise ValueError(
            f"unknown replacement policy {policy!r}; pick one of "
            f"{POLICY_NAMES}"
        )
    tile = resolve_tile_bytes(tile_bytes, default=None)
    model = model or BufferModel.of(graph)
    if plan.arena_bytes <= capacity_bytes:
        # the whole arena fits: trivial plan, zero traffic
        return SpillPlan(
            capacity_bytes=capacity_bytes,
            policy=policy,
            resident_bytes=plan.arena_bytes,
            spill_bytes=0,
            spilled=frozenset(),
            resident_offsets=dict(plan.offsets),
            home_offsets={},
            windows={},
            tile_bytes=tile,
        ).validate()

    size = model.buf_size
    slot: Sequence[int] = (
        size if tile is None else [min(s, tile) for s in size]
    )
    touch = step_touches(graph, schedule, model)
    n_steps = len(touch)
    min_needed = max(
        (sum(slot[b] for b in bufs) for bufs in touch), default=0
    )
    if capacity_bytes < min_needed:
        raise SpillError(
            f"{graph.name}: no spill plan fits {capacity_bytes} bytes "
            f"on-chip; the schedule's largest single-step working set "
            f"needs {min_needed} bytes staged at once (plan arena: "
            f"{plan.arena_bytes} bytes)"
        )

    trace = buffer_access_trace(graph, schedule, model)
    # pos_end[s]: last trace index at step <= s ("strictly after step
    # s" is then bisect_right territory for the policies)
    pos_end: list[int] = [-1] * n_steps
    for i, acc in enumerate(trace.accesses):
        pos_end[acc.step] = i
    for s in range(1, n_steps):
        if pos_end[s] < 0:
            pos_end[s] = pos_end[s - 1]

    live = _live_table(plan.lifetimes, n_steps)

    # Selection works at the ideal (sum-of-live) level; the allocator
    # can fragment above it, so tighten the selection capacity by the
    # observed overage and retry until the *allocated* region fits —
    # clamped at the irreducible floor, which gets a last-resort try.
    select_capacity = capacity_bytes
    for _ in range(64):
        spilled = _select_spilled(
            model, live, touch, select_capacity, policy, trace, pos_end, slot
        )
        runs_of: dict[int, list[tuple[int, int]]] = {
            b: _stage_runs(touch, b) for b in sorted(spilled)
        }
        region_bytes, resident_offsets, window_offsets = _layout_staging(
            plan, spilled, runs_of, slot, leads=0
        )
        if region_bytes <= capacity_bytes:
            break
        if select_capacity <= min_needed:
            raise SpillError(
                f"{graph.name}: allocator fragmentation defeats every "
                f"spill configuration under {capacity_bytes} bytes "
                f"(tightest region: {region_bytes} bytes)"
            )
        select_capacity = max(
            min_needed, select_capacity - (region_bytes - capacity_bytes)
        )
    else:  # pragma: no cover - select_capacity strictly decreases
        raise SpillError(
            f"{graph.name}: spill planning did not converge under "
            f"{capacity_bytes} bytes"
        )

    home_offsets: dict[int, int] = {}
    cursor = 0
    for b in sorted(spilled):
        home_offsets[b] = cursor
        cursor += size[b]

    # Ping/pong layout for overlapped transfers: grant each window as
    # much fetch lead as the capacity allows. Even all-zero leads ship
    # a prefetch layout (identical offsets to the base plan): the
    # executor still overlaps every writeback behind compute.
    prefetch: PrefetchPlan | None = None
    if prefetch_lead > 0:
        leads = _assign_leads(
            plan, spilled, runs_of, slot, capacity_bytes, prefetch_lead
        )
        pf_bytes, pf_resident, pf_windows = _layout_staging(
            plan, spilled, runs_of, slot, leads
        )
        prefetch = PrefetchPlan(
            lead_steps=max(leads.values(), default=0),
            resident_bytes=pf_bytes,
            resident_offsets=pf_resident,
            windows=_windows_from(spilled, runs_of, pf_windows),
            window_leads={
                b: tuple(leads[(b, k)] for k in range(len(runs_of[b])))
                for b in sorted(spilled)
            },
        )

    return SpillPlan(
        capacity_bytes=capacity_bytes,
        policy=policy,
        resident_bytes=region_bytes,
        spill_bytes=cursor,
        spilled=spilled,
        resident_offsets=resident_offsets,
        home_offsets=home_offsets,
        windows=_windows_from(spilled, runs_of, window_offsets),
        prefetch=prefetch,
        tile_bytes=tile,
    ).validate()
