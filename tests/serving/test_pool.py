"""ArenaPool: reuse, budget admission control, eviction, baseline mode."""

import threading

import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import AdmissionError, ServingError
from repro.scheduler.device import DeviceSpec
from repro.serving import ArenaPool, ModelRegistry


@pytest.fixture
def registry(chain_graph, diamond_graph):
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(chain_graph), name="chain")
    registry.register(pipeline.compile(diamond_graph), name="diamond")
    return registry


class TestReuse:
    def test_acquire_release_reuses_executor(self, registry):
        pool = ArenaPool(registry)
        first = pool.acquire("chain")
        pool.release("chain", first)
        second = pool.acquire("chain")
        assert second is first  # same arena, same placement work
        stats = pool.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_lease_context_manager(self, registry):
        pool = ArenaPool(registry)
        from repro.runtime.executor import random_feeds

        with pool.lease("diamond") as px:
            px.run(random_feeds(registry.get("diamond").graph))
        assert pool.stats().leased == 0

    def test_concurrent_leases_get_distinct_executors(self, registry):
        pool = ArenaPool(registry)
        a = pool.acquire("chain")
        b = pool.acquire("chain")
        assert a is not b
        pool.release("chain", a)
        pool.release("chain", b)
        assert pool.stats().misses == 2

    def test_resident_bytes_track_plan_arenas(self, registry):
        pool = ArenaPool(registry)
        px = pool.acquire("chain")
        assert pool.stats().resident_bytes == registry.arena_bytes("chain")
        pool.release("chain", px)  # idle executors stay resident
        assert pool.stats().resident_bytes == registry.arena_bytes("chain")

    def test_close_refuses_acquires(self, registry):
        pool = ArenaPool(registry)
        pool.release("chain", pool.acquire("chain"))
        pool.close()
        assert pool.stats().resident_bytes == 0
        with pytest.raises(ServingError, match="closed"):
            pool.acquire("chain")


class TestBudget:
    def test_never_fitting_model_rejected_outright(self, registry):
        pool = ArenaPool(registry, budget=DeviceSpec("tiny", 16))
        with pytest.raises(AdmissionError, match="never"):
            pool.acquire("chain")
        assert pool.stats().resident_bytes == 0

    def test_idle_arena_evicted_to_admit_other_model(self, registry):
        both = registry.arena_bytes("chain") + registry.arena_bytes("diamond")
        budget = both - 1  # fits either, never both
        pool = ArenaPool(registry, budget=budget)
        pool.release("chain", pool.acquire("chain"))
        px = pool.acquire("diamond")  # must evict the idle chain arena
        stats = pool.stats()
        assert stats.evictions == 1
        assert stats.resident_bytes == registry.arena_bytes("diamond")
        pool.release("diamond", px)

    def test_exhausted_budget_blocks_until_release(self, registry):
        budget = max(
            registry.arena_bytes("chain"), registry.arena_bytes("diamond")
        )
        pool = ArenaPool(registry, budget=budget)
        held = pool.acquire("chain")

        acquired = []

        def waiter():
            px = pool.acquire("diamond", timeout=10.0)
            acquired.append(px)
            pool.release("diamond", px)

        t = threading.Thread(target=waiter)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # blocked: everything resident is leased
        pool.release("chain", held)
        t.join(timeout=10.0)
        assert not t.is_alive() and acquired
        assert pool.stats().waits >= 1

    def test_admission_timeout_raises(self, registry):
        budget = registry.arena_bytes("chain")
        pool = ArenaPool(registry, budget=budget)
        held = pool.acquire("chain")
        with pytest.raises(AdmissionError, match="timed out"):
            pool.acquire("chain", timeout=0.05)
        pool.release("chain", held)


class TestBaselineMode:
    def test_no_reuse_discards_on_release(self, registry):
        pool = ArenaPool(registry, reuse=False)
        first = pool.acquire("chain")
        pool.release("chain", first)
        second = pool.acquire("chain")
        assert second is not first
        stats = pool.stats()
        assert stats.hits == 0 and stats.misses == 2
        pool.release("chain", second)
        assert pool.stats().resident_bytes == 0


class TestBatchCapablePool:
    def test_executors_are_batch_capable(self, registry):
        pool = ArenaPool(registry, batch_size=4)
        px = pool.acquire("chain")
        assert px.batch_size == 4
        pool.release("chain", px)

    def test_admission_accounts_n_times_arena(self, registry):
        pool = ArenaPool(registry, batch_size=4)
        px = pool.acquire("chain")
        assert pool.stats().resident_bytes == 4 * registry.arena_bytes("chain")
        assert pool.stats().resident_bytes == registry.arena_bytes(
            "chain", batch_size=4
        )
        pool.release("chain", px)

    def test_batched_arena_can_never_fit_small_budget(self, registry):
        # budget fits ONE per-sample arena but not the 4-row batch
        budget = registry.arena_bytes("chain") + 1
        assert ArenaPool(registry, budget=budget).acquire("chain")
        pool = ArenaPool(registry, budget=budget, batch_size=4)
        with pytest.raises(AdmissionError, match="batch 4"):
            pool.acquire("chain")

    def test_invalid_batch_size_rejected(self, registry):
        with pytest.raises(ServingError, match="batch_size"):
            ArenaPool(registry, batch_size=0)


class TestPreload:
    def test_first_request_after_preload_builds_nothing(self, registry):
        """The warmup contract: after preload, the first acquire of
        every model is a pool hit — zero builds on the request path."""
        pool = ArenaPool(registry)
        built = pool.preload()
        assert sorted(built) == ["chain", "diamond"]
        stats = pool.stats()
        assert stats.preloads == 2
        assert stats.misses == 0  # preload builds are not misses
        for name in ("chain", "diamond"):
            px = pool.acquire(name)
            pool.release(name, px)
        stats = pool.stats()
        assert stats.misses == 0  # no build happened on a request
        assert stats.hits == 2

    def test_preload_is_idempotent(self, registry):
        pool = ArenaPool(registry)
        pool.preload()
        assert pool.preload() == []  # everything already warm
        assert pool.stats().preloads == 2

    def test_preload_skips_what_does_not_fit(self, registry):
        chain = registry.arena_bytes("chain")
        diamond = registry.arena_bytes("diamond")
        budget = max(chain, diamond)  # fits the bigger one alone
        pool = ArenaPool(registry, budget=budget)
        built = pool.preload()
        # preload never evicts and never blocks: exactly one fits
        assert len(built) == 1
        assert pool.stats().evictions == 0
        assert pool.stats().resident_bytes <= budget

    def test_preload_noop_without_pooling(self, registry):
        pool = ArenaPool(registry, reuse=False)
        assert pool.preload() == []
        assert pool.stats().preloads == 0

    def test_preload_closed_pool_raises(self, registry):
        pool = ArenaPool(registry)
        pool.close()
        with pytest.raises(ServingError, match="closed"):
            pool.preload()


class TestAdmissionDeadline:
    def test_timeout_is_absolute_under_spurious_wakeups(self, registry):
        """Notifications that don't free budget must not reset the
        admission clock: acquire times out against an absolute
        deadline, not per-wait."""
        import time

        budget = registry.arena_bytes("chain")
        pool = ArenaPool(registry, budget=budget)
        held = pool.acquire("chain")
        stop = threading.Event()

        def heckle():
            while not stop.is_set():
                with pool._cond:
                    pool._cond.notify_all()
                time.sleep(0.02)

        heckler = threading.Thread(target=heckle)
        heckler.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(AdmissionError, match="timed out"):
                pool.acquire("chain", timeout=0.4)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            heckler.join()
            pool.release("chain", held)
        assert 0.3 <= elapsed < 2.0
