"""Graph JSON round-trips and the canonical content signature."""

import pytest

from repro.exceptions import GraphError
from repro.graph.serialization import (
    graph_from_dict,
    graph_signature,
    graph_to_dict,
    load_graph,
    save_graph,
)

from tests.conftest import random_dag_graph


class TestRoundTrip:
    def test_simple(self, concat_conv_graph):
        doc = graph_to_dict(concat_conv_graph)
        assert graph_from_dict(doc) == concat_conv_graph

    def test_preserves_attrs_tuples(self, concat_conv_graph):
        doc = graph_to_dict(concat_conv_graph)
        back = graph_from_dict(doc)
        head = back.node("head")
        assert head.attrs["out_channels"] == 5
        assert head.attrs.get("stride") == 2

    def test_memory_semantics_survive(self):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(_views_graph())
        back = graph_from_dict(graph_to_dict(g))
        assert back == g
        assert back.node("cat").memory.view

    def test_file_round_trip(self, tmp_path, diamond_graph):
        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert load_graph(path) == diamond_graph

    def test_random_graphs_round_trip(self):
        for seed in range(10):
            g = random_dag_graph(12, seed, with_views=True)
            assert graph_from_dict(graph_to_dict(g)) == g

    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError, match="format"):
            graph_from_dict({"format": "bogus", "nodes": []})

    def test_doc_is_json_serialisable(self, hourglass_graph):
        import json

        json.dumps(graph_to_dict(hourglass_graph))


def _relabel(graph, mapping):
    """Rebuild ``graph`` with every node renamed through ``mapping``."""
    from repro.graph.graph import Graph

    out = Graph(graph.name)
    for node in graph:
        out.add(
            node.replace(
                name=mapping[node.name],
                inputs=tuple(mapping[s] for s in node.inputs),
            )
        )
    return out


class TestGraphSignature:
    def test_deterministic(self, diamond_graph):
        assert graph_signature(diamond_graph) == graph_signature(diamond_graph)
        assert len(graph_signature(diamond_graph)) == 64  # sha256 hex

    def test_survives_json_round_trip(self, concat_conv_graph):
        back = graph_from_dict(graph_to_dict(concat_conv_graph))
        assert graph_signature(back) == graph_signature(concat_conv_graph)

    def test_invariant_under_relabeling(self):
        for seed in range(8):
            g = random_dag_graph(12, seed, with_views=True)
            mapping = {n: f"renamed_{i}" for i, n in enumerate(g.node_names)}
            assert graph_signature(_relabel(g, mapping)) == graph_signature(g)

    def test_invariant_under_insertion_order(self):
        """Two independent branches inserted in either order hash alike."""
        from repro.graph.graph import Graph
        from repro.graph.node import Node
        from repro.graph.tensor import TensorSpec

        def build(first_branch):
            g = Graph("order")
            g.add(Node("x", "input", (), TensorSpec((4, 2, 2))))
            branches = [
                Node("a", "blob", ("x",), TensorSpec((2, 2, 2))),
                Node("b", "blob", ("x",), TensorSpec((3, 2, 2))),
            ]
            if first_branch == "b":
                branches.reverse()
            for n in branches:
                g.add(n)
            g.add(Node("join", "blob", ("a", "b"), TensorSpec((1, 2, 2))))
            return g

        assert graph_signature(build("a")) == graph_signature(build("b"))

    def test_sensitive_to_structure(self, diamond_graph):
        sigs = {graph_signature(diamond_graph)}
        for seed in range(6):
            sigs.add(graph_signature(random_dag_graph(10, seed)))
            sigs.add(graph_signature(random_dag_graph(11, seed)))
        assert len(sigs) == 13  # all distinct

    def test_sensitive_to_shapes_and_attrs(self):
        from repro.graph.graph import Graph
        from repro.graph.node import Node
        from repro.graph.tensor import TensorSpec

        def build(shape=(4, 2, 2), attrs=None):
            g = Graph("g")
            g.add(Node("x", "input", (), TensorSpec(shape)))
            g.add(Node("y", "blob", ("x",), TensorSpec((2, 2, 2)), attrs or {}))
            return g

        base = graph_signature(build())
        assert graph_signature(build(shape=(5, 2, 2))) != base
        assert graph_signature(build(attrs={"k": 3})) != base

    def test_distinguishes_twin_wirings(self):
        """Two graphs with identical twin producers but different
        consumer wiring must NOT collide (a pure downward Merkle hash
        cannot tell these apart — the upward pass exists for this)."""
        from repro.graph.graph import Graph
        from repro.graph.node import Node
        from repro.graph.tensor import TensorSpec

        def build(d_consumes: str) -> Graph:
            g = Graph("twins")
            g.add(Node("x", "input", (), TensorSpec((4, 2, 2))))
            g.add(Node("a", "blob", ("x",), TensorSpec((2, 2, 2))))
            g.add(Node("b", "blob", ("x",), TensorSpec((2, 2, 2))))  # twin of a
            g.add(Node("c", "blob", ("a",), TensorSpec((1, 2, 2))))
            g.add(Node("d", "blob", (d_consumes,), TensorSpec((1, 2, 2))))
            g.add(Node("e", "blob", ("c", "d"), TensorSpec((1, 2, 2))))
            return g

        balanced = build("b")  # a->c, b->d
        lopsided = build("a")  # a feeds both; b is a dead sink
        assert graph_signature(balanced) != graph_signature(lopsided)

    def test_canonical_keys_are_a_bijection(self):
        from repro.graph.serialization import canonical_node_keys

        for seed in range(6):
            g = random_dag_graph(12, seed, with_views=True)
            keys = canonical_node_keys(g)
            assert set(keys) == set(g.node_names)
            assert len(set(keys.values())) == len(g)  # unique keys

    def test_canonical_keys_translate_across_relabelings(self):
        from repro.graph.serialization import canonical_node_keys

        g = random_dag_graph(10, seed=2)
        mapping = {n: f"z{i}" for i, n in enumerate(g.node_names)}
        relabeled = _relabel(g, mapping)
        keys_g = canonical_node_keys(g)
        keys_r = canonical_node_keys(relabeled)
        # same canonical key set, and key-joining recovers the renaming
        assert set(keys_g.values()) == set(keys_r.values())
        inverse = {k: n for n, k in keys_r.items()}
        translated = {n: inverse[k] for n, k in keys_g.items()}
        assert translated == mapping

    def test_name_of_graph_ignored(self, diamond_graph):
        clone = diamond_graph.copy(name="other-name")
        assert graph_signature(clone) == graph_signature(diamond_graph)


def _views_graph():
    from repro.graph.builder import GraphBuilder

    b = GraphBuilder("v")
    x = b.input("x", (2, 4, 4))
    l = b.conv2d(x, 2, name="l")
    r = b.conv2d(x, 3, name="r")
    cat = b.concat([l, r], name="cat")
    b.conv2d(cat, 2, name="head")
    return b.build()
