"""Simulated-annealing baseline (extension)."""

import pytest

from repro.scheduler.annealing import anneal_schedule
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule

from tests.conftest import random_dag_graph


class TestAnnealing:
    def test_schedule_valid(self, hourglass_graph):
        res = anneal_schedule(hourglass_graph, iterations=300, seed=1)
        res.schedule.validate(hourglass_graph)

    def test_peak_consistent_with_simulation(self, diamond_graph):
        res = anneal_schedule(diamond_graph, iterations=200)
        assert (
            simulate_schedule(diamond_graph, res.schedule).peak_bytes
            == res.peak_bytes
        )

    def test_never_beats_dp(self, hourglass_graph):
        """The DP is optimal; annealing can only match it."""
        dp = dp_schedule(hourglass_graph).peak_bytes
        res = anneal_schedule(hourglass_graph, iterations=500, seed=0)
        assert res.peak_bytes >= dp

    @pytest.mark.parametrize("seed", range(5))
    def test_never_beats_dp_on_random_dags(self, seed):
        g = random_dag_graph(10, seed)
        dp = dp_schedule(g).peak_bytes
        res = anneal_schedule(g, iterations=400, seed=seed)
        assert res.peak_bytes >= dp

    def test_finds_optimum_on_tiny_graph(self, diamond_graph):
        dp = dp_schedule(diamond_graph).peak_bytes
        res = anneal_schedule(diamond_graph, iterations=500, restarts=4)
        assert res.peak_bytes == dp

    def test_deterministic_by_seed(self, hourglass_graph):
        a = anneal_schedule(hourglass_graph, iterations=200, seed=3)
        b = anneal_schedule(hourglass_graph, iterations=200, seed=3)
        assert a.schedule.order == b.schedule.order
        assert a.peak_bytes == b.peak_bytes

    def test_evaluations_counted(self, diamond_graph):
        res = anneal_schedule(diamond_graph, iterations=100, restarts=2)
        assert res.evaluations >= 2  # at least the two restart seeds
        assert res.accepted_moves <= res.evaluations

    def test_more_iterations_never_hurt(self, hourglass_graph):
        short = anneal_schedule(hourglass_graph, iterations=50, seed=7)
        long = anneal_schedule(hourglass_graph, iterations=2000, seed=7)
        assert long.peak_bytes <= short.peak_bytes

    def test_single_node_graph(self):
        g = random_dag_graph(1, 0)
        res = anneal_schedule(g, iterations=10)
        assert len(res.schedule) == 1
