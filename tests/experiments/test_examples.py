"""Every example under examples/ must run end to end.

Executed in-process (runpy) with stdout captured, on the same
interpreter as the test run — catching API drift in the documented
entry points.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str) -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buf.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "SERENITY peak" in out and "reduction" in out
        assert "chosen schedule:" in out

    def test_edge_deployment(self):
        out = _run("edge_deployment.py")
        assert "SparkFun Edge" in out
        assert "off-chip traffic" in out
        # the sweep must show SERENITY removing traffic somewhere
        assert "removed" in out or "on-chip" in out

    def test_rewriting_study(self):
        out = _run("rewriting_study.py")
        assert "equivalent=True" in out
        assert "rewriting reduction" in out

    def test_budgeted_compilation(self):
        out = _run("budgeted_compilation.py")
        assert "no solution" in out  # the manual probes cross mu*
        assert "smallest device" in out

    @pytest.mark.slow
    def test_randwire_exploration(self):
        out = _run("randwire_exploration.py")
        assert "WS graphs" in out.upper() or "ws" in out.lower()
        assert "schedule-space" in out
