"""Fig 10 + Fig 15: peak-memory reduction vs the TFLite baseline.

Regenerates the paper's headline result over all nine cells: the
DP-only and DP+rewriting arena peaks, their ratios to the baseline, and
the geomean (paper: 1.68x / 1.86x).
"""

from repro.analysis.reporting import geomean
from repro.experiments import fig10_peak


def test_fig10_peak_memory(benchmark, save_result):
    rows = benchmark.pedantic(fig10_peak.run, rounds=1, iterations=1)
    save_result("fig10_fig15_peak_memory", fig10_peak.render(rows))

    assert len(rows) == 9
    for row in rows:
        # SERENITY never loses to the baseline, rewriting never to DP-only
        assert row.ratio_dp >= 1.0
        assert row.ratio_gr >= row.ratio_dp - 1e-9

    gm_dp = geomean([r.ratio_dp for r in rows])
    gm_gr = geomean([r.ratio_gr for r in rows])
    # paper: 1.68x / 1.86x; the shape to hold: substantial average
    # reduction, rewriting adding on top
    assert gm_dp > 1.3
    assert gm_gr > gm_dp

    by_key = {r.key: r for r in rows}
    # rewriting must pay off on the concat-heavy SwiftNet cells...
    for key in ("swiftnet-a", "swiftnet-b", "swiftnet-c"):
        assert by_key[key].ratio_gr > by_key[key].ratio_dp
    # ...and be a no-op on RandWire (no concats) and DARTS (concat sink)
    for key in (
        "darts-normal",
        "randwire-c10-a",
        "randwire-c10-b",
        "randwire-c100-a",
        "randwire-c100-b",
        "randwire-c100-c",
    ):
        assert by_key[key].gr_kb == by_key[key].dp_kb
