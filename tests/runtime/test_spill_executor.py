"""Tiered-arena executor: bitwise parity under every spill configuration.

The ISSUE-5 acceptance matrix: every ``models.suite`` cell at on-chip
capacities {50%, 75%, 100%} of the planned peak (clamped to the
schedule's irreducible staging floor), batch N in {1, 8}, scrub in
{never, zero} — outputs bitwise-equal to the reference executor, twice
per configuration so the second run replays over stale arena *and*
stale spill-region bytes. Traffic accounting is asserted alongside:
zero at full capacity, positive when buffers spill, and exactly
``N x`` per-sample under batching (every row moves its own bytes).
"""

import numpy as np
import pytest

from repro.allocator.arena import plan_allocation
from repro.allocator.spill import min_capacity_bytes, plan_spill
from repro.models.suite import suite_cells
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.plan_executor import PlanExecutor
from repro.scheduler.registry import run_strategy

CAPACITY_FRACTIONS = (0.5, 0.75, 1.0)
BATCH_WIDTHS = (1, 8)
SCRUBS = ("never", "zero")


@pytest.fixture(scope="module")
def spill_suite():
    """One greedy compilation + spill plans + reference outputs per
    cell, shared across the whole (capacity, batch, scrub) matrix."""
    cache: dict = {}

    def get(key: str):
        if key not in cache:
            spec = next(c for c in suite_cells() if c.key == key)
            out = run_strategy("greedy", spec.factory())
            graph = out.scheduled_graph
            plan = plan_allocation(graph, out.schedule)
            params = init_params(graph, seed=0)
            cache[key] = {
                "graph": graph,
                "schedule": out.schedule,
                "plan": plan,
                "params": params,
                "floor": min_capacity_bytes(graph, out.schedule),
                "ref": Executor(graph, params=params),
                "spills": {},  # capacity fraction -> SpillPlan
                "want": {},  # n -> (feeds, stacked, per-sample refs)
            }
        return cache[key]

    return get


def _capacity(cell, frac: float) -> int:
    """The tested capacity: frac x planned peak, clamped to the
    irreducible floor (whole-buffer staging cannot go below the
    largest single-step working set)."""
    return max(int(cell["plan"].arena_bytes * frac), cell["floor"])


def _spill_plan(cell, frac: float):
    if frac not in cell["spills"]:
        cell["spills"][frac] = plan_spill(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            _capacity(cell, frac),
        )
    return cell["spills"][frac]


def _references(cell, n: int):
    if n not in cell["want"]:
        graph = cell["graph"]
        feeds = [random_feeds(graph, seed=i) for i in range(n)]
        stacked = {k: np.stack([f[k] for f in feeds]) for k in feeds[0]}
        cell["want"][n] = (feeds, stacked, [cell["ref"].run(f) for f in feeds])
    return cell["want"][n]


class TestSpillParityMatrix:
    """Every cell x capacity x batch x scrub: bitwise, twice."""

    @pytest.mark.parametrize("scrub", SCRUBS)
    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    @pytest.mark.parametrize("frac", CAPACITY_FRACTIONS)
    @pytest.mark.parametrize("key", [c.key for c in suite_cells()])
    def test_cell_spilled_parity(self, spill_suite, key, frac, n, scrub):
        cell = spill_suite(key)
        spill = _spill_plan(cell, frac)
        feeds, stacked, want = _references(cell, n)
        px = PlanExecutor(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            params=cell["params"],
            batch_size=n,
            scrub=scrub,
            spill=spill,
        )
        for _round in range(2):
            got = (
                px.run(feeds[0]) if n == 1 else px.run_batch(stacked)
            )
            for b in range(n):
                for name in want[b]:
                    sample = got[name] if n == 1 else got[name][b]
                    np.testing.assert_array_equal(want[b][name], sample)
        stats = px.last_stats
        assert stats.capacity_bytes == spill.capacity_bytes
        assert stats.measured_peak_bytes <= spill.capacity_bytes
        n_eff = 1 if n == 1 else n
        if spill.is_trivial:
            assert stats.spill_bytes_total == 0
            assert stats.spill_fetches == 0
        else:
            assert stats.spill_bytes_total > 0
            # every batched row moves its own bytes: exactly N x solo
            assert stats.spill_bytes_total % n_eff == 0
            assert stats.spilled_buffers == len(spill.spilled)


TILE_BYTES = 8192


def _tiled_capacity(cell) -> int | None:
    """A capacity strictly below the whole-buffer floor that tiled
    staging can plan (the tile floor itself can be defeated by
    allocator fragmentation; 2x floor clamped below the whole floor
    always plans). ``None`` when the cell has no tile headroom."""
    tile_floor = min_capacity_bytes(
        cell["graph"], cell["schedule"], tile_bytes=TILE_BYTES
    )
    cap = max(tile_floor, min(cell["floor"] - 1, tile_floor * 2))
    return cap if cap < cell["floor"] else None


def _tiled_plan(cell, lead: int):
    key = ("tiled", lead)
    if key not in cell["spills"]:
        cap = _tiled_capacity(cell)
        if cap is None:
            cell["spills"][key] = None
        else:
            cell["spills"][key] = plan_spill(
                cell["graph"],
                cell["schedule"],
                cell["plan"],
                cap,
                prefetch_lead=lead,
                tile_bytes=TILE_BYTES,
            )
    return cell["spills"][key]


class TestTiledParityMatrix:
    """Tile streaming below the whole-buffer floor: every suite cell,
    prefetch on and off — capacities whole-buffer staging *refuses*
    must run bitwise-equal, twice per configuration."""

    @pytest.mark.parametrize("lead", [0, 8])
    @pytest.mark.parametrize("key", [c.key for c in suite_cells()])
    def test_cell_tiled_below_floor_parity(self, spill_suite, key, lead):
        cell = spill_suite(key)
        spill = _tiled_plan(cell, lead)
        if spill is None:
            pytest.skip(f"{key}: no tile headroom below the whole floor")
        # the defining property: whole-buffer staging cannot plan here
        from repro.exceptions import SpillError

        with pytest.raises(SpillError):
            plan_spill(
                cell["graph"],
                cell["schedule"],
                cell["plan"],
                spill.capacity_bytes,
            )
        feeds, _, want = _references(cell, 1)
        px = PlanExecutor(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            params=cell["params"],
            spill=spill,
        )
        for _round in range(2):
            got = px.run(feeds[0])
            for name in want[0]:
                np.testing.assert_array_equal(want[0][name], got[name])
        stats = px.last_stats
        assert stats.tile_bytes == TILE_BYTES
        assert stats.spill_bytes_total > 0
        assert stats.measured_peak_bytes <= spill.capacity_bytes
        if lead:
            assert spill.prefetch is not None

    @pytest.mark.parametrize("scrub", SCRUBS)
    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    @pytest.mark.parametrize("key", ["randwire-c10-b", "randwire-c100-c"])
    def test_tiled_batch_scrub_matrix(self, spill_suite, key, n, scrub):
        cell = spill_suite(key)
        spill = _tiled_plan(cell, 8)
        if spill is None:
            pytest.skip(f"{key}: no tile headroom below the whole floor")
        feeds, stacked, want = _references(cell, n)
        px = PlanExecutor(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            params=cell["params"],
            batch_size=n,
            scrub=scrub,
            spill=spill,
        )
        for _round in range(2):
            got = px.run(feeds[0]) if n == 1 else px.run_batch(stacked)
            for b in range(n):
                for name in want[b]:
                    sample = got[name] if n == 1 else got[name][b]
                    np.testing.assert_array_equal(want[b][name], sample)
        stats = px.last_stats
        n_eff = 1 if n == 1 else n
        assert stats.tile_bytes == TILE_BYTES
        assert stats.spill_bytes_total > 0
        assert stats.spill_bytes_total % n_eff == 0

    def test_tiled_moves_no_more_than_whole_at_equal_capacity(
        self, spill_suite
    ):
        """Range-clipped tile pieces never move more bytes than
        whole-buffer staging at the same capacity."""
        cell = spill_suite("randwire-c100-c")
        cap = _capacity(cell, 0.5)
        whole = plan_spill(
            cell["graph"], cell["schedule"], cell["plan"], cap
        )
        tiled = plan_spill(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            cap,
            tile_bytes=TILE_BYTES,
        )
        assert not whole.is_trivial
        feeds, _, _ = _references(cell, 1)
        moved = {}
        for label, sp in (("whole", whole), ("tiled", tiled)):
            px = PlanExecutor(
                cell["graph"], cell["schedule"], cell["plan"],
                params=cell["params"], spill=sp,
            )
            px.run(feeds[0])
            moved[label] = px.last_stats.spill_bytes_total
        assert moved["tiled"] <= moved["whole"]

    def test_traffic_report_carries_tile_bytes(self, spill_suite):
        cell = spill_suite("randwire-c10-b")
        spill = _tiled_plan(cell, 0)
        if spill is None:
            pytest.skip("no tile headroom below the whole floor")
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], spill=spill,
        )
        feeds, _, _ = _references(cell, 1)
        px.run(feeds[0])
        report = px.traffic_report()
        assert report.tile_bytes == TILE_BYTES
        assert report.total_bytes == px.last_stats.spill_bytes_total


class TestSpillSemantics:
    def test_batched_traffic_is_n_times_solo(self, spill_suite):
        cell = spill_suite("randwire-c100-c")
        spill = _spill_plan(cell, 0.5)
        assert not spill.is_trivial
        solo = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], spill=spill,
        )
        feeds, stacked, _ = _references(cell, 8)
        solo.run(feeds[0])
        per_sample = solo.last_stats.spill_bytes_total
        batched = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], batch_size=8, spill=spill,
        )
        batched.run_batch(stacked)
        assert batched.last_stats.spill_bytes_total == 8 * per_sample

    def test_pruned_outputs_stay_bitwise(self, spill_suite):
        """run(outputs=...) prunes execution; fetch/writeback insertion
        must follow the executed subset, not the full schedule."""
        cell = spill_suite("randwire-c10-b")
        spill = _spill_plan(cell, 0.5)
        assert not spill.is_trivial
        graph = cell["graph"]
        feeds, _, _ = _references(cell, 1)
        # an intermediate (non-sink) node roughly mid-schedule
        mid = [
            name
            for name in cell["schedule"]
            if graph.succs(name) and graph.node(name).op != "input"
        ]
        target = mid[len(mid) // 2]
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], spill=spill,
        )
        got = px.run(feeds[0], outputs=[target])
        want = cell["ref"].run(feeds[0], outputs=[target])
        np.testing.assert_array_equal(want[target], got[target])
        # pruned traffic never exceeds the full run's
        full_traffic = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], spill=spill,
        )
        full_traffic.run(feeds[0])
        assert (
            px.last_stats.spill_bytes_total
            <= full_traffic.last_stats.spill_bytes_total
        )

    def test_traffic_report_units(self, spill_suite):
        cell = spill_suite("randwire-c10-b")
        spill = _spill_plan(cell, 0.5)
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], spill=spill,
        )
        feeds, _, _ = _references(cell, 1)
        px.run(feeds[0])
        report = px.traffic_report()
        stats = px.last_stats
        assert report.capacity_bytes == spill.capacity_bytes
        assert report.policy == spill.policy
        assert report.bytes_in == stats.spill_bytes_in
        assert report.bytes_out == stats.spill_bytes_out
        assert report.total_bytes == stats.spill_bytes_total
        assert report.fetches == stats.spill_fetches
        assert report.writebacks == stats.spill_writebacks
        assert not report.eliminated

    def test_unspilled_traffic_report_is_zero(self, spill_suite):
        cell = spill_suite("randwire-c10-b")
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"],
        )
        feeds, _, _ = _references(cell, 1)
        px.run(feeds[0])
        report = px.traffic_report()
        assert report.eliminated
        assert report.policy == "resident"

    def test_traffic_report_requires_a_run(self, spill_suite):
        from repro.exceptions import ExecutionError

        cell = spill_suite("randwire-c10-b")
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"],
        )
        with pytest.raises(ExecutionError, match="no run"):
            px.traffic_report()

    def test_aliased_home_slots_rejected(self, spill_suite):
        """A corrupt plan whose home slots overlap must fail at
        construction, not corrupt data at run time (SpillPlan.validate
        cannot see buffer sizes; the executor cross-checks)."""
        from dataclasses import replace

        from repro.exceptions import ExecutionError

        cell = spill_suite("randwire-c10-b")
        spill = _spill_plan(cell, 0.5)
        assert len(spill.spilled) >= 2
        homes = dict(spill.home_offsets)
        a, b = sorted(spill.spilled)[:2]
        homes[b] = homes[a]  # alias two buffers onto one home slot
        corrupt = replace(spill, home_offsets=homes)
        with pytest.raises(ExecutionError, match="home slots overlap"):
            PlanExecutor(
                cell["graph"], cell["schedule"], cell["plan"],
                params=cell["params"], spill=corrupt,
            )

    def test_fresh_scrub_reallocates_both_regions(self, spill_suite):
        """scrub='fresh' rebuilds the resident arena AND the spill
        region per run; parity must survive the re-bind."""
        cell = spill_suite("randwire-c100-c")
        spill = _spill_plan(cell, 0.5)
        assert not spill.is_trivial
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], scrub="fresh", spill=spill,
        )
        feeds, _, want = _references(cell, 1)
        for _ in range(2):
            got = px.run(feeds[0])
            for k in want[0]:
                np.testing.assert_array_equal(want[0][k], got[k])
            assert px.last_stats.arena_reused is False

    def test_interleaved_solo_and_batched_spilled(self, spill_suite):
        """Solo runs on row 0 interleave with batched runs over the
        same spilled arena without corrupting either."""
        cell = spill_suite("randwire-c100-c")
        spill = _spill_plan(cell, 0.75)
        px = PlanExecutor(
            cell["graph"], cell["schedule"], cell["plan"],
            params=cell["params"], batch_size=4, spill=spill,
        )
        feeds, _, want1 = _references(cell, 1)
        feeds4, stacked4, want4 = _references(cell, 4)
        for _ in range(2):
            got = px.run(feeds[0])
            for k in want1[0]:
                np.testing.assert_array_equal(want1[0][k], got[k])
            gotb = px.run_batch(stacked4)
            for b in range(4):
                for k in want4[b]:
                    np.testing.assert_array_equal(want4[b][k], gotb[k][b])
