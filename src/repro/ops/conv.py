"""Convolution operators: full, depthwise, and the *partial* variants
introduced by identity graph rewriting (paper Section 3.3, Fig 9).

Attribute conventions (all ops):

``kernel``            int or (kh, kw)
``stride``            int or (sh, sw), default 1
``padding``           'same' | 'valid' | int | (ph, pw), default 'same'
``use_bias``          bool, default True (bias parameters counted once)

``conv2d`` additionally takes ``out_channels``; ``depthwise_conv2d`` takes
``multiplier`` (channel multiplier, default 1).

The partial ops carry bookkeeping attributes linking them back to the
rewritten pattern:

``partial_conv2d``            ``in_slice=(lo, hi)`` — channel range of the
                              original (pre-rewrite) concatenated input this
                              partial convolution covers; ``accumulate`` —
                              whether input 1 is a running accumulator.
``partial_depthwise_conv2d``  ``in_slice=(lo, hi)`` — kernel slice of the
                              original depthwise convolution.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops.base import (
    OpSchema,
    conv_output_hw,
    normalize_pair,
    register_op,
    require_chw,
)

__all__ = ["conv_attrs"]


def conv_attrs(attrs: dict[str, Any]) -> tuple[tuple[int, int], tuple[int, int], Any, bool]:
    """Normalised (kernel, stride, padding, use_bias) tuple."""
    kernel = normalize_pair(attrs.get("kernel", 1), "kernel")
    stride = normalize_pair(attrs.get("stride", 1), "stride")
    padding = attrs.get("padding", "same")
    use_bias = bool(attrs.get("use_bias", True))
    return kernel, stride, padding, use_bias


# ----------------------------------------------------------------------
# conv2d
# ----------------------------------------------------------------------
def _conv2d_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "conv2d")
    kernel, stride, padding, _ = conv_attrs(attrs)
    out_channels = int(attrs["out_channels"])
    if out_channels <= 0:
        raise ShapeError(f"conv2d out_channels must be positive, got {out_channels}")
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return TensorSpec((out_channels, oh, ow), inputs[0].dtype)


def _conv2d_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    c = inputs[0].shape[0]
    kernel, _, _, _ = conv_attrs(attrs)
    m, oh, ow = out.shape
    return m * oh * ow * c * kernel[0] * kernel[1]


def _conv2d_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    c = inputs[0].shape[0]
    kernel, _, _, use_bias = conv_attrs(attrs)
    m = out.shape[0]
    return m * c * kernel[0] * kernel[1] + (m if use_bias else 0)


register_op(
    OpSchema(
        name="conv2d",
        infer_shape=_conv2d_shape,
        macs=_conv2d_macs,
        weights=_conv2d_weights,
    )
)


# ----------------------------------------------------------------------
# partial_conv2d — channel-wise partitioned convolution (+ accumulation)
# ----------------------------------------------------------------------
def _partial_conv2d_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    out = _conv2d_shape(inputs[:1], attrs)
    if bool(attrs.get("accumulate", False)):
        if len(inputs) != 2:
            raise ShapeError("accumulating partial_conv2d needs (x, acc) inputs")
        if inputs[1].shape != out.shape:
            raise ShapeError(
                f"accumulator shape {inputs[1].shape} != partial output {out.shape}"
            )
    elif len(inputs) != 1:
        raise ShapeError("non-accumulating partial_conv2d takes exactly one input")
    return out


def _partial_conv2d_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    # The weight slice is part of the original conv's kernel; bias is
    # attributed to the first (non-accumulating) partial only, flagged by
    # the rewriter via ``owns_bias``.
    c = inputs[0].shape[0]
    kernel, _, _, use_bias = conv_attrs(attrs)
    m = out.shape[0]
    bias = m if (use_bias and attrs.get("owns_bias", False)) else 0
    return m * c * kernel[0] * kernel[1] + bias


register_op(
    OpSchema(
        name="partial_conv2d",
        infer_shape=_partial_conv2d_shape,
        macs=_conv2d_macs,
        weights=_partial_conv2d_weights,
        min_inputs=1,
        max_inputs=2,
    )
)


# ----------------------------------------------------------------------
# depthwise_conv2d
# ----------------------------------------------------------------------
def _depthwise_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "depthwise_conv2d")
    kernel, stride, padding, _ = conv_attrs(attrs)
    multiplier = int(attrs.get("multiplier", 1))
    if multiplier <= 0:
        raise ShapeError(f"depthwise multiplier must be positive, got {multiplier}")
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return TensorSpec((c * multiplier, oh, ow), inputs[0].dtype)


def _depthwise_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    kernel, _, _, _ = conv_attrs(attrs)
    m, oh, ow = out.shape
    return m * oh * ow * kernel[0] * kernel[1]


def _depthwise_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    kernel, _, _, use_bias = conv_attrs(attrs)
    m = out.shape[0]
    return m * kernel[0] * kernel[1] + (m if use_bias else 0)


register_op(
    OpSchema(
        name="depthwise_conv2d",
        infer_shape=_depthwise_shape,
        macs=_depthwise_macs,
        weights=_depthwise_weights,
    )
)

register_op(
    OpSchema(
        name="partial_depthwise_conv2d",
        infer_shape=_depthwise_shape,
        macs=_depthwise_macs,
        weights=_depthwise_weights,
    )
)
