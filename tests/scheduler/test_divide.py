"""Divide-and-conquer scheduling: exact combination at graph cuts."""

import pytest

from repro.exceptions import SchedulingError
from repro.graph.builder import GraphBuilder
from repro.scheduler.divide import DivideAndConquerScheduler
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule


def _stacked_cells(n_cells: int, seed: int = 0):
    """Random multi-branch cells joined at single-node cuts."""
    import random

    rng = random.Random(seed)
    b = GraphBuilder(f"stack{seed}")
    prev = b.input("x", (rng.randint(1, 4), 4, 4))
    for cell in range(n_cells):
        branches = [
            b.conv2d(prev, rng.randint(1, 6), kernel=1, name=f"c{cell}b{i}")
            for i in range(rng.randint(2, 4))
        ]
        cat = b.concat(branches, name=f"c{cell}cat")
        prev = b.conv2d(cat, rng.randint(1, 4), kernel=1, name=f"c{cell}out")
    return b.build()


class TestEquivalenceWithWholeGraphDP:
    @pytest.mark.parametrize("seed", range(10))
    def test_same_peak_as_whole_dp(self, seed):
        g = _stacked_cells(3, seed)
        whole = dp_schedule(g)
        dnc = DivideAndConquerScheduler(adaptive_budget=False).schedule(g)
        assert dnc.peak_bytes == whole.peak_bytes

    @pytest.mark.parametrize("seed", range(5))
    def test_same_peak_with_asb(self, seed):
        g = _stacked_cells(3, seed)
        whole = dp_schedule(g)
        dnc = DivideAndConquerScheduler(
            adaptive_budget=True, max_states_per_step=100
        ).schedule(g)
        assert dnc.peak_bytes == whole.peak_bytes

    def test_schedule_valid_and_simulates_to_peak(self, hourglass_graph):
        res = DivideAndConquerScheduler().schedule(hourglass_graph)
        res.schedule.validate(hourglass_graph)
        sim = simulate_schedule(hourglass_graph, res.schedule)
        assert sim.peak_bytes == res.peak_bytes


class TestPartitioning:
    def test_partition_sizes_cover_graph(self, hourglass_graph):
        res = DivideAndConquerScheduler().schedule(hourglass_graph)
        assert sum(res.partition_sizes) == len(hourglass_graph)

    def test_min_segment_nodes_merges(self, hourglass_graph):
        res = DivideAndConquerScheduler(min_segment_nodes=10**6).schedule(
            hourglass_graph
        )
        assert res.partition_sizes == (len(hourglass_graph),)

    def test_cut_names_restrict_boundaries(self):
        g = _stacked_cells(3, seed=1)
        res = DivideAndConquerScheduler(
            adaptive_budget=False, cut_names=("c0out", "c1out")
        ).schedule(g)
        assert len(res.partition_sizes) == 3

    def test_bad_cut_name_rejected(self, hourglass_graph):
        with pytest.raises(SchedulingError, match="not single-node cuts"):
            DivideAndConquerScheduler(cut_names=("c0_l",)).schedule(
                hourglass_graph
            )

    def test_segment_outcomes_recorded(self, hourglass_graph):
        res = DivideAndConquerScheduler().schedule(hourglass_graph)
        assert len(res.segments) == len(res.partition_sizes)
        assert all(s.wall_time_s >= 0 for s in res.segments)
        assert res.states_expanded == sum(
            s.states_expanded for s in res.segments
        )

    def test_single_source_graph_without_cuts(self, diamond_graph):
        res = DivideAndConquerScheduler().schedule(diamond_graph)
        assert res.peak_bytes == dp_schedule(diamond_graph).peak_bytes
