"""Identity graph rewriter: applies the rules in one reconstruction pass.

The rewriter walks the original graph in topological order, skips nodes
superseded by a match, emits each match's replacement at the position of
its anchor, and remaps inputs through the accumulated rename table. The
output is a fresh :class:`Graph`; the input graph is never mutated.

``rewrite_graph`` can optionally iterate to a fixed point: a replacement
can expose a new match (e.g. a concat whose new sole consumer is a
conv). The paper applies one pass; fixed-point iteration is available as
an extension (``until_fixed_point=True``) and is exercised in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.graph import Graph
from repro.rewriting.patterns import Match, RewriteRule
from repro.rewriting.rules import DEFAULT_RULES

__all__ = ["RewriteResult", "IdentityGraphRewriter", "rewrite_graph"]


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of rewriting a graph."""

    graph: Graph
    #: total matches applied
    applied: int
    #: per-rule application counts
    by_rule: dict[str, int] = field(default_factory=dict)
    #: matches in application order
    matches: tuple[Match, ...] = ()
    #: original node name -> replacement node name, for every node whose
    #: output was superseded (used to pair graph outputs when verifying
    #: numerical equivalence)
    renamed: dict[str, str] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return self.applied > 0


class IdentityGraphRewriter:
    """Applies a rule set to graphs (defaults to the paper's two rules)."""

    def __init__(self, rules: Sequence[RewriteRule] = DEFAULT_RULES) -> None:
        self.rules = tuple(rules)

    def rewrite_once(self, graph: Graph) -> RewriteResult:
        """One matching + reconstruction pass."""
        matches: list[Match] = []
        claimed: set[str] = set()
        for rule in self.rules:
            for match in rule.find(graph):
                if claimed & set(match.removed):
                    continue
                claimed.update(match.removed)
                matches.append(match)
        if not matches:
            return RewriteResult(graph=graph, applied=0)

        by_anchor = {m.anchor: m for m in matches}
        removed = {name for m in matches for name in m.removed}
        rule_by_name = {r.name: r for r in self.rules}

        out = Graph(graph.name)
        rename: dict[str, str] = {}
        taken = set(graph.node_names)

        def namer(base: str) -> str:
            name = base
            bump = 0
            while name in taken or name in out:
                bump += 1
                name = f"{base}.{bump}"
            taken.add(name)
            return name

        counts: dict[str, int] = {}
        for node in graph:
            match = by_anchor.get(node.name)
            if match is not None:
                rule = rule_by_name[match.rule]
                for new_node in rule.emit(graph, match, namer, rename):
                    out.add(new_node)
                counts[match.rule] = counts.get(match.rule, 0) + 1
                continue
            if node.name in removed:
                continue  # e.g. the concat — superseded, emits nothing
            out.add(
                node.replace(
                    inputs=tuple(rename.get(src, src) for src in node.inputs)
                )
            )
        out.validate()
        return RewriteResult(
            graph=out,
            applied=len(matches),
            by_rule=counts,
            matches=tuple(matches),
            renamed=dict(rename),
        )

    def rewrite(self, graph: Graph, until_fixed_point: bool = False) -> RewriteResult:
        """Apply rules; optionally iterate until no rule fires."""
        result = self.rewrite_once(graph)
        if not until_fixed_point:
            return result
        total = result.applied
        counts = dict(result.by_rule)
        matches = list(result.matches)
        renamed = dict(result.renamed)
        while result.changed:
            result = self.rewrite_once(result.graph)
            total += result.applied
            for k, v in result.by_rule.items():
                counts[k] = counts.get(k, 0) + v
            matches.extend(result.matches)
            # compose rename chains across passes
            renamed = {
                old: result.renamed.get(new, new) for old, new in renamed.items()
            }
            renamed.update(result.renamed)
        return RewriteResult(
            graph=result.graph,
            applied=total,
            by_rule=counts,
            matches=tuple(matches),
            renamed=renamed,
        )


def rewrite_graph(graph: Graph, until_fixed_point: bool = False) -> RewriteResult:
    """Module-level convenience using the default (paper) rule set."""
    return IdentityGraphRewriter().rewrite(graph, until_fixed_point=until_fixed_point)
