"""Table 1: specification of the evaluated networks.

MAC and weight counts are *measured* from our graphs via the operator
cost model; the paper's whole-network numbers and top-1 accuracies are
quoted alongside (accuracy is a training-time property — nothing here
trains, exactly as in the paper, which also quotes them).

Our graphs are the scheduled *cells*; the paper's MAC/weight columns
describe the full networks (e.g. DARTS' 574 M MACs span 14 stacked
cells), so the measured column reports our per-network cell sums and the
quoted column keeps the paper's network-level values for context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.netstats import NetworkStats, network_stats
from repro.analysis.reporting import format_table
from repro.models.suite import suite_cells
from repro.models.swiftnet import swiftnet_hpd

__all__ = ["Table1Row", "PAPER_NETWORKS", "run", "render"]

#: Table 1 as printed in the paper (whole networks)
PAPER_NETWORKS = {
    "DARTS": {
        "type": "NAS",
        "dataset": "ImageNet",
        "macs_m": 574.0,
        "weights": 4_700_000,
        "top1": 73.3,
    },
    "SwiftNet": {
        "type": "NAS",
        "dataset": "HPD",
        "macs_m": 57.4,
        "weights": 249_700,
        "top1": 95.1,
    },
    "RandWire-CIFAR10": {
        "type": "RAND",
        "dataset": "CIFAR10",
        "macs_m": 111.0,
        "weights": 1_200_000,
        "top1": 93.6,
    },
    "RandWire-CIFAR100": {
        "type": "RAND",
        "dataset": "CIFAR100",
        "macs_m": 160.0,
        "weights": 4_700_000,
        "top1": 74.5,
    },
}


@dataclass(frozen=True)
class Table1Row:
    network: str
    dataset: str
    measured: NetworkStats
    paper_macs_m: float
    paper_weights: int
    paper_top1: float


def _network_key(spec) -> str:
    if spec.network == "RandWire":
        return f"RandWire-{spec.dataset}"
    return spec.network


def run() -> list[Table1Row]:
    # group suite cells by network; SwiftNet gets the full 62-node graph
    grouped: dict[str, list] = {}
    for spec in suite_cells():
        grouped.setdefault(_network_key(spec), []).append(spec)

    rows = []
    for network, specs in grouped.items():
        paper = PAPER_NETWORKS[network]
        if network == "SwiftNet":
            stats = network_stats(swiftnet_hpd())
        else:
            cells = [network_stats(s.factory()) for s in specs]
            stats = NetworkStats(
                name=network,
                nodes=sum(c.nodes for c in cells),
                edges=sum(c.edges for c in cells),
                macs=sum(c.macs for c in cells),
                weights=sum(c.weights for c in cells),
                total_activation_bytes=sum(
                    c.total_activation_bytes for c in cells
                ),
                width=max(c.width for c in cells),
                sources=sum(c.sources for c in cells),
                sinks=sum(c.sinks for c in cells),
            )
        rows.append(
            Table1Row(
                network=network,
                dataset=paper["dataset"],
                measured=stats,
                paper_macs_m=paper["macs_m"],
                paper_weights=paper["weights"],
                paper_top1=paper["top1"],
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    body = [
        (
            r.network,
            r.dataset,
            r.measured.nodes,
            f"{r.measured.macs_m:.1f}M",
            f"{r.paper_macs_m:.1f}M",
            f"{r.measured.weights / 1e3:.1f}K",
            f"{r.paper_weights / 1e3:.1f}K",
            f"{r.paper_top1:.1f}%",
        )
        for r in rows
    ]
    return format_table(
        (
            "network",
            "dataset",
            "nodes",
            "cell MACs",
            "net MACs (paper)",
            "cell weights",
            "net weights (paper)",
            "top-1 (paper)",
        ),
        body,
        title="Table 1 - evaluated networks (measured cells vs paper networks)",
    )


def main() -> str:  # pragma: no cover - exercised via CLI/benches
    out = render(run())
    print(out)
    return out
