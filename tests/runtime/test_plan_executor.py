"""PlanExecutor: bitwise parity with the reference executor, arena
accounting, and aliasing edge cases feeding the arena."""

import numpy as np
import pytest

from repro.allocator.arena import plan_allocation
from repro.compiler import CompilationPipeline
from repro.exceptions import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec
from repro.models.suite import suite_cells
from repro.rewriting import rewrite_graph
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.plan_executor import PlanExecutor, intra_buffer_offsets
from repro.runtime.verify import verify_execution
from repro.scheduler.memory import BufferModel
from repro.scheduler.registry import run_strategy
from repro.scheduler.schedule import Schedule


def assert_parity(graph, schedule, plan, seed=0, rounds=3):
    """Both executors, same weights: outputs must be bitwise equal — on
    the first run *and* on ``rounds - 1`` further runs over the stale
    bytes of the executor's reused arena (fresh feeds each round)."""
    params = init_params(graph, seed=seed)
    ref = Executor(graph, params=params)
    px = PlanExecutor(graph, schedule, plan, params=params)
    for round_ in range(rounds):
        feeds = random_feeds(graph, seed=seed + round_)
        want = ref.run(feeds)
        got = px.run(feeds)
        assert set(want) == set(got)
        for name in want:
            np.testing.assert_array_equal(want[name], got[name])
        assert px.last_stats is not None
        assert px.last_stats.measured_peak_bytes <= plan.arena_bytes
        assert px.last_stats.arena_reused == (round_ > 0)
    assert px.runs == rounds
    return px


def compile_with(graph, strategy="greedy", allocator="first_fit"):
    out = run_strategy(strategy, graph)
    plan = plan_allocation(
        out.scheduled_graph, out.schedule, strategy=allocator
    )
    return out.scheduled_graph, out.schedule, plan


class TestSuiteParity:
    """Every benchmark cell executes identically under the arena plan."""

    @pytest.mark.parametrize(
        "key", [c.key for c in suite_cells()]
    )
    def test_cell_parity(self, key):
        spec = next(c for c in suite_cells() if c.key == key)
        graph, schedule, plan = compile_with(spec.factory(), "greedy")
        assert_parity(graph, schedule, plan)

    @pytest.mark.parametrize(
        "key", [c.key for c in suite_cells()]
    )
    def test_cell_parity_greedy_by_size_arena(self, key):
        spec = next(c for c in suite_cells() if c.key == key)
        graph, schedule, plan = compile_with(
            spec.factory(), "kahn", allocator="greedy_by_size"
        )
        assert_parity(graph, schedule, plan)

    def test_rewritten_cell_parity(self):
        # serenity-fast rewrites: inplace partial-conv chains and view
        # gather concats execute inside the arena
        spec = next(c for c in suite_cells() if c.key == "swiftnet-c")
        graph, schedule, plan = compile_with(spec.factory(), "serenity-fast")
        assert any(n.memory.aliases for n in graph)
        assert_parity(graph, schedule, plan)


class TestAliasingEdgeCases:
    def test_inplace_chain(self):
        """acc += style chains share one buffer at one offset."""
        b = GraphBuilder("inplace")
        x = b.input("x", (4, 4, 4))
        b.relu(x, name="r")
        b.sigmoid(x, name="s")
        g = b.build()
        g.add(
            Node(
                name="acc",
                op="add",
                inputs=("r", "s"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        g.add(
            Node(
                name="acc2",
                op="add",
                inputs=("acc", "s"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        idx = model.index
        assert (
            model.buffer_of[idx.index["r"]]
            == model.buffer_of[idx.index["acc"]]
            == model.buffer_of[idx.index["acc2"]]
        )
        assert intra["r"] == intra["acc"] == intra["acc2"] == 0
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_view_concat_offsets_and_parity(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        assert g.node("cat").memory.view
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        # operands land at their slice offsets inside the concat buffer
        assert intra["cat"] == 0
        assert intra["l"] == 0
        assert intra["m"] == g.node("l").output.bytes
        assert intra["r"] == intra["m"] + g.node("m").output.bytes
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_partial_view_copied_operand(self):
        """A graph-input operand stays outside the view buffer and is
        copied at concat time (``view_inputs`` partial aliasing)."""
        from repro.graph.transforms import mark_concat_views

        b = GraphBuilder("partial-view")
        x = b.input("x", (2, 4, 4))
        l = b.relu(x, name="l")
        cat = b.concat([x, l], name="cat")
        b.relu(cat, name="out")
        g = mark_concat_views(b.build())
        cat_node = g.node("cat")
        assert cat_node.memory.view and cat_node.attrs["view_inputs"] == (1,)
        model = BufferModel.of(g)
        intra = intra_buffer_offsets(g, model)
        # l aliases at its slice past x's (copied) region; x keeps its
        # own buffer at offset 0
        assert intra["l"] == g.node("x").output.bytes
        assert intra["x"] == 0
        idx = model.index
        assert model.buffer_of[idx.index["x"]] != model.buffer_of[idx.index["cat"]]
        schedule = Schedule.of(g, g.node_names)
        assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_rewritten_graphs_parity(self, concat_conv_graph, concat_depthwise_graph):
        for base in (concat_conv_graph, concat_depthwise_graph):
            g = rewrite_graph(base).graph
            assert any(n.memory.aliases for n in g)
            schedule = Schedule.of(g, g.node_names)
            assert_parity(g, schedule, plan_allocation(g, schedule))

    def test_zero_use_outputs_persist(self):
        """A sink nobody consumes still occupies its planned bytes and
        is returned intact at the end."""
        b = GraphBuilder("multi-sink")
        x = b.input("x", (2, 4, 4))
        b.relu(x, name="dead_end")  # zero consumers
        c = b.conv2d(x, 4, kernel=3, name="c")
        b.relu(c, name="main")
        g = b.build()
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        px = assert_parity(g, schedule, plan)
        out = px.run(random_feeds(g))
        assert set(out) == {"dead_end", "main"}

    def test_inplace_overwrite_before_sibling_reader_rejected(self):
        """A schedule that runs an in-place writer before another
        consumer of its target would silently corrupt that read — the
        executor must refuse it (and accept the safe order)."""
        b = GraphBuilder("hazard")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="r")
        g = b.build()
        g.add(
            Node(
                name="over",
                op="sigmoid",
                inputs=("r",),
                output=TensorSpec((2, 2, 2)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        g.add(
            Node(
                name="z", op="relu", inputs=("r",), output=TensorSpec((2, 2, 2))
            )
        )
        unsafe = Schedule.of(g, ("x", "r", "over", "z"))
        with pytest.raises(ExecutionError, match="unsafe"):
            PlanExecutor(g, unsafe, plan_allocation(g, unsafe))
        safe = Schedule.of(g, ("x", "r", "z", "over"))
        assert_parity(g, safe, plan_allocation(g, safe))

    def test_two_inplace_writers_on_one_target_rejected(self):
        """Two independent in-place writers over the same bytes: in any
        order, the later one reads a clobbered target — every pair in
        the buffer must be checked, not just the first."""
        b = GraphBuilder("double-writer")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="t")
        g = b.build()
        for name, op in (("wa", "sigmoid"), ("wb", "tanh")):
            g.add(
                Node(
                    name=name,
                    op=op,
                    inputs=("t",),
                    output=TensorSpec((2, 2, 2)),
                    memory=MemorySemantics(inplace_of=0),
                )
            )
        for order in (("x", "t", "wa", "wb"), ("x", "t", "wb", "wa")):
            schedule = Schedule.of(g, order)
            with pytest.raises(ExecutionError, match="unsafe"):
                PlanExecutor(g, schedule, plan_allocation(g, schedule))

    def test_intermediate_snapshot_before_inplace_overwrite(self):
        """Requesting a tensor that an in-place consumer later clobbers
        returns the as-produced value (reference semantics)."""
        b = GraphBuilder("snap")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="r")
        g = b.build()
        g.add(
            Node(
                name="over",
                op="sigmoid",
                inputs=("r",),
                output=TensorSpec((2, 2, 2)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        feeds = random_feeds(g)
        params = init_params(g)
        ref = Executor(g, params=params).run(feeds, outputs=["r", "over"])
        got = PlanExecutor(g, schedule, plan, params=params).run(
            feeds, outputs=["r", "over"]
        )
        np.testing.assert_array_equal(ref["r"], got["r"])
        np.testing.assert_array_equal(ref["over"], got["over"])


class TestArenaReuse:
    """The per-executor arena and its scrub policies."""

    def test_scrub_policies_all_bitwise_equal(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        params = init_params(g)
        executors = {
            scrub: PlanExecutor(g, schedule, plan, params=params, scrub=scrub)
            for scrub in ("never", "zero", "fresh")
        }
        ref = Executor(g, params=params)
        for seed in range(3):
            feeds = random_feeds(g, seed=seed)
            want = ref.run(feeds)
            for scrub, px in executors.items():
                got = px.run(feeds)
                for name in want:
                    np.testing.assert_array_equal(want[name], got[name])
                # only "fresh" forfeits arena reuse
                assert px.last_stats.arena_reused == (
                    seed > 0 and scrub != "fresh"
                )

    def test_unknown_scrub_policy_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="scrub"):
            PlanExecutor(chain_graph, schedule, plan, scrub="sometimes")

    def test_dirty_arena_not_rescrubbed_by_default(self, chain_graph):
        """scrub='never' really does leave stale bytes behind — parity
        holds because every read byte is rewritten, not because the
        arena is secretly cleaned."""
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        px = PlanExecutor(chain_graph, schedule, plan)
        px.run(random_feeds(chain_graph))
        assert np.any(px._arena != 0.0)
        before = px._arena.copy()
        px.run(random_feeds(chain_graph, seed=1))
        assert px.last_stats.arena_reused
        # same storage, different request: bytes actually changed in place
        assert not np.array_equal(before, px._arena)

    def test_returned_outputs_survive_later_runs(self, diamond_graph):
        """Responses are snapshots: a later request over the same arena
        must not mutate an earlier request's returned arrays."""
        schedule = Schedule.of(diamond_graph, diamond_graph.node_names)
        plan = plan_allocation(diamond_graph, schedule)
        px = PlanExecutor(diamond_graph, schedule, plan)
        first = px.run(random_feeds(diamond_graph, seed=0))
        kept = {k: v.copy() for k, v in first.items()}
        px.run(random_feeds(diamond_graph, seed=1))
        for k in kept:
            np.testing.assert_array_equal(kept[k], first[k])


class TestDirectWrites:
    def test_elementwise_ops_write_direct(self):
        b = GraphBuilder("direct")
        x = b.input("x", (4, 4, 4))
        r = b.relu(x, name="r")
        s = b.sigmoid(r, name="s")
        t = b.identity(r, name="t")
        b.add(s, t, name="out")
        g = b.build()
        schedule = Schedule.of(g, g.node_names)
        px = assert_parity(g, schedule, plan_allocation(g, schedule))
        assert px.last_stats.direct_writes == 4
        assert px.last_stats.copy_writes == 0

    def test_view_concat_writes_direct(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        schedule = Schedule.of(g, g.node_names)
        px = assert_parity(g, schedule, plan_allocation(g, schedule))
        # the aliased concat writes its (identical) bytes in place
        assert px.last_stats.direct_writes >= 1

    def test_inplace_chain_writes_direct(self):
        """An in-place accumulator's destination *is* its target input:
        the overlap is exact, so the direct path stays enabled."""
        b = GraphBuilder("inplace-direct")
        x = b.input("x", (4, 4, 4))
        b.relu(x, name="r")
        b.sigmoid(x, name="s")
        g = b.build()
        g.add(
            Node(
                name="acc",
                op="add",
                inputs=("r", "s"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        px = assert_parity(g, schedule, plan_allocation(g, schedule))
        assert px.last_stats.direct_writes >= 3  # r, s, acc

    def test_nary_inplace_on_late_operand_falls_back(self):
        """A 3-input add writing in place over its *third* operand must
        not take the direct path: the ufunc chain reads operand 2 after
        the destination was already written. The planner must fall back
        to temp-and-copy, and parity must hold."""
        b = GraphBuilder("late-inplace")
        x = b.input("x", (4, 4, 4))
        b.relu(x, name="r0")
        b.sigmoid(x, name="r1")
        b.identity(x, name="r2")
        g = b.build()
        g.add(
            Node(
                name="acc",
                op="add",
                inputs=("r0", "r1", "r2"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=2),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        px = assert_parity(g, schedule, plan)
        assert "acc" not in px._direct
        # in-place over operand 0 or 1 stays direct (lockstep-safe)
        g2 = GraphBuilder("early-inplace")
        x2 = g2.input("x", (4, 4, 4))
        g2.relu(x2, name="r0")
        g2.sigmoid(x2, name="r1")
        g2b = g2.build()
        g2b.add(
            Node(
                name="acc",
                op="add",
                inputs=("r0", "r1"),
                output=TensorSpec((4, 4, 4)),
                memory=MemorySemantics(inplace_of=1),
            )
        )
        schedule2 = Schedule.of(g2b, g2b.node_names)
        px2 = assert_parity(g2b, schedule2, plan_allocation(g2b, schedule2))
        assert "acc" in px2._direct

    def test_conv_ops_keep_copy_fallback(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        px = assert_parity(chain_graph, schedule, plan_allocation(chain_graph, schedule))
        assert px.last_stats.copy_writes >= 2  # both convs


class TestOutputPruning:
    """Requesting a subset executes (and feeds) only its ancestors —
    aligned between the reference executor and the plan executor."""

    @pytest.fixture
    def two_branch(self):
        b = GraphBuilder("two-branch")
        x = b.input("x", (2, 4, 4))
        y = b.input("y", (2, 4, 4))
        bx = b.relu(x, name="bx")
        by = b.relu(y, name="by")
        b.sigmoid(bx, name="out_x")
        b.sigmoid(by, name="out_y")
        return b.build()

    @pytest.mark.parametrize("executor_kind", ["reference", "plan"])
    def test_subset_needs_only_ancestor_feeds(self, two_branch, executor_kind):
        g = two_branch
        feeds_x = {"x": random_feeds(g)["x"]}
        if executor_kind == "reference":
            run = Executor(g).run
        else:
            schedule = Schedule.of(g, g.node_names)
            run = PlanExecutor(g, schedule, plan_allocation(g, schedule)).run
        out = run(feeds_x, outputs=["out_x"])
        assert set(out) == {"out_x"}
        # the full graph still demands the other feed
        with pytest.raises(ExecutionError, match="missing feed"):
            run(feeds_x)

    def test_plan_executor_executes_only_ancestors(self, two_branch):
        g = two_branch
        schedule = Schedule.of(g, g.node_names)
        px = PlanExecutor(g, schedule, plan_allocation(g, schedule))
        px.run({"x": random_feeds(g)["x"]}, outputs=["out_x"])
        assert px.last_stats.steps == 3  # x, bx, out_x
        px.run(random_feeds(g))
        assert px.last_stats.steps == len(g)

    def test_pruned_outputs_bitwise_match_reference(self, two_branch):
        g = two_branch
        params = init_params(g)
        feeds = random_feeds(g)
        schedule = Schedule.of(g, g.node_names)
        px = PlanExecutor(g, schedule, plan_allocation(g, schedule), params=params)
        for wanted in (["bx"], ["out_y"], ["out_x", "by"]):
            ref = Executor(g, params=params).run(feeds, outputs=wanted)
            got = px.run(feeds, outputs=wanted)
            assert set(ref) == set(got)
            for name in ref:
                np.testing.assert_array_equal(ref[name], got[name])

    def test_pruning_keeps_hazard_free_inplace_semantics(self):
        """Pruning away a later in-place overwriter must not change the
        returned value of the tensor it would have clobbered."""
        b = GraphBuilder("prune-inplace")
        x = b.input("x", (2, 2, 2))
        b.relu(x, name="r")
        g = b.build()
        g.add(
            Node(
                name="over",
                op="sigmoid",
                inputs=("r",),
                output=TensorSpec((2, 2, 2)),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        params = init_params(g)
        feeds = random_feeds(g)
        px = PlanExecutor(g, schedule, plan, params=params)
        ref = Executor(g, params=params).run(feeds, outputs=["r"])
        got = px.run(feeds, outputs=["r"])
        np.testing.assert_array_equal(ref["r"], got["r"])
        assert px.last_stats.steps == 2  # 'over' pruned


class TestPlanExecutorErrors:
    def test_plan_graph_mismatch_rejected(self, chain_graph, diamond_graph):
        from repro.exceptions import ReproError

        schedule = Schedule.of(diamond_graph, diamond_graph.node_names)
        plan = plan_allocation(diamond_graph, schedule)
        with pytest.raises(ReproError):
            PlanExecutor(chain_graph, schedule, plan)

    def test_missing_feed(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="missing feed"):
            PlanExecutor(chain_graph, schedule, plan).run({})

    def test_unknown_output_rejected(self, chain_graph):
        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        with pytest.raises(ExecutionError, match="never computed"):
            PlanExecutor(chain_graph, schedule, plan).run(
                random_feeds(chain_graph), outputs=["nope"]
            )

    def test_mixed_itemsize_rejected(self):
        g = Graph("mixed")
        g.add(Node(name="x", op="input", inputs=(), output=TensorSpec((2, 2))))
        g.add(
            Node(
                name="y",
                op="identity",
                inputs=("x",),
                output=TensorSpec((2, 2), "int8"),
            )
        )
        schedule = Schedule.of(g, g.node_names)
        plan = plan_allocation(g, schedule)
        with pytest.raises(ExecutionError, match="itemsize"):
            PlanExecutor(g, schedule, plan)

    def test_undersized_plan_overflows(self, chain_graph):
        """A plan whose arena lies about its capacity is caught mid-run."""
        from dataclasses import replace

        schedule = Schedule.of(chain_graph, chain_graph.node_names)
        plan = plan_allocation(chain_graph, schedule)
        lying = replace(plan, arena_bytes=plan.arena_bytes // 2)
        with pytest.raises(ExecutionError, match="arena overflow"):
            PlanExecutor(chain_graph, schedule, lying).run(
                random_feeds(chain_graph)
            )


class TestVerifyExecution:
    def test_verify_execution_reports_equivalence(self, diamond_graph):
        model = CompilationPipeline("greedy").compile(diamond_graph)
        report = verify_execution(model)
        assert report.equivalent
        assert report.max_abs_error == 0.0
