"""Arena PlanExecutor vs reference dict Executor: wall-time and memory.

Executes suite cells under both runtimes on identical weights/inputs
and reports, per cell:

* wall-clock per inference (median of a few runs);
* Python-heap peak (``tracemalloc``) during execution — the dict
  executor allocates one fresh array per node and frees by refcount,
  while the arena executor pays one upfront arena allocation;
* the arena executor's measured high-water mark vs its plan;
* batched throughput: one ``run_batch`` over 8 stacked samples vs 8
  solo arena runs (per-sample wall time), on the paper's benchmark
  cells — these are compute-heavier than the micro serving suite, so
  the dispatch-amortisation win is smaller here; the figure tracks
  where batching stops paying.

Hard assertions are host-independent: outputs bitwise-equal (batched
samples included), measured arena peak within the plan. Timings are
reported, not asserted (NumPy kernel temporaries dominate both
executors) — and written machine-readable to
``benchmarks/results/BENCH_executor.json`` so the perf trajectory is
tracked across PRs.

Marked ``slow``; set ``REPRO_BENCH_QUICK=1`` (as CI does) to run a
single small cell.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.models.suite import get_cell
from repro.runtime.executor import Executor, init_params, random_feeds

pytestmark = pytest.mark.slow

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CELLS = ["swiftnet-c"] if QUICK else ["swiftnet-c", "swiftnet-b", "darts-normal"]
ROUNDS = 2 if QUICK else 5
BATCH = 8


def _timed(fn, rounds: int):
    """(median seconds, tracemalloc peak bytes, last result)."""
    times = []
    result = None
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return sorted(times)[len(times) // 2], peak, result


def run() -> list[dict]:
    rows = []
    for key in CELLS:
        graph = get_cell(key).factory()
        model = CompilationPipeline("serenity-fast").compile(graph)
        params = init_params(model.graph)
        feeds = random_feeds(model.graph)

        ref = Executor(model.graph, params=params)
        ref_s, ref_peak, ref_out = _timed(lambda: ref.run(feeds), ROUNDS)

        px = model.executor(params=params)
        plan_s, plan_peak, plan_out = _timed(lambda: px.run(feeds), ROUNDS)

        # batched: one stacked pass over BATCH samples vs BATCH solo runs
        batched = model.executor(params=params, batch_size=BATCH)
        sample_feeds = [random_feeds(model.graph, seed=i) for i in range(BATCH)]
        stacked = {
            k: np.stack([f[k] for f in sample_feeds]) for k in sample_feeds[0]
        }
        batch_out = batched.run_batch(stacked)  # warm + parity source
        solo_s, _, _ = _timed(
            lambda: [px.run(f) for f in sample_feeds], ROUNDS
        )
        batch_s, _, _ = _timed(lambda: batched.run_batch(stacked), ROUNDS)
        batch_refs = [ref.run(f) for f in sample_feeds]

        rows.append(
            {
                "key": key,
                "nodes": len(model.graph),
                "ref_s": ref_s,
                "ref_peak": ref_peak,
                "plan_s": plan_s,
                "plan_peak": plan_peak,
                "arena_bytes": model.arena_bytes,
                "measured": px.last_stats.measured_peak_bytes,
                "ref_out": ref_out,
                "plan_out": plan_out,
                "solo_batch_s": solo_s,
                "batch_s": batch_s,
                "batch_speedup": solo_s / batch_s if batch_s else float("inf"),
                "batch_out": batch_out,
                "batch_refs": batch_refs,
                "arena_bytes_batched": model.arena_bytes_for(BATCH),
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    lines = [
        "arena PlanExecutor vs reference dict Executor "
        f"({'quick' if QUICK else 'full'} mode, {ROUNDS} rounds)",
        "",
        f"  {'cell':<14s} {'nodes':>5s} {'dict ms':>9s} {'arena ms':>9s}"
        f" {'dict heap KB':>13s} {'arena heap KB':>14s} {'plan KB':>8s}"
        f" {'batch8':>7s}",
    ]
    for r in rows:
        lines.append(
            f"  {r['key']:<14s} {r['nodes']:>5d} {r['ref_s'] * 1e3:>9.2f}"
            f" {r['plan_s'] * 1e3:>9.2f} {r['ref_peak'] / 1024:>13.1f}"
            f" {r['plan_peak'] / 1024:>14.1f} {r['arena_bytes'] / 1024:>8.1f}"
            f" {r['batch_speedup']:>6.2f}x"
        )
    lines.append("")
    lines.append(
        "  (heap = tracemalloc peak during execution; the arena run pays "
        "one upfront arena allocation, the dict run per-node arrays; "
        f"batch8 = samples/s of one run_batch({BATCH}) over {BATCH} solo "
        "arena runs)"
    )
    return "\n".join(lines)


def payload(rows: list[dict]) -> dict:
    """The machine-readable BENCH_executor.json document."""
    return {
        "quick": QUICK,
        "rounds": ROUNDS,
        "batch": BATCH,
        "cells": [
            {
                "cell": r["key"],
                "nodes": r["nodes"],
                "dict_ms": r["ref_s"] * 1e3,
                "arena_ms": r["plan_s"] * 1e3,
                "dict_heap_peak_bytes": r["ref_peak"],
                "arena_heap_peak_bytes": r["plan_peak"],
                "arena_bytes": r["arena_bytes"],
                "arena_bytes_batched": r["arena_bytes_batched"],
                "measured_peak_bytes": r["measured"],
                "samples_per_s_solo": BATCH / r["solo_batch_s"],
                "samples_per_s_batched": BATCH / r["batch_s"],
                "batch_speedup": r["batch_speedup"],
            }
            for r in rows
        ],
    }


def test_executor_smoke(benchmark, save_result, save_json):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("executor_smoke", render(rows))
    save_json("executor", payload(rows))

    for r in rows:
        # the plan executor is an executor, not an approximation
        assert set(r["ref_out"]) == set(r["plan_out"])
        for name in r["ref_out"]:
            np.testing.assert_array_equal(r["ref_out"][name], r["plan_out"][name])
        # batched samples are bitwise the reference executor's too
        for b, want in enumerate(r["batch_refs"]):
            assert set(want) == set(r["batch_out"])
            for name in want:
                np.testing.assert_array_equal(
                    want[name], r["batch_out"][name][b]
                )
        # and its plan holds at runtime
        assert r["measured"] <= r["arena_bytes"]


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
