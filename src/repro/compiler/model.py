"""The frozen compile artifact: graph + schedule + arena plan in one file.

A :class:`CompiledModel` is the pipeline's end product — everything a
runtime needs to execute a network inside a fixed memory budget, with
nothing left to decide at load time:

* the **scheduled graph** (rewritten when the strategy rewrites),
* the **schedule** — the memory-aware execution order,
* the **allocation plan** — a byte offset per buffer inside one arena,
* the originating **device spec** and compilation metadata.

Artifacts serialise to a single versioned JSON document, round-tripping
through :mod:`repro.graph.serialization` for the graph and
:mod:`repro.allocator.export` for the plan. Both the source graph's and
the scheduled graph's canonical :func:`~repro.graph.serialization.graph_signature`
are embedded, so an artifact can be matched against the persistent
:class:`~repro.scheduler.cache.ScheduleCache` (same keys) and a loaded
document is verified against the graph it carries — a tampered or
corrupted artifact fails loudly instead of executing a wrong plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.memsim.hierarchy import OffchipLink
    from repro.runtime.executor import Params
    from repro.runtime.plan_executor import PlanExecutor

from repro.allocator.arena import AllocationPlan
from repro.allocator.export import plan_to_dict
from repro.allocator.lifetimes import compute_lifetimes
from repro.allocator.spill import SpillPlan, min_capacity_bytes, plan_spill
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.serialization import (
    graph_from_dict,
    graph_signature,
    graph_to_dict,
)
from repro.scheduler.device import DeviceSpec
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["CompiledModel", "ARTIFACT_FORMAT"]

ARTIFACT_FORMAT = "repro-compiled/1"


@dataclass(frozen=True)
class CompiledModel:
    """One network, compiled: executable graph, order, and arena layout."""

    #: the graph the schedule and plan target (rewritten when the
    #: compiling strategy rewrites; the *executable* graph)
    graph: Graph
    schedule: Schedule
    plan: AllocationPlan
    #: canonical signature of the *source* graph (ScheduleCache key)
    source_signature: str
    #: canonical signature of :attr:`graph`
    signature: str
    #: registry name of the strategy that produced the schedule
    strategy: str
    device: DeviceSpec | None = None
    #: free-form compilation metadata (timings, cache provenance, ...)
    meta: dict[str, Any] = field(default_factory=dict)
    #: tiered-arena layouts precomputed per on-chip capacity (embedded
    #: in the artifact; :meth:`spill_plan` serves/extends them)
    spill_plans: tuple[SpillPlan, ...] = ()

    # ------------------------------------------------------------------
    @property
    def arena_bytes(self) -> int:
        """The arena capacity the runtime must provision."""
        return self.plan.arena_bytes

    @property
    def fits_device(self) -> bool | None:
        """Budget verdict against :attr:`device` (None without one)."""
        if self.device is None:
            return None
        return self.plan.arena_bytes <= self.device.sram_bytes

    def arena_bytes_for(self, batch_size: int) -> int:
        """Arena bytes a batch-capable executor of this model provisions.

        The batched layout is ``batch_size`` per-sample rows, so peak
        memory scales linearly: every planned offset and lifetime is
        reused per row, and admission control can price a batch-``N``
        executor as exactly ``N x`` the compiled plan.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.plan.arena_bytes * batch_size

    @property
    def spill_floor_bytes(self) -> int:
        """Irreducible on-chip capacity of this schedule: the largest
        single-step working set (whole buffers are staged to be
        touched). No spill plan can execute below this; memoised.
        Tile streaming goes lower — see :meth:`spill_floor_for`."""
        return self.spill_floor_for(None)

    def spill_floor_for(self, tile_bytes: int | None) -> int:
        """The staging floor at a transfer granularity: the largest
        single-step working set of whole buffers (``tile_bytes=None``)
        or of per-buffer tile slots. Memoised per granularity."""
        cache = self._spill_cache()
        key = ("floor", tile_bytes)
        floor = cache.get(key)
        if floor is None:
            floor = min_capacity_bytes(
                self.graph, self.schedule, tile_bytes=tile_bytes
            )
            cache[key] = floor
        return floor

    def spill_plan(
        self,
        capacity_bytes: int,
        policy: str = "belady",
        tile_bytes: int | None = None,
    ) -> SpillPlan:
        """The tiered-arena layout for one on-chip capacity.

        Serves a carried (artifact-embedded) plan when one matches,
        else computes and memoises — spill planning is deterministic in
        ``(graph, schedule, plan, capacity, policy, tile granularity)``,
        so a computed plan equals the one the compiler would have
        embedded. ``tile_bytes`` switches to tile-streamed staging,
        whose floor (:meth:`spill_floor_for`) sits far below the
        whole-buffer :attr:`spill_floor_bytes`. Raises
        :class:`~repro.exceptions.SpillError` below the applicable
        floor.
        """
        for sp in self.spill_plans:
            if (
                sp.capacity_bytes == capacity_bytes
                and sp.policy == policy
                and sp.tile_bytes == tile_bytes
            ):
                return sp
        cache = self._spill_cache()
        key = (capacity_bytes, policy, tile_bytes)
        plan = cache.get(key)
        if plan is None:
            plan = plan_spill(
                self.graph,
                self.schedule,
                self.plan,
                capacity_bytes,
                policy=policy,
                tile_bytes=tile_bytes,
            )
            cache[key] = plan
        return plan

    def _spill_cache(self) -> dict:
        """Per-instance memo for spill plans (frozen dataclass; lazy)."""
        cache = getattr(self, "_spill_memo", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_spill_memo", cache)
        return cache

    def executor(
        self,
        params: "Params | None" = None,
        seed: int = 0,
        batch_size: int = 1,
        scrub: str = "never",
        spill: SpillPlan | None = None,
        capacity_bytes: int | None = None,
        spill_policy: str = "belady",
        tile_bytes: int | None = None,
        prefetch: bool = True,
        link: "OffchipLink | None" = None,
    ) -> "PlanExecutor":
        """A ready :class:`~repro.runtime.plan_executor.PlanExecutor`.

        ``batch_size=N`` provisions ``N`` arena rows so ``run_batch``
        can execute up to ``N`` stacked samples per dispatch.
        ``capacity_bytes`` (or an explicit ``spill`` plan) executes
        under a two-region tiered arena whose on-chip region fits that
        capacity, spilled buffers streaming from the off-chip region
        with measured traffic — outputs stay bitwise identical.
        ``tile_bytes`` streams spilled buffers tile by tile instead of
        whole (dropping the admissible capacity floor to the largest
        tile working set). ``prefetch=False`` forces those transfers
        inline instead of overlapping them on the background engine;
        ``link`` (an :class:`~repro.memsim.OffchipLink`) models the
        transfer path's bandwidth/latency.
        """
        from repro.runtime.plan_executor import PlanExecutor

        if spill is None and capacity_bytes is not None:
            spill = self.spill_plan(
                capacity_bytes, policy=spill_policy, tile_bytes=tile_bytes
            )
        return PlanExecutor(
            self.graph,
            self.schedule,
            self.plan,
            params=params,
            seed=seed,
            batch_size=batch_size,
            scrub=scrub,
            spill=spill,
            prefetch=prefetch,
            link=link,
        )

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        """Serialise to a versioned JSON-compatible document."""
        doc: dict[str, Any] = {
            "format": ARTIFACT_FORMAT,
            "name": self.graph.name,
            "source_signature": self.source_signature,
            "signature": self.signature,
            "strategy": self.strategy,
            "graph": graph_to_dict(self.graph),
            "plan": plan_to_dict(self.graph, self.schedule, plan=self.plan),
            "device": (
                {"name": self.device.name, "sram_bytes": self.device.sram_bytes}
                if self.device is not None
                else None
            ),
            "meta": dict(self.meta),
        }
        if self.spill_plans:
            doc["spill_plans"] = [sp.to_doc() for sp in self.spill_plans]
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "CompiledModel":
        """Rebuild and *verify* an artifact document.

        The schedule is re-validated against the carried graph, the
        plan is re-checked for overlaps, and the embedded signature must
        match the graph's recomputed one.
        """
        if doc.get("format") != ARTIFACT_FORMAT:
            raise GraphError(
                f"unsupported compiled-model format {doc.get('format')!r}"
            )
        if "graph" not in doc:
            raise GraphError("compiled model is corrupt: missing field 'graph'")
        graph = graph_from_dict(doc["graph"])
        signature = graph_signature(graph)
        if signature != doc.get("signature"):
            raise GraphError(
                "compiled model is corrupt: embedded signature "
                f"{doc.get('signature')!r} does not match the carried graph"
            )
        plan_doc = doc.get("plan")
        if not isinstance(plan_doc, dict):
            raise GraphError(
                "compiled model is corrupt: field 'plan' is missing or "
                "not an object"
            )
        for want in ("schedule", "buffers", "arena_bytes", "strategy"):
            if want not in plan_doc:
                raise GraphError(
                    f"compiled model is corrupt: missing field 'plan.{want}'"
                )
        schedule = Schedule(tuple(plan_doc["schedule"]), graph.name)
        schedule.validate(graph)
        model = BufferModel.of(graph)
        offsets = {}
        for i, ent in enumerate(plan_doc["buffers"]):
            try:
                offsets[int(ent["id"])] = int(ent["offset"])
            except (KeyError, TypeError, ValueError) as exc:
                raise GraphError(
                    "compiled model is corrupt: field "
                    f"'plan.buffers[{i}]' is unreadable ({exc!r})"
                ) from exc
        plan = AllocationPlan(
            strategy=plan_doc["strategy"],
            offsets=offsets,
            arena_bytes=int(plan_doc["arena_bytes"]),
            lifetimes=tuple(compute_lifetimes(graph, schedule, model=model)),
        ).validate()
        device_doc = doc.get("device")
        device = (
            DeviceSpec(device_doc["name"], int(device_doc["sram_bytes"]))
            if device_doc
            else None
        )
        spill_plans = tuple(
            SpillPlan.from_doc(sp) for sp in doc.get("spill_plans", ())
        )
        return cls(
            graph=graph,
            schedule=schedule,
            plan=plan,
            source_signature=doc.get("source_signature", signature),
            signature=signature,
            strategy=doc.get("strategy", "unknown"),
            device=device,
            meta=dict(doc.get("meta", {})),
            spill_plans=spill_plans,
        )

    def save(self, path: str | Path) -> Path:
        """Write the artifact as pretty-printed JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_doc(), indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path, *, verify: str = "basic") -> "CompiledModel":
        """Load and verify an artifact written by :meth:`save`.

        Structural validation (format version, signature, schedule and
        plan self-consistency) always runs. ``verify`` additionally
        routes the loaded model through the static plan verifier
        (:mod:`repro.analysis.verifier`): ``"basic"`` (default) proves
        schedule legality and arena/spill/prefetch layout soundness,
        ``"full"`` adds the byte-exact read-coverage replay, ``"none"``
        skips the analyzer. Error-severity findings raise
        :class:`~repro.exceptions.PlanVerificationError` carrying the
        full report.
        """
        from repro.analysis.verifier import VERIFY_LEVELS, analyze_model

        if verify not in VERIFY_LEVELS:
            raise ValueError(
                f"unknown verify level {verify!r}; pick one of {VERIFY_LEVELS}"
            )
        model = cls.from_doc(json.loads(Path(path).read_text()))
        if verify != "none":
            report = analyze_model(model, level=verify)
            if not report.ok:
                from repro.exceptions import PlanVerificationError

                raise PlanVerificationError(report)
        return model
