"""Shared experiment infrastructure.

Compiling a suite cell with SERENITY is the expensive step every figure
needs, so results are memoised at two levels:

* an in-process memo per ``(cell, configuration)`` — the benchmark
  suite reuses one ``SerenityReport`` object across Fig 10/11/12/15;
* the persistent :class:`~repro.scheduler.cache.ScheduleCache`, keyed
  by the canonical graph signature — re-running the experiments in a
  fresh process replays the cached schedule (peaks, arena layout and
  traces are cheap to recompute from the order) instead of repeating
  the DP search.

The persistent layer honours ``$REPRO_CACHE_DIR`` and can be disabled
entirely with ``REPRO_NO_CACHE=1``. Reports rebuilt from cache carry
``from_cache=True`` and ``divide=None`` (the DP search-tree statistics
are not persisted); figure harnesses that need ``states_expanded`` go
through :meth:`~repro.scheduler.serenity.SerenityReport.search_stats`,
which fails loudly on a cache-rebuilt report instead of reading zeros.

:func:`compile_model` freezes a memoised report into the same
:class:`~repro.compiler.CompiledModel` artifact the
:class:`~repro.compiler.CompilationPipeline` produces, so experiments
and deployments share one compile path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.graph.serialization import graph_signature
from repro.models.suite import CellSpec, suite_cells
from repro.scheduler.cache import CacheEntry, ScheduleCache
from repro.scheduler.serenity import Serenity, SerenityConfig, SerenityReport

__all__ = [
    "compiled",
    "compile_model",
    "clear_cache",
    "default_config",
    "persistent_cache",
    "CellRun",
    "suite_runs",
]

#: deterministic state cap used across all experiments (the stand-in for
#: the paper's per-step wall-clock allowance T)
DEFAULT_MAX_STATES = 50_000

_CACHE: dict[tuple[str, bool], SerenityReport] = {}

#: persistent-cache strategy keys must match the registry's pipelines:
#: ``serenity``/``serenity-dp`` run the same divide-and-conquer DP with
#: the same defaults, so entries are shared with the portfolio compiler.
_STRATEGY_KEY = {True: "serenity@1", False: "serenity-dp@1"}

_PERSISTENT: dict[str, ScheduleCache] = {}


def persistent_cache() -> ScheduleCache | None:
    """The process-wide schedule cache (None when ``REPRO_NO_CACHE=1``).

    Resolved per call so tests can repoint ``$REPRO_CACHE_DIR`` at a
    temporary directory; instances are memoised per resolved root.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    cache = ScheduleCache()
    key = str(cache.root)
    return _PERSISTENT.setdefault(key, cache)


def default_config(rewrite: bool) -> SerenityConfig:
    return SerenityConfig(rewrite=rewrite, max_states_per_step=DEFAULT_MAX_STATES)


def _report_from_entry(
    entry: CacheEntry, graph: Graph, rewrite: bool
) -> SerenityReport | None:
    """Rebuild a ``SerenityReport`` from a cached schedule.

    Everything except the DP search statistics is recomputable in
    milliseconds from the cached order: the rewrite is deterministic,
    and baselines/arena peaks are linear-time replays. The entry is
    validated against the concrete graph and its peaks come from the
    replay, not the entry — a stale or colliding entry yields ``None``
    (recompute), never a wrong report.
    """
    from repro.allocator import arena_peak_bytes
    from repro.rewriting import rewrite_graph
    from repro.scheduler.memory import simulate_schedule
    from repro.scheduler.portfolio import schedule_from_entry
    from repro.scheduler.topological import kahn_schedule

    scheduled_graph = graph
    rewrite_count = 0
    if rewrite:
        rewritten = rewrite_graph(graph)
        scheduled_graph = rewritten.graph
        rewrite_count = rewritten.applied

    schedule = schedule_from_entry(entry, scheduled_graph)
    if schedule is None:
        return None
    baseline = kahn_schedule(graph)
    return SerenityReport(
        config=default_config(rewrite),
        graph=graph,
        scheduled_graph=scheduled_graph,
        schedule=schedule,
        peak_bytes=simulate_schedule(
            scheduled_graph, schedule, validate=False
        ).peak_bytes,
        arena_bytes=arena_peak_bytes(scheduled_graph, schedule),
        baseline_peak_bytes=simulate_schedule(
            graph, baseline, validate=False
        ).peak_bytes,
        baseline_arena_bytes=arena_peak_bytes(graph, baseline),
        scheduling_time_s=float(entry.meta.get("time_s", 0.0)),
        rewrite_count=rewrite_count,
        divide=None,
        from_cache=True,
    )


def compiled(spec: CellSpec, rewrite: bool) -> SerenityReport:
    """SERENITY compilation of ``spec`` (memoised + persistently cached)."""
    key = (spec.key, rewrite)
    if key in _CACHE:
        return _CACHE[key]

    graph = spec.factory()
    cache = persistent_cache()
    signature = graph_signature(graph) if cache is not None else ""
    if cache is not None:
        entry = cache.get(signature, _STRATEGY_KEY[rewrite])
        if entry is not None:
            report = _report_from_entry(entry, graph, rewrite)
            if report is not None:
                _CACHE[key] = report
                return report

    t0 = time.perf_counter()
    report = Serenity(default_config(rewrite)).compile(graph)
    elapsed = time.perf_counter() - t0
    if cache is not None:
        from repro.graph.serialization import canonical_node_keys

        keys = canonical_node_keys(report.scheduled_graph)
        cache.put(
            CacheEntry(
                signature=signature,
                strategy_key=_STRATEGY_KEY[rewrite],
                graph_name=report.scheduled_graph.name,
                order=report.schedule.order,
                canon_order=tuple(keys[n] for n in report.schedule.order),
                peak_bytes=report.peak_bytes,
                arena_bytes=report.arena_bytes,
                meta={"time_s": elapsed, "rewrite_count": report.rewrite_count},
            )
        )
    _CACHE[key] = report
    return report


def compile_model(spec: CellSpec, rewrite: bool = True, allocator: str = "first_fit"):
    """The memoised compilation of ``spec`` as a deployable artifact.

    Returns a :class:`~repro.compiler.CompiledModel` frozen from the
    same report :func:`compiled` memoises — schedule, arena plan and
    signatures included — ready for ``CompiledModel.save`` /
    ``serenity run``.
    """
    from repro.compiler import compiled_model_from_report

    return compiled_model_from_report(
        compiled(spec, rewrite=rewrite), allocator=allocator
    )


def clear_cache() -> None:
    """Drop the in-process memo (the persistent cache is left intact)."""
    _CACHE.clear()


@dataclass(frozen=True)
class CellRun:
    """Both pipeline variants for one cell."""

    spec: CellSpec
    dp: SerenityReport  # rewrite=False
    gr: SerenityReport  # rewrite=True

    @property
    def graph(self) -> Graph:
        return self.dp.graph


def suite_runs(keys: list[str] | None = None) -> list[CellRun]:
    """Compile the whole suite (or a subset) in both variants."""
    cells = suite_cells()
    if keys is not None:
        cells = [c for c in cells if c.key in set(keys)]
    return [
        CellRun(spec=c, dp=compiled(c, rewrite=False), gr=compiled(c, rewrite=True))
        for c in cells
    ]
