"""Normalisation operators (inference-time batch norm)."""

from __future__ import annotations

from typing import Any

from repro.graph.tensor import TensorSpec
from repro.ops.base import OpSchema, register_op, require_chw


def _bn_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    require_chw(inputs[0], "batch_norm")
    return inputs[0]


def _bn_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    # Folded scale + shift: one multiply-add per element.
    return out.elements


def _bn_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    # Inference-time BN folds to per-channel (scale, shift).
    return 2 * inputs[0].shape[0]


register_op(
    OpSchema(
        name="batch_norm",
        infer_shape=_bn_shape,
        macs=_bn_macs,
        weights=_bn_weights,
    )
)
