"""Baseline topological schedulers."""

import random

import pytest

from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import (
    count_topological_orders,
    dfs_schedule,
    iter_topological_orders,
    kahn_schedule,
    random_topological,
)

from tests.conftest import random_dag_graph


class TestKahn:
    def test_valid_on_fixtures(self, diamond_graph, hourglass_graph):
        for g in (diamond_graph, hourglass_graph):
            kahn_schedule(g).validate(g)

    def test_insertion_tie_break_matches_model_order(self, diamond_graph):
        # left was inserted before right, so insertion Kahn runs it first
        sched = kahn_schedule(diamond_graph)
        assert sched.position("left") < sched.position("right")

    def test_lexicographic_tie_break(self, diamond_graph):
        sched = kahn_schedule(diamond_graph, tie_break="lexicographic")
        sched.validate(diamond_graph)
        # 'left' < 'left_down' < 'right' lexicographically
        assert sched.position("left") < sched.position("right")

    def test_fifo_variant_valid(self, hourglass_graph):
        kahn_schedule(hourglass_graph, tie_break="fifo").validate(hourglass_graph)

    def test_unknown_tie_break(self, diamond_graph):
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError):
            kahn_schedule(diamond_graph, tie_break="bogus")

    def test_deterministic(self, hourglass_graph):
        a = kahn_schedule(hourglass_graph)
        b = kahn_schedule(hourglass_graph)
        assert a.order == b.order

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_random_dags(self, seed):
        g = random_dag_graph(15, seed)
        kahn_schedule(g).validate(g)


class TestDFS:
    def test_valid_on_fixtures(self, diamond_graph, hourglass_graph):
        for g in (diamond_graph, hourglass_graph):
            dfs_schedule(g).validate(g)

    def test_chases_branches(self, diamond_graph):
        # LIFO order dives into the most recently readied node
        sched = dfs_schedule(diamond_graph)
        sched.validate(diamond_graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_random_dags(self, seed):
        g = random_dag_graph(15, seed)
        dfs_schedule(g).validate(g)


class TestRandomTopological:
    def test_valid_and_seed_deterministic(self, hourglass_graph):
        a = random_topological(hourglass_graph, random.Random(7))
        b = random_topological(hourglass_graph, random.Random(7))
        a.validate(hourglass_graph)
        assert a.order == b.order

    def test_different_seeds_vary(self, hourglass_graph):
        orders = {
            random_topological(hourglass_graph, random.Random(s)).order
            for s in range(20)
        }
        assert len(orders) > 1


class TestEnumeration:
    def test_diamond_count(self, diamond_graph):
        # x first; then left/right/left_down interleavings with
        # left < left_down: orders = permutations of (left, left_down,
        # right) with left before left_down = 3
        assert count_topological_orders(diamond_graph) == 3

    def test_chain_is_unique(self, chain_graph):
        assert count_topological_orders(chain_graph) == 1

    def test_orders_distinct_and_valid(self, diamond_graph):
        orders = list(iter_topological_orders(diamond_graph))
        assert len(set(orders)) == len(orders)
        for order in orders:
            Schedule(order).validate(diamond_graph)

    def test_limit_respected(self, hourglass_graph):
        assert len(list(iter_topological_orders(hourglass_graph, limit=5))) == 5

    def test_count_cap(self, hourglass_graph):
        assert count_topological_orders(hourglass_graph, cap=4) == 4
