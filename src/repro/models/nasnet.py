"""NASNet-A-like normal cell (Zoph et al., CVPR 2018) — extension model.

Not part of the paper's evaluation suite (the paper cites NASNet as the
stacking convention DARTS follows); included as an extra irregular
workload for the examples and for stress-testing the scheduler on a
five-block cell with heavy skip connectivity.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.transforms import mark_concat_views

__all__ = ["nasnet_a_cell"]

#: (op_left, input_left, op_right, input_right) per block; inputs index
#: the state list (0 = c_{k-2}, 1 = c_{k-1}, 2+ = prior blocks).
_NASNET_A_NORMAL = (
    ("sep_conv_3x3", 1, "identity", 1),
    ("sep_conv_3x3", 0, "sep_conv_3x3", 1),
    ("avg_pool_3x3", 1, "identity", 0),
    ("avg_pool_3x3", 0, "avg_pool_3x3", 0),
    ("sep_conv_3x3", 1, "identity", 1),
)


def _apply(b: GraphBuilder, op: str, x: str, channels: int, name: str) -> str:
    if op == "sep_conv_3x3":
        r = b.relu(x, name=f"{name}/relu")
        d = b.depthwise_conv2d(r, kernel=3, name=f"{name}/dw")
        p = b.conv2d(d, channels, kernel=1, name=f"{name}/pw")
        return b.batch_norm(p, name=f"{name}/bn")
    if op == "avg_pool_3x3":
        return b.avg_pool2d(x, kernel=3, stride=1, padding="same", name=f"{name}/avg")
    if op == "identity":
        return b.identity(x, name=f"{name}/id")
    raise ValueError(f"unknown NASNet op {op!r}")


def nasnet_a_cell(channels: int = 32, hw: int = 28) -> Graph:
    """One NASNet-A normal cell; output concatenates all unused states."""
    b = GraphBuilder("nasnet-a-normal")
    s0 = b.input("c_km2", (channels, hw, hw))
    s1 = b.input("c_km1", (channels, hw, hw))
    states = [s0, s1]
    used: set[int] = set()
    for i, (op_l, in_l, op_r, in_r) in enumerate(_NASNET_A_NORMAL):
        left = _apply(b, op_l, states[in_l], channels, f"b{i}/l")
        right = _apply(b, op_r, states[in_r], channels, f"b{i}/r")
        states.append(b.add(left, right, name=f"b{i}/add"))
        used.update((in_l, in_r))
    loose = [s for j, s in enumerate(states) if j not in used and j >= 1]
    b.concat(loose, name="cell_out")
    return mark_concat_views(b.build())
