"""RequestScheduler: dispatch, micro-batching, concurrent bitwise parity."""

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import ExecutionError, ServingError
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import (
    ArenaPool,
    ModelRegistry,
    RequestScheduler,
    run_load,
)
from repro.serving.scheduler import _Request


@pytest.fixture
def registry(chain_graph, diamond_graph):
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(chain_graph), name="chain")
    registry.register(pipeline.compile(diamond_graph), name="diamond")
    return registry


class TestDispatch:
    def test_submit_returns_reference_outputs(self, registry):
        graph = registry.get("chain").graph
        feeds = random_feeds(graph)
        ref = Executor(graph, params=init_params(graph, 0)).run(feeds)
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=2) as server:
            result = server.submit("chain", feeds).result(timeout=30)
        assert set(result.outputs) == set(ref)
        for name in ref:
            np.testing.assert_array_equal(ref[name], result.outputs[name])
        assert result.stats.model == "chain"
        assert result.stats.run_s > 0

    def test_output_subset_request(self, registry):
        graph = registry.get("chain").graph
        feeds = random_feeds(graph)
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            result = server.submit("chain", feeds, outputs=["r"]).result(timeout=30)
        assert set(result.outputs) == {"r"}

    def test_unknown_model_fails_fast(self, registry):
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            with pytest.raises(ServingError, match="unknown model"):
                server.submit("nope", {})

    def test_submit_before_start_rejected(self, registry):
        server = RequestScheduler(registry, ArenaPool(registry), workers=1)
        with pytest.raises(ServingError, match="not running"):
            server.submit("chain", {})

    def test_request_error_sets_future_exception(self, registry):
        pool = ArenaPool(registry)
        with RequestScheduler(registry, pool, workers=1) as server:
            fut = server.submit("chain", {})  # missing feeds
            with pytest.raises(ExecutionError, match="missing feed"):
                fut.result(timeout=30)
        assert server.stats().errors == 1
        # the pool survives failed requests
        assert pool.stats().leased == 0


class TestMicroBatching:
    def _request(self, model: str) -> _Request:
        return _Request(
            model=model,
            feeds={},
            outputs=None,
            future=Future(),
            enqueued_at=time.perf_counter(),
        )

    def test_take_batch_groups_same_model(self, registry):
        server = RequestScheduler(
            registry, ArenaPool(registry), workers=1, max_batch=3
        )
        for model in ("chain", "chain", "diamond", "chain", "chain"):
            server._queue.append(self._request(model))
        batch = server._take_batch()
        assert [r.model for r in batch] == ["chain", "chain", "chain"]
        # the skipped diamond request kept its place at the head
        assert [r.model for r in server._queue] == ["diamond", "chain"]

    def test_take_batch_respects_limit_one(self, registry):
        server = RequestScheduler(registry, ArenaPool(registry), workers=1)
        for model in ("chain", "chain"):
            server._queue.append(self._request(model))
        assert len(server._take_batch()) == 1

    def test_batched_requests_all_answered(self, registry):
        graph = registry.get("diamond").graph
        params = init_params(graph, 0)
        pool = ArenaPool(registry)
        with RequestScheduler(
            registry, pool, workers=1, max_batch=4
        ) as server:
            futures = [
                server.submit("diamond", random_feeds(graph, seed=i))
                for i in range(8)
            ]
            results = [f.result(timeout=30) for f in futures]
        ref = Executor(graph, params=params)
        for i, result in enumerate(results):
            want = ref.run(random_feeds(graph, seed=i))
            for name in want:
                np.testing.assert_array_equal(want[name], result.outputs[name])
        stats = server.stats()
        assert stats.requests == 8
        assert stats.batches <= 8  # some leases served several requests


class TestConcurrentServing:
    def test_four_clients_two_models_bitwise(self, registry):
        """The acceptance-criterion shape: >= 4 concurrent clients over
        >= 2 resident models, every response bitwise-equal to the
        reference executor."""
        report = run_load(
            registry,
            requests=32,
            clients=4,
            workers=4,
            max_batch=4,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True
        assert len(report.models) == 2
        assert report.pool.hit_rate > 0.0
        assert report.rps > 0

    def test_budgeted_run_with_eviction_still_bitwise(self, registry):
        budget = max(
            registry.arena_bytes("chain"), registry.arena_bytes("diamond")
        ) + min(
            registry.arena_bytes("chain"), registry.arena_bytes("diamond")
        ) // 2
        report = run_load(
            registry,
            requests=24,
            clients=4,
            workers=2,
            budget=budget,
            verify=True,
        )
        assert report.errors == 0
        assert report.verified is True

    def test_baseline_mode_serves_identically(self, registry):
        report = run_load(
            registry, requests=12, clients=3, workers=2, reuse=False, verify=True
        )
        assert report.verified is True
        assert report.pool.hits == 0

    def test_stats_percentiles_ordered(self, registry):
        report = run_load(registry, requests=16, clients=2, workers=2)
        assert 0.0 < report.p50_ms <= report.p99_ms
