"""Tensor metadata: dtypes, shapes, byte accounting."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.graph.tensor import DType, TensorSpec


class TestDType:
    def test_float32_itemsize(self):
        assert DType.FLOAT32.itemsize == 4

    def test_float16_itemsize(self):
        assert DType.FLOAT16.itemsize == 2

    def test_int8_itemsize(self):
        assert DType.INT8.itemsize == 1

    def test_numpy_dtype(self):
        assert DType.FLOAT32.numpy == np.dtype("float32")

    def test_from_any_passthrough(self):
        assert DType.from_any(DType.INT8) is DType.INT8

    def test_from_any_string(self):
        assert DType.from_any("float32") is DType.FLOAT32

    def test_from_any_numpy(self):
        assert DType.from_any(np.dtype("uint8")) is DType.UINT8

    def test_from_any_unknown_raises(self):
        with pytest.raises((ValueError, TypeError)):
            DType.from_any("float128foo")


class TestTensorSpec:
    def test_bytes_fp32(self):
        assert TensorSpec((4, 8, 8)).bytes == 4 * 8 * 8 * 4

    def test_bytes_int8(self):
        assert TensorSpec((4, 8, 8), DType.INT8).bytes == 4 * 8 * 8

    def test_kib(self):
        assert TensorSpec((1, 16, 16)).kib == 1.0

    def test_elements(self):
        assert TensorSpec((3, 5, 7)).elements == 105

    def test_rank(self):
        assert TensorSpec((10,)).rank == 1
        assert TensorSpec((1, 2, 3)).rank == 3

    def test_list_shape_coerced_to_tuple(self):
        spec = TensorSpec([4, 4])  # type: ignore[arg-type]
        assert spec.shape == (4, 4)

    def test_dtype_string_coerced(self):
        spec = TensorSpec((2,), "int8")  # type: ignore[arg-type]
        assert spec.dtype is DType.INT8

    def test_zero_dim_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec((0, 4))

    def test_negative_dim_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec((4, -1))

    def test_non_int_dim_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec((4.0, 4))  # type: ignore[arg-type]

    def test_with_shape_keeps_dtype(self):
        spec = TensorSpec((4, 4), DType.INT8).with_shape((2, 2))
        assert spec.shape == (2, 2)
        assert spec.dtype is DType.INT8

    def test_equality_and_hash(self):
        assert TensorSpec((4, 4)) == TensorSpec((4, 4))
        assert hash(TensorSpec((4, 4))) == hash(TensorSpec((4, 4)))
        assert TensorSpec((4, 4)) != TensorSpec((4, 4), DType.INT8)

    def test_str_contains_dims(self):
        assert "4x8x8" in str(TensorSpec((4, 8, 8)))
