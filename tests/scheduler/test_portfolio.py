"""Strategy registry and the parallel portfolio compiler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.suite import get_cell
from repro.scheduler.cache import ScheduleCache
from repro.scheduler.device import SPARKFUN_EDGE, DeviceSpec
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.portfolio import PortfolioCompiler
from repro.scheduler.registry import (
    default_portfolio,
    get_strategy,
    run_strategy,
    strategy_names,
)
from repro.scheduler.serenity import Serenity

from tests.conftest import random_dag_graph

#: the strategies cheap enough to run under hypothesis
FAST_STRATEGIES = ("kahn", "dfs", "greedy", "serenity-fast", "serenity-dp", "serenity")


class TestRegistry:
    def test_default_portfolio_is_registered(self):
        for name in default_portfolio():
            assert name in strategy_names()

    def test_names_ordered_by_cost(self):
        names = strategy_names()
        ranks = [get_strategy(n).rank for n in names]
        assert ranks == sorted(ranks)

    def test_unknown_strategy_raises(self):
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError, match="unknown strategy"):
            get_strategy("bogus")

    def test_duplicate_registration_rejected(self):
        from repro.exceptions import SchedulingError
        from repro.scheduler.registry import register_strategy

        with pytest.raises(SchedulingError, match="duplicate"):
            register_strategy("kahn", summary="clash")(lambda g: None)


class TestStrategyProperties:
    """Paper-level invariants every registered strategy must satisfy."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_outputs_are_valid_topological_orders(self, seed):
        graph = random_dag_graph(10, seed, with_views=True)
        for name in FAST_STRATEGIES:
            out = run_strategy(name, graph)
            # validate() raises unless the order is a complete
            # topological order of the scheduled graph
            out.schedule.validate(out.scheduled_graph)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_reported_peak_matches_independent_replay(self, seed):
        graph = random_dag_graph(10, seed)
        for name in FAST_STRATEGIES:
            out = run_strategy(name, graph)
            replay = simulate_schedule(
                out.scheduled_graph, out.schedule, validate=True
            )
            assert out.peak_bytes == replay.peak_bytes

    def test_anneal_strategy(self, diamond_graph):
        out = run_strategy("anneal", diamond_graph)
        out.schedule.validate(out.scheduled_graph)
        replay = simulate_schedule(out.scheduled_graph, out.schedule)
        assert out.peak_bytes == replay.peak_bytes

    def test_rewriting_strategies_target_rewritten_graph(
        self, concat_depthwise_graph
    ):
        out = run_strategy("serenity", concat_depthwise_graph)
        assert len(out.scheduled_graph) > len(concat_depthwise_graph)


class TestPortfolioCompiler:
    @pytest.mark.parametrize("key", ["swiftnet-b", "swiftnet-c"])
    def test_winner_no_worse_than_plain_serenity(self, key):
        """The portfolio includes SERENITY, so it can never lose to it."""
        graph = get_cell(key).factory()
        result = PortfolioCompiler(workers=0, cache=None).compile(graph)
        serenity_peak = Serenity().compile(get_cell(key).factory()).peak_bytes
        assert result.winner.peak_bytes <= serenity_peak

    def test_batch_covers_all_graphs_and_strategies(self, diamond_graph):
        graphs = [random_dag_graph(8, s) for s in (1, 2)] + [diamond_graph]
        report = PortfolioCompiler(workers=0, cache=None).compile_batch(graphs)
        assert len(report.results) == 3
        for res in report.results:
            assert {o.strategy for o in res.outcomes} == set(default_portfolio())
            res.winner.schedule.validate(res.winner.scheduled_graph)

    def test_device_budget_cancels_expensive_strategies(self):
        """A cheap fit short-circuits the race (serial path)."""
        graph = get_cell("swiftnet-c").factory()  # fits 250KB via baseline
        result = PortfolioCompiler(
            workers=0, cache=None, device=SPARKFUN_EDGE
        ).compile(graph)
        assert result.fits is True
        assert "serenity" in result.cancelled
        assert "serenity-dp" in result.cancelled

    def test_impossible_budget_runs_everything(self):
        tiny = DeviceSpec("tiny", 1)
        graph = get_cell("swiftnet-c").factory()
        result = PortfolioCompiler(
            workers=0, cache=None, device=tiny
        ).compile(graph)
        assert result.fits is False
        assert result.cancelled == ()
        assert len(result.outcomes) == len(default_portfolio())

    def test_parallel_budget_race_matches_serial(self):
        """The parallel race must actually skip expensive strategies —
        same cancellation semantics as the serial path, even when the
        pool has more workers than jobs."""
        serial = PortfolioCompiler(
            workers=0, cache=None, device=SPARKFUN_EDGE
        ).compile(get_cell("swiftnet-c").factory())
        parallel = PortfolioCompiler(
            workers=3, cache=None, device=SPARKFUN_EDGE
        ).compile(get_cell("swiftnet-c").factory())
        assert set(parallel.cancelled) == set(serial.cancelled)
        assert parallel.cancelled != ()
        assert parallel.fits is True
        assert parallel.winner.peak_bytes == serial.winner.peak_bytes

    def test_duplicate_strategies_deduplicated(self, diamond_graph):
        report = PortfolioCompiler(
            ["kahn", "kahn", "greedy"], workers=0, cache=None
        ).compile_batch([diamond_graph])
        assert report.strategies == ("kahn", "greedy")
        assert len(report.results[0].outcomes) == 2

    def test_parallel_matches_serial(self, diamond_graph, hourglass_graph):
        graphs = [diamond_graph, hourglass_graph]
        serial = PortfolioCompiler(workers=0, cache=None).compile_batch(graphs)
        parallel = PortfolioCompiler(workers=2, cache=None).compile_batch(graphs)
        for a, b in zip(serial.results, parallel.results):
            assert a.winner.strategy == b.winner.strategy
            assert a.winner.peak_bytes == b.winner.peak_bytes
            assert a.winner.schedule.order == b.winner.schedule.order

    def test_summary_report(self, diamond_graph):
        report = PortfolioCompiler(workers=0, cache=None).compile_batch(
            [diamond_graph]
        )
        text = report.summary()
        assert "portfolio compilation report" in text
        assert "diamond" in text
        assert "wall time" in text

    def test_strategy_subset(self, diamond_graph):
        report = PortfolioCompiler(
            ["kahn", "greedy"], workers=0, cache=None
        ).compile_batch([diamond_graph])
        assert report.strategies == ("kahn", "greedy")
        assert {o.strategy for o in report.results[0].outcomes} == {
            "kahn",
            "greedy",
        }

    def test_cached_batch_is_byte_identical(self, tmp_path, hourglass_graph):
        cache = ScheduleCache(tmp_path)
        cold = PortfolioCompiler(workers=0, cache=cache).compile(hourglass_graph)
        warm = PortfolioCompiler(workers=0, cache=cache).compile(hourglass_graph)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.winner.strategy == cold.winner.strategy
        assert warm.winner.peak_bytes == cold.winner.peak_bytes
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.schedule.order == b.schedule.order


class TestBrokenPoolFallback:
    """A crashed worker pool degrades to in-process compilation instead
    of aborting the batch."""

    @pytest.fixture
    def broken_pool(self, monkeypatch):
        """Replace the process pool with one whose every future fails
        with BrokenProcessPool (as after a worker OOM-kill)."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.scheduler import portfolio

        class _BrokenPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args, **kwargs):
                fut: Future = Future()
                fut.set_exception(BrokenProcessPool("worker died"))
                return fut

        monkeypatch.setattr(portfolio, "ProcessPoolExecutor", _BrokenPool)

    def test_batch_completes_in_process(self, broken_pool, diamond_graph):
        compiler = PortfolioCompiler(("kahn", "greedy"), workers=2, cache=None)
        report = compiler.compile_batch([diamond_graph])
        result = report.results[0]
        assert {o.strategy for o in result.outcomes} == {"kahn", "greedy"}
        assert set(result.fallbacks) == {"kahn", "greedy"}
        assert "recomputed in-process" in report.summary()

    def test_budget_race_still_cancels_after_fallback(
        self, broken_pool, diamond_graph
    ):
        huge = DeviceSpec("huge", 10**12)  # kahn alone satisfies it
        compiler = PortfolioCompiler(
            ("kahn", "greedy"), workers=2, cache=None, device=huge
        )
        result = compiler.compile_batch([diamond_graph]).results[0]
        assert [o.strategy for o in result.outcomes] == ["kahn"]
        assert result.fallbacks == ("kahn",)
        assert "greedy" in result.cancelled

    def test_fallback_matches_serial_compilation(self, broken_pool, diamond_graph):
        degraded = PortfolioCompiler(("kahn", "greedy"), workers=2, cache=None)
        serial = PortfolioCompiler(("kahn", "greedy"), workers=0, cache=None)
        got = degraded.compile_batch([diamond_graph]).results[0]
        want = serial.compile_batch([diamond_graph]).results[0]
        for a, b in zip(got.outcomes, want.outcomes):
            assert a.strategy == b.strategy
            assert a.schedule.order == b.schedule.order
            assert a.peak_bytes == b.peak_bytes

    def test_real_worker_crash_degrades(self, diamond_graph):
        """End-to-end: a strategy whose worker process dies mid-run
        breaks the real pool; the batch must still complete."""
        import multiprocessing
        import os

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash strategy must be visible in worker processes")

        from repro.scheduler import registry as reg_mod
        from repro.scheduler.registry import register_strategy

        parent = os.getpid()
        name = "crashy-test-only"

        def crashy(graph):
            if os.getpid() != parent:  # die only inside pool workers
                os._exit(1)
            return run_strategy("kahn", graph).schedule

        register_strategy(
            name, summary="test-only crashing strategy", rank=1
        )(crashy)
        try:
            compiler = PortfolioCompiler((name,), workers=2, cache=None)
            result = compiler.compile_batch([diamond_graph]).results[0]
            assert [o.strategy for o in result.outcomes] == [name]
            assert result.fallbacks == (name,)
        finally:
            reg_mod._REGISTRY.pop(name, None)
