"""Simulated-annealing scheduler — a metaheuristic baseline (extension).

Not part of the paper; included to quantify the claim that generic
search struggles where the DP is exact. The move set is the classic
adjacent-transposition walk over topological orders: swap two
consecutive schedule entries when no edge orders them, accept downhill
moves always and uphill moves with Boltzmann probability.

On small graphs annealing often finds the optimum; on irregular cells
it plateaus above the DP's peak while spending far more evaluations —
see ``tests/scheduler/test_annealing.py`` and the ablation bench.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel, simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import random_topological

__all__ = ["AnnealingResult", "anneal_schedule"]


@dataclass(frozen=True)
class AnnealingResult:
    schedule: Schedule
    peak_bytes: int
    evaluations: int
    accepted_moves: int


def _swappable(graph: Graph, order: list[str], i: int) -> bool:
    """Whether order[i] and order[i+1] may exchange positions."""
    return order[i] not in graph.preds(order[i + 1])


def anneal_schedule(
    graph: Graph,
    iterations: int = 5000,
    t_start: float = 1.0,
    t_end: float = 0.01,
    seed: int = 0,
    restarts: int = 3,
) -> AnnealingResult:
    """Simulated annealing over topological orders.

    Temperature is in units of the initial peak (moves changing the peak
    by x% are accepted with ``exp(-x / T)`` at temperature ``T``);
    geometric cooling from ``t_start`` to ``t_end``; ``restarts``
    independent chains keep the best schedule found.
    """
    rng = random.Random(seed)
    model = BufferModel.of(graph)

    def peak_of_order(order: list[str]) -> int:
        return simulate_schedule(
            graph, Schedule(tuple(order)), model=model, validate=False
        ).peak_bytes

    best_order: list[str] | None = None
    best_peak = 0
    evaluations = 0
    accepted = 0
    cooling = (t_end / t_start) ** (1.0 / max(iterations - 1, 1))

    for _ in range(max(restarts, 1)):
        order = list(random_topological(graph, rng).order)
        peak = peak_of_order(order)
        evaluations += 1
        scale = float(peak) or 1.0
        if best_order is None or peak < best_peak:
            best_order, best_peak = list(order), peak

        temperature = t_start
        for _ in range(iterations):
            if len(order) >= 2:
                i = rng.randrange(len(order) - 1)
                if _swappable(graph, order, i):
                    order[i], order[i + 1] = order[i + 1], order[i]
                    new_peak = peak_of_order(order)
                    evaluations += 1
                    delta = (new_peak - peak) / scale
                    if delta <= 0 or rng.random() < math.exp(
                        -delta / temperature
                    ):
                        peak = new_peak
                        accepted += 1
                        if peak < best_peak:
                            best_order, best_peak = list(order), peak
                    else:
                        order[i], order[i + 1] = order[i + 1], order[i]
            temperature *= cooling

    assert best_order is not None
    return AnnealingResult(
        schedule=Schedule(tuple(best_order), graph.name),
        peak_bytes=best_peak,
        evaluations=evaluations,
        accepted_moves=accepted,
    )
