"""Two-level memory-hierarchy simulation (off-chip traffic, Fig 11)."""

from repro.memsim.hierarchy import (
    MemoryHierarchySimulator,
    OffchipLink,
    TrafficReport,
    offchip_traffic,
)
from repro.memsim.policies import (
    BeladyPolicy,
    FIFOPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memsim.trace import Access, AccessTrace, build_trace

__all__ = [
    "Access",
    "AccessTrace",
    "build_trace",
    "ReplacementPolicy",
    "BeladyPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "make_policy",
    "MemoryHierarchySimulator",
    "OffchipLink",
    "TrafficReport",
    "offchip_traffic",
]
