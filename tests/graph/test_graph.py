"""Graph container invariants and queries."""

import pytest

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec


def _n(name, inputs=(), bytes_shape=(1, 2, 2), op=None, memory=None):
    return Node(
        name=name,
        op=op or ("input" if not inputs else "blob"),
        inputs=tuple(inputs),
        output=TensorSpec(bytes_shape),
        memory=memory or MemorySemantics(),
    )


@pytest.fixture
def g() -> Graph:
    g = Graph("t")
    g.add(_n("a"))
    g.add(_n("b", ("a",)))
    g.add(_n("c", ("a",)))
    g.add(_n("d", ("b", "c")))
    return g


class TestConstruction:
    def test_insertion_order_preserved(self, g):
        assert g.node_names == ["a", "b", "c", "d"]

    def test_duplicate_name_rejected(self, g):
        with pytest.raises(GraphError, match="duplicate"):
            g.add(_n("a"))

    def test_forward_reference_rejected(self):
        g = Graph()
        with pytest.raises(GraphError, match="unknown producer"):
            g.add(_n("x", ("ghost",)))

    def test_add_node_convenience(self):
        g = Graph()
        node = g.add_node("x", "input", output=(2, 2))
        assert node.output == TensorSpec((2, 2))

    def test_add_node_requires_output(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("x", "input", output=None)

    def test_len_and_contains(self, g):
        assert len(g) == 4
        assert "a" in g and "zz" not in g

    def test_unknown_node_lookup(self, g):
        with pytest.raises(GraphError, match="unknown node"):
            g.node("zz")


class TestTopologyQueries:
    def test_preds(self, g):
        assert g.preds("d") == ("b", "c")

    def test_succs_in_insertion_order(self, g):
        assert g.succs("a") == ("b", "c")

    def test_succs_deduplicated(self):
        g = Graph()
        g.add(_n("a"))
        g.add(_n("dbl", ("a", "a")))
        assert g.succs("a") == ("dbl",)
        assert g.out_degree("a") == 1

    def test_in_degree_distinct(self):
        g = Graph()
        g.add(_n("a"))
        g.add(_n("dbl", ("a", "a")))
        assert g.in_degree("dbl") == 1

    def test_sources_and_sinks(self, g):
        assert g.sources == ["a"]
        assert g.sinks == ["d"]

    def test_edges(self, g):
        assert g.edges() == [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        assert g.num_edges == 4

    def test_input_nodes(self, g):
        assert g.input_nodes == ["a"]


class TestValidation:
    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError, match="empty"):
            Graph().validate()

    def test_valid_graph_passes(self, g):
        g.validate()

    def test_inplace_larger_than_target_rejected(self):
        g = Graph()
        g.add(_n("a", bytes_shape=(1, 2, 2)))
        g.add(
            _n(
                "b",
                ("a",),
                bytes_shape=(4, 2, 2),
                memory=MemorySemantics(inplace_of=0),
            )
        )
        with pytest.raises(GraphError, match="does not fit"):
            g.validate()

    def test_is_topological_true(self, g):
        assert g.is_topological(["a", "b", "c", "d"])
        assert g.is_topological(["a", "c", "b", "d"])

    def test_is_topological_violations(self, g):
        assert not g.is_topological(["b", "a", "c", "d"])  # edge violated
        assert not g.is_topological(["a", "b", "c"])  # incomplete
        assert not g.is_topological(["a", "b", "c", "d", "d"])  # repeat


class TestDerivation:
    def test_copy_is_structural_equal_but_independent(self, g):
        h = g.copy()
        assert h == g
        h.add(_n("e", ("d",)))
        assert h != g

    def test_eq_detects_attr_change(self, g):
        h = g.copy()
        h.node("d").attrs["x"] = 1
        assert h != g

    def test_eq_other_type(self, g):
        assert (g == 42) is False or (g == 42) is NotImplemented or True

    def test_induced_subgraph_plain(self, g):
        sub = g.induced_subgraph(["a", "b"])
        assert sub.node_names == ["a", "b"]

    def test_induced_subgraph_stubs_boundary(self, g):
        sub = g.induced_subgraph(["d"])
        # b and c become input stubs so d is schedulable
        assert set(sub.node_names) == {"b", "c", "d"}
        assert sub.node("b").op == "input"
        assert sub.node("b").output == g.node("b").output

    def test_induced_subgraph_unknown_node(self, g):
        with pytest.raises(GraphError, match="unknown nodes"):
            g.induced_subgraph(["zz"])

    def test_to_networkx(self, g):
        nxg = g.to_networkx()
        assert set(nxg.nodes) == {"a", "b", "c", "d"}
        assert nxg.number_of_edges() == 4

    def test_total_activation_bytes(self, g):
        assert g.total_activation_bytes() == 4 * (1 * 2 * 2 * 4)
