"""Prefetching executor: overlap semantics, parity, and lifecycle.

The spill parity matrix in ``test_spill_executor.py`` already runs with
prefetch on by default; this file pins what prefetch *adds* — inline
and overlapped runs stay bitwise-identical, stall-vs-hidden time is
accounted sanely under a modeled link, and the background transfer
engine shuts down cleanly.
"""

import numpy as np
import pytest

from repro.allocator.arena import plan_allocation
from repro.allocator.spill import min_capacity_bytes, plan_spill
from repro.memsim import OffchipLink
from repro.models.suite import get_cell
from repro.runtime.executor import init_params, random_feeds
from repro.runtime.plan_executor import PlanExecutor
from repro.scheduler.registry import run_strategy


@pytest.fixture(scope="module")
def cell():
    out = run_strategy("greedy", get_cell("randwire-c10-a").factory())
    graph, schedule = out.scheduled_graph, out.schedule
    plan = plan_allocation(graph, schedule)
    floor = min_capacity_bytes(graph, schedule)
    cap = max(plan.arena_bytes // 2, floor)
    spill = plan_spill(graph, schedule, plan, cap)
    assert not spill.is_trivial and spill.prefetch is not None
    return {
        "graph": graph,
        "schedule": schedule,
        "plan": plan,
        "params": init_params(graph, seed=0),
        "spill": spill,
    }


def _executor(cell, *, prefetch: bool, link=None, batch_size: int = 1):
    return PlanExecutor(
        cell["graph"],
        cell["schedule"],
        cell["plan"],
        params=cell["params"],
        batch_size=batch_size,
        spill=cell["spill"],
        prefetch=prefetch,
        link=link,
    )


class TestPrefetchParity:
    def test_solo_bitwise_matches_inline(self, cell):
        feeds = random_feeds(cell["graph"], seed=3)
        inline = _executor(cell, prefetch=False)
        overlapped = _executor(cell, prefetch=True)
        try:
            want = inline.run(feeds)
            for _round in range(2):  # second run replays stale slots
                got = overlapped.run(feeds)
                for name in want:
                    np.testing.assert_array_equal(want[name], got[name])
        finally:
            inline.close()
            overlapped.close()

    def test_batched_bitwise_matches_inline(self, cell):
        n = 4
        stacked = {
            k: np.stack([random_feeds(cell["graph"], seed=s)[k] for s in range(n)])
            for k in random_feeds(cell["graph"], seed=0)
        }
        inline = _executor(cell, prefetch=False, batch_size=n)
        overlapped = _executor(cell, prefetch=True, batch_size=n)
        try:
            want = inline.run_batch(stacked)
            got = overlapped.run_batch(stacked)
            for name in want:
                np.testing.assert_array_equal(want[name], got[name])
        finally:
            inline.close()
            overlapped.close()


class TestStallHiddenAccounting:
    def _link(self, cell) -> OffchipLink:
        """A link slow enough that transfer time is visible next to
        this tiny cell's compute."""
        return OffchipLink(bandwidth_bytes_per_s=200e6)

    def test_prefetch_hides_transfer_time(self, cell):
        px = _executor(cell, prefetch=True, link=self._link(cell))
        try:
            px.run(random_feeds(cell["graph"], seed=0))
            stats = px.last_stats
            assert px.prefetch_active
            assert stats.prefetch_lead > 0
            assert stats.spill_hidden_s > 0.0
            report = px.traffic_report()
            assert report.hidden_s == stats.spill_hidden_s
            assert 0.0 < report.hidden_fraction <= 1.0
        finally:
            px.close()

    def test_inline_stalls_and_hides_nothing(self, cell):
        px = _executor(cell, prefetch=False, link=self._link(cell))
        try:
            px.run(random_feeds(cell["graph"], seed=0))
            stats = px.last_stats
            assert not px.prefetch_active
            assert stats.prefetch_lead == 0
            assert stats.spill_hidden_s == 0.0
            assert stats.spill_stall_s > 0.0
            assert px.traffic_report().hidden_fraction == 0.0
        finally:
            px.close()


class TestLifecycle:
    def test_close_is_idempotent(self, cell):
        px = _executor(cell, prefetch=True)
        px.run(random_feeds(cell["graph"], seed=1))
        px.close()
        px.close()
        assert not px.prefetch_active

    def test_prefetch_inactive_without_spill(self, cell):
        px = PlanExecutor(
            cell["graph"],
            cell["schedule"],
            cell["plan"],
            params=cell["params"],
            prefetch=True,
        )
        assert not px.prefetch_active
        px.close()

    def test_prefetch_inactive_when_disabled(self, cell):
        px = _executor(cell, prefetch=False)
        assert not px.prefetch_active
        px.close()
