"""Budget-bounded pool of reusable arena executors.

The whole point of the compiled plan is a *fixed, preallocated*
footprint — so the serving runtime must not allocate an arena per
request. The pool owns :class:`~repro.runtime.plan_executor.PlanExecutor`
workers (each one arena + solved placement + parameters) per model and
hands them out to request threads:

* ``acquire`` prefers an **idle executor of the same model** (an arena
  hit: zero allocation, zero placement work on the request path);
* a **miss** builds a fresh executor, but only if its arena fits the
  remaining memory budget — the resident set of all pooled arenas is
  capped by a :class:`~repro.scheduler.device.DeviceSpec` (or raw byte
  budget), mirroring the device the plans were compiled for;
* when the budget is exhausted, admission control first **evicts idle
  arenas** of other models (coldest first), then blocks the request
  until a lease is released; a model whose single arena can never fit
  is rejected outright with :class:`~repro.exceptions.AdmissionError` —
  unless spilling is enabled.

``spill`` picks what happens to arenas that exceed the budget
outright. ``"never"`` (default) keeps the hard rejection. ``"auto"``
degrades them instead: the executor is built against a compile-time
:class:`~repro.allocator.spill.SpillPlan` whose on-chip (resident)
region fits the budget, with cold buffers homed off-chip and fetched /
written back around their uses — measured traffic, bitwise-identical
outputs. ``"always"`` builds every executor that way (a fitting model
gets the trivial zero-traffic plan). Admission then prices the
executor at its *resident* bytes, the on-chip footprint the budget
actually models. Batched executors spill per **row**: the per-row
capacity is ``budget // batch_size``, so an ``N x`` footprint that
misses the budget stages cold rows' buffers instead of refusing the
whole batch.

``batch_size=N`` makes every pooled executor **batch-capable**: its
arena is ``N`` per-sample rows, the request scheduler can stack a
drained micro-batch into one ``run_batch`` call, and admission prices
the executor at ``N x`` the compiled plan — the budget bounds real
resident bytes, batched or not.

:meth:`ArenaPool.preload` warms the pool before traffic arrives: one
executor per registered model is built up front (inside the budget,
never evicting anything), so the first request of every model is an
arena *hit* instead of paying construction + allocation on the request
path — the cold-start misses that otherwise sit in the p99.

``reuse=False`` turns the pool into the naive baseline — every acquire
builds a fresh executor, every release discards it — which is exactly
the fresh-allocation-per-request behaviour the serving benchmark
quantifies against.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.allocator.spill import SPILL_MODES, SpillPlan
from repro.exceptions import AdmissionError, ServingError, SpillError
from repro.memsim import OffchipLink
from repro.runtime.plan_executor import PlanExecutor
from repro.scheduler.device import DeviceSpec
from repro.serving.registry import ModelRegistry

__all__ = ["ArenaPool", "PoolStats"]


@dataclass(frozen=True)
class PoolStats:
    """Cumulative pool accounting (snapshot; see :meth:`ArenaPool.stats`)."""

    #: acquires served by a pooled, already-built executor
    hits: int
    #: acquires that had to build a fresh executor + arena
    misses: int
    #: idle executors dropped to make room under the budget
    evictions: int
    #: acquires that had to block waiting for a lease to come back
    waits: int
    #: bytes of arena currently resident (idle + leased)
    resident_bytes: int
    #: executors currently leased out
    leased: int
    #: executors built ahead of traffic by :meth:`ArenaPool.preload`
    preloads: int = 0
    #: executors built against a non-trivial spill plan (over-budget
    #: admissions degraded to off-chip staging instead of being
    #: refused; trivial everything-fits plans do not count)
    spilled_builds: int = 0
    #: spilled executors whose transfers run on the background prefetch
    #: engine (double-buffered staging) rather than inline
    prefetch_builds: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArenaPool:
    """Reusable preallocated executors per model, under one memory budget.

    Parameters
    ----------
    registry:
        The verified artifacts this pool may build executors for.
    budget:
        A :class:`DeviceSpec`, a raw byte count, or ``None`` for
        unlimited. Bounds the *sum* of all resident arena bytes.
    seed:
        Parameter seed passed to every executor (deterministic weights,
        shared across the pool so every executor of a model computes the
        same function).
    scrub:
        Arena scrub policy for pooled executors (see
        :class:`~repro.runtime.plan_executor.PlanExecutor`).
    reuse:
        ``False`` disables pooling entirely (fresh executor per acquire,
        discarded on release) — the serving benchmark's baseline.
    batch_size:
        Batch capacity of every pooled executor. ``N > 1`` provisions
        ``N`` arena rows per executor (admission prices them at ``N x``
        the plan) so the scheduler can stack same-model requests into
        one batched run.
    spill:
        Over-budget admission policy (see the module docstring):
        ``"never"`` refuses, ``"auto"`` degrades to a spill-planned
        executor whose resident region fits the budget, ``"always"``
        spill-plans every build.
    spill_policy:
        Replacement policy ranking spill victims (``belady`` | ``lru``
        | ``fifo`` — the Fig 11 simulator's registry).
    tile_bytes:
        Transfer granularity for spill-planned executors: ``None``
        stages whole buffers; a positive size streams sub-buffer tiles,
        admitting models at capacities below the whole-buffer floor
        (the Fig 11 small-capacity regime, live).
    prefetch:
        ``True`` (default) runs spilled executors' transfers on the
        background prefetch engine when their plan carries a
        double-buffered layout; ``False`` forces inline transfers (the
        stall-everything baseline the spill benchmark compares against).
    link:
        Optional :class:`~repro.memsim.OffchipLink` modeling the
        off-chip transfer path's bandwidth/latency on every pooled
        executor's fetches and writebacks.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        budget: DeviceSpec | int | None = None,
        *,
        seed: int = 0,
        scrub: str = "never",
        reuse: bool = True,
        batch_size: int = 1,
        spill: str = "never",
        spill_policy: str = "belady",
        tile_bytes: int | None = None,
        prefetch: bool = True,
        link: OffchipLink | None = None,
    ) -> None:
        if batch_size < 1:
            raise ServingError(f"batch_size must be >= 1, got {batch_size}")
        if spill not in SPILL_MODES:
            raise ServingError(
                f"unknown spill mode {spill!r}; pick one of {SPILL_MODES}"
            )
        self.registry = registry
        self.budget_bytes = (
            budget.sram_bytes if isinstance(budget, DeviceSpec) else budget
        )
        self.seed = seed
        self.scrub = scrub
        self.reuse = reuse
        self.batch_size = batch_size
        self.spill = spill
        self.spill_policy = spill_policy
        self.tile_bytes = tile_bytes
        self.prefetch = prefetch
        self.link = link
        self._cond = threading.Condition()
        #: idle executors per model, most-recently-released last
        self._idle: dict[str, deque[PlanExecutor]] = defaultdict(deque)
        #: model names by last use, coldest first (for eviction)
        self._cold_order: deque[str] = deque()
        self._resident_bytes = 0
        self._leased = 0
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._waits = 0
        self._preloads = 0
        self._spilled_builds = 0
        self._prefetch_builds = 0

    # ------------------------------------------------------------------
    def _spill_plan_for(self, name: str) -> SpillPlan | None:
        """The spill plan an executor of ``name`` is built against
        (None: plain resident executor).

        ``auto`` spill-plans only models whose ``batch_size x`` arena
        misses the budget; ``always`` plans every model. The per-row
        on-chip capacity is ``budget // batch_size`` — rows stage and
        spill independently, so ``batch_size`` resident rows together
        fit the budget. Raises :class:`AdmissionError` when even full
        spilling cannot meet it (the schedule's single-step working
        set is the floor)."""
        if self.spill == "never" or self.budget_bytes is None:
            return None
        model = self.registry.get(name)
        per_row = self.budget_bytes // self.batch_size
        if self.spill == "auto" and (
            model.arena_bytes_for(self.batch_size) <= self.budget_bytes
        ):
            return None
        try:
            return model.spill_plan(
                per_row, policy=self.spill_policy, tile_bytes=self.tile_bytes
            )
        except SpillError as exc:
            raise AdmissionError(
                f"model {name!r} cannot be admitted even with spilling: "
                f"per-row on-chip capacity {per_row} bytes (budget "
                f"{self.budget_bytes} / batch {self.batch_size}) is below "
                f"the schedule's floor ({exc})"
            ) from exc

    def _build(self, name: str) -> PlanExecutor:
        model = self.registry.get(name)
        spill = self._spill_plan_for(name)
        executor = PlanExecutor(
            model.graph,
            model.schedule,
            model.plan,
            seed=self.seed,
            scrub=self.scrub,
            batch_size=self.batch_size,
            spill=spill,
            prefetch=self.prefetch,
            link=self.link,
        )
        if spill is not None and not spill.is_trivial:
            # only genuinely degraded executors count — a trivial plan
            # (everything fits) moves no bytes off-chip
            with self._cond:
                self._spilled_builds += 1
                if executor.prefetch_active:
                    self._prefetch_builds += 1
        return executor

    def _arena_cost(self, name: str) -> int:
        """Bytes one executor of ``name`` counts against the budget.

        This is the *plan's* arena size times the pool's batch capacity
        (a batch-``N`` executor holds ``N`` layout-identical rows) — the
        number device-fit verdicts are made of — used consistently for
        admission, release and eviction. A spill-planned executor is
        priced at its **resident** bytes per row: only the on-chip
        region competes for the budget; its off-chip home region does
        not. (The NumPy executor simulates in float64, so its host
        allocation can be larger than the plan for narrower dtypes;
        budgets model the device, not the simulator's heap.)
        """
        spill = self._spill_plan_for(name)
        if spill is not None:
            return spill.resident_bytes * self.batch_size
        return self.registry.arena_bytes(name, batch_size=self.batch_size)

    def _evict_idle(self, needed: int, keep: str) -> None:
        """Drop coldest idle executors (any model but ``keep``) until
        ``needed`` bytes fit the budget. Caller holds the lock."""
        assert self.budget_bytes is not None
        for name in list(self._cold_order):
            if self._resident_bytes + needed <= self.budget_bytes:
                return
            if name == keep:
                continue
            queue = self._idle.get(name)
            while queue and self._resident_bytes + needed > self.budget_bytes:
                queue.popleft().close()
                self._resident_bytes -= self._arena_cost(name)
                self._evictions += 1
            if not queue:
                self._cold_order.remove(name)

    def acquire(self, name: str, timeout: float | None = 30.0) -> PlanExecutor:
        """Lease an executor for ``name``, building one if the budget
        admits it; blocks (up to ``timeout`` seconds) when every
        admissible arena is leased out."""
        cost = self._arena_cost(name)
        if self.budget_bytes is not None and cost > self.budget_bytes:
            batched = (
                f" (batch {self.batch_size}: {self.batch_size} x "
                f"{cost // self.batch_size} bytes)"
                if self.batch_size > 1
                else ""
            )
            raise AdmissionError(
                f"model {name!r} needs a {cost}-byte arena{batched} but the "
                f"pool budget is {self.budget_bytes} bytes "
                f"({cost - self.budget_bytes} bytes short); it can never be "
                "admitted with spill='never' — set spill='auto' to degrade "
                "over-budget arenas to planned off-chip staging"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise ServingError("pool is closed")
                queue = self._idle.get(name)
                if self.reuse and queue:
                    executor = queue.pop()
                    if not queue:
                        self._cold_order.remove(name)
                    self._hits += 1
                    self._leased += 1
                    return executor
                if (
                    self.budget_bytes is None
                    or self._resident_bytes + cost <= self.budget_bytes
                ):
                    break
                self._evict_idle(cost, keep=name)
                if self._resident_bytes + cost <= self.budget_bytes:
                    break
                # everything resident is leased: wait for a release
                # (against an absolute deadline — wakeups that don't
                # admit us must not restart the clock)
                self._waits += 1
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if (
                    remaining is not None and remaining <= 0.0
                ) or not self._cond.wait(timeout=remaining):
                    raise AdmissionError(
                        f"timed out after {timeout}s waiting to admit a "
                        f"{cost}-byte arena for {name!r} "
                        f"({self._resident_bytes}/{self.budget_bytes} bytes "
                        "leased out)"
                    )
            # reserve the bytes, then build outside the lock (placement
            # solving and parameter init are the expensive part)
            self._resident_bytes += cost
            self._misses += 1
            self._leased += 1
        try:
            executor = self._build(name)
        except BaseException:
            with self._cond:
                self._resident_bytes -= cost
                self._leased -= 1
                self._cond.notify_all()
            raise
        return executor

    def release(self, name: str, executor: PlanExecutor) -> None:
        """Return a leased executor to the pool (or discard it when
        pooling is disabled)."""
        with self._cond:
            self._leased -= 1
            if self.reuse and not self._closed:
                queue = self._idle[name]
                if not queue:
                    self._cold_order.append(name)
                else:
                    # refresh warmth: model moves to the warm end
                    self._cold_order.remove(name)
                    self._cold_order.append(name)
                queue.append(executor)
            else:
                executor.close()
                self._resident_bytes -= self._arena_cost(name)
            self._cond.notify_all()

    @contextmanager
    def lease(self, name: str, timeout: float | None = 30.0) -> Iterator[PlanExecutor]:
        """``with pool.lease(name) as px: px.run(feeds)``."""
        executor = self.acquire(name, timeout=timeout)
        try:
            yield executor
        finally:
            self.release(name, executor)

    # ------------------------------------------------------------------
    def preload(self, names: Iterable[str] | None = None) -> list[str]:
        """Build one idle executor per registered model before traffic.

        Warms the pool so no request pays executor construction (arena
        allocation, placement solving, parameter init) on the serving
        path: after ``preload()`` the first request of every preloaded
        model is a pool *hit*. Models are warmed strictly within the
        remaining budget — preload never evicts and never blocks; a
        model that does not fit right now is skipped (it will be built
        on demand later, exactly as without preload). Builds are counted
        in :attr:`PoolStats.preloads`, **not** as misses — the miss
        counter keeps meaning "a request paid for a build".

        ``names`` restricts warming to a subset (default: the whole
        registry) — shard workers load every artifact so models can
        rehash onto them after a peer fails, but warm only the models
        *currently routed* to them, keeping preloads unduplicated.

        Returns the names actually built. No-op (empty list) when
        pooling is disabled.
        """
        built: list[str] = []
        if not self.reuse:
            return built
        targets = self.registry.names() if names is None else list(names)
        for name in targets:
            cost = self._arena_cost(name)
            with self._cond:
                if self._closed:
                    raise ServingError("pool is closed")
                if self._idle.get(name):
                    continue  # already warm
                if (
                    self.budget_bytes is not None
                    and self._resident_bytes + cost > self.budget_bytes
                ):
                    continue  # would not fit without evicting: skip
                self._resident_bytes += cost
            try:
                executor = self._build(name)
            except BaseException:
                with self._cond:
                    self._resident_bytes -= cost
                    self._cond.notify_all()
                raise
            with self._cond:
                if self._closed:
                    executor.close()
                    self._resident_bytes -= cost
                    self._cond.notify_all()
                    raise ServingError("pool is closed")
                queue = self._idle[name]
                queue.append(executor)
                if name not in self._cold_order:
                    self._cold_order.append(name)
                self._preloads += 1
                self._cond.notify_all()
            built.append(name)
        return built

    # ------------------------------------------------------------------
    def stats(self) -> PoolStats:
        with self._cond:
            return PoolStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                waits=self._waits,
                resident_bytes=self._resident_bytes,
                leased=self._leased,
                preloads=self._preloads,
                spilled_builds=self._spilled_builds,
                prefetch_builds=self._prefetch_builds,
            )

    def close(self) -> None:
        """Drop every idle executor and refuse further acquires."""
        with self._cond:
            self._closed = True
            for name, queue in self._idle.items():
                while queue:
                    queue.popleft().close()
                    self._resident_bytes -= self._arena_cost(name)
            self._idle.clear()
            self._cold_order.clear()
            self._cond.notify_all()
