"""Replacement policies for the two-level memory simulator.

:class:`BeladyPolicy` is the clairvoyant MIN algorithm (Belady, 1966)
the paper uses to isolate the effect of scheduling from replacement
noise: since the compile-time schedule fixes the whole access sequence,
the optimal eviction victim — the resident buffer whose next use lies
farthest in the future — is computable exactly. LRU and FIFO are
included as realistic on-device baselines for the ablation series.

(With non-uniform buffer sizes MIN is no longer provably optimal — the
generalised problem is NP-hard — and the write-back cost asymmetry
(evicting a dirty block that will be read again costs a round trip,
a clean one only the refetch) means farthest-next-use can occasionally
lose to a reactive policy by a block or two. It remains the standard
clairvoyant reference, used the same way the paper uses it; the test
suite checks it statistically rather than universally.)
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Protocol

from repro.memsim.trace import AccessTrace

__all__ = [
    "POLICY_NAMES",
    "ReplacementPolicy",
    "BeladyPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "make_policy",
]

#: the one replacement-policy registry: the fig11 offline simulator and
#: the runtime spill planner both resolve names against this
POLICY_NAMES = ("belady", "lru", "fifo")

_INF = float("inf")


class ReplacementPolicy(Protocol):
    """Chooses eviction victims among resident buffers."""

    def on_access(self, buffer_id: int, position: int) -> None:
        """Observe that ``buffer_id`` is touched at trace ``position``."""
        ...

    def victim(self, resident: set[int], position: int) -> int:
        """Pick the buffer to evict (must be in ``resident``)."""
        ...


@dataclass
class BeladyPolicy:
    """Clairvoyant farthest-next-use eviction."""

    trace: AccessTrace

    def next_use(self, buffer_id: int, position: int) -> float:
        """Trace position of the next access to ``buffer_id`` strictly
        after ``position`` (inf if never used again)."""
        ps = self.trace.positions.get(buffer_id, ())
        i = bisect.bisect_right(ps, position)
        return ps[i] if i < len(ps) else _INF

    def on_access(self, buffer_id: int, position: int) -> None:
        pass  # clairvoyance needs no bookkeeping

    def victim(self, resident: set[int], position: int) -> int:
        # Farthest next use; ties broken toward larger buffers (frees the
        # most space), then lowest id for determinism.
        def key(b: int):
            ps = self.trace.positions.get(b, ())
            i = bisect.bisect_right(ps, position)
            nxt = ps[i] if i < len(ps) else _INF
            size = self.trace.accesses[ps[0]].size if ps else 0
            return (-nxt if nxt is not _INF else -_INF, -size, b)

        return min(resident, key=key)


@dataclass
class LRUPolicy:
    """Least-recently-used eviction."""

    _stamp: dict[int, int] = field(default_factory=dict)

    def on_access(self, buffer_id: int, position: int) -> None:
        self._stamp[buffer_id] = position

    def victim(self, resident: set[int], position: int) -> int:
        return min(resident, key=lambda b: (self._stamp.get(b, -1), b))


@dataclass
class FIFOPolicy:
    """First-in-first-out eviction."""

    _arrival: dict[int, int] = field(default_factory=dict)
    _counter: int = 0

    def on_access(self, buffer_id: int, position: int) -> None:
        if buffer_id not in self._arrival:
            self._arrival[buffer_id] = self._counter
            self._counter += 1

    def note_eviction(self, buffer_id: int) -> None:
        self._arrival.pop(buffer_id, None)

    def victim(self, resident: set[int], position: int) -> int:
        return min(resident, key=lambda b: (self._arrival.get(b, -1), b))


def make_policy(name: str, trace: AccessTrace) -> ReplacementPolicy:
    """Policy factory over :data:`POLICY_NAMES`."""
    if name == "belady":
        return BeladyPolicy(trace)
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    raise ValueError(f"unknown replacement policy {name!r}")
