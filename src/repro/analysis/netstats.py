"""Network statistics for Table 1 (MACs, weights, graph shape)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import GraphIndex
from repro.graph.graph import Graph
from repro.ops import macs_of, weights_of

__all__ = ["NetworkStats", "network_stats"]


@dataclass(frozen=True)
class NetworkStats:
    """Aggregate cost/shape metrics of one graph."""

    name: str
    nodes: int
    edges: int
    macs: int
    weights: int
    total_activation_bytes: int
    width: int
    sources: int
    sinks: int

    @property
    def macs_m(self) -> float:
        """MACs in millions (the Table 1 unit)."""
        return self.macs / 1e6

    @property
    def weights_k(self) -> float:
        """Parameters in thousands."""
        return self.weights / 1e3


def network_stats(graph: Graph) -> NetworkStats:
    """Compute Table 1-style statistics for ``graph``."""
    idx = GraphIndex.build(graph)
    return NetworkStats(
        name=graph.name,
        nodes=len(graph),
        edges=graph.num_edges,
        macs=sum(macs_of(graph, n) for n in graph),
        weights=sum(weights_of(graph, n) for n in graph),
        total_activation_bytes=graph.total_activation_bytes(),
        width=idx.width,
        sources=len(graph.sources),
        sinks=len(graph.sinks),
    )
