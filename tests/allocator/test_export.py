"""Deployment-plan export."""

import json


from repro.allocator.export import export_plan, plan_to_dict
from repro.scheduler.dp import dp_schedule
from repro.scheduler.topological import kahn_schedule


class TestPlanExport:
    def test_document_structure(self, concat_conv_graph):
        sched = kahn_schedule(concat_conv_graph)
        doc = plan_to_dict(concat_conv_graph, sched)
        assert doc["format"] == "repro-plan/1"
        assert doc["schedule"] == list(sched.order)
        assert len(doc["tensors"]) == len(concat_conv_graph)
        assert doc["arena_bytes"] > 0

    def test_offsets_within_arena(self, concat_conv_graph):
        sched = kahn_schedule(concat_conv_graph)
        doc = plan_to_dict(concat_conv_graph, sched)
        for buf in doc["buffers"]:
            assert 0 <= buf["offset"]
            assert buf["offset"] + buf["bytes"] <= doc["arena_bytes"]

    def test_shared_buffers_share_offsets(self):
        """Rewritten graphs have aliasing: partials must land at their
        accumulator's offset."""
        from repro.rewriting.rewriter import rewrite_graph
        from repro.models.swiftnet import swiftnet_cell_c

        g = rewrite_graph(swiftnet_cell_c()).graph
        sched = dp_schedule(g, max_states_per_step=50_000).schedule
        doc = plan_to_dict(g, sched)
        by_node = {t["node"]: t for t in doc["tensors"]}
        parts = [
            t for t in doc["tensors"]
            if by_node[t["node"]]["op"] == "partial_conv2d"
        ]
        assert len({p["buffer"] for p in parts}) < len(parts)  # chain shares
        offsets = {p["buffer"]: p["offset"] for p in parts}
        for p in parts:
            assert p["offset"] == offsets[p["buffer"]]

    def test_file_round_trip(self, tmp_path, diamond_graph):
        sched = kahn_schedule(diamond_graph)
        path = tmp_path / "plan.json"
        doc = export_plan(diamond_graph, sched, path)
        assert json.loads(path.read_text()) == doc

    def test_cli_emit_plan(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "plan.json"
        assert (
            main(["schedule", "--cell", "swiftnet-c", "--emit-plan", str(path)])
            == 0
        )
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-plan/1"
        assert "deployment plan written" in capsys.readouterr().out

    def test_persistent_outputs_flagged(self, chain_graph):
        sched = kahn_schedule(chain_graph)
        doc = plan_to_dict(chain_graph, sched)
        persistent = [b for b in doc["buffers"] if b["persistent"]]
        assert any("c2" in b["producers"] for b in persistent)
