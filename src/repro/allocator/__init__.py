"""Linear-arena memory allocators (TFLite-style)."""

from repro.allocator.arena import (
    AllocationPlan,
    arena_peak_bytes,
    first_fit_arena,
    greedy_by_size_plan,
    plan_allocation,
)
from repro.allocator.export import export_plan, plan_to_dict
from repro.allocator.lifetimes import BufferLifetime, compute_lifetimes
from repro.allocator.spill import (
    SPILL_MODES,
    SpillPlan,
    StageWindow,
    plan_spill,
)

__all__ = [
    "SPILL_MODES",
    "SpillPlan",
    "StageWindow",
    "plan_spill",
    "AllocationPlan",
    "BufferLifetime",
    "compute_lifetimes",
    "first_fit_arena",
    "greedy_by_size_plan",
    "plan_allocation",
    "arena_peak_bytes",
    "plan_to_dict",
    "export_plan",
]
