"""Tiered arenas: off-chip-aware serving, with prefetch hiding the traffic.

The ISSUE-5/ISSUE-6 acceptance benchmark. One model whose arena exceeds
the serving budget — exactly the request the pool used to refuse with
:class:`AdmissionError` — is driven through the runtime:

* **constrained**: pool budget midway between the schedule's staging
  floor and the planned arena, ``spill=auto`` — admission degrades to
  a spill-planned executor, every response is verified **bitwise**
  against the reference executor, and the measured off-chip traffic is
  recorded in :class:`~repro.memsim.hierarchy.TrafficReport` units;
* **unconstrained**: same workload, no budget — the zero-traffic
  baseline the constrained run is compared against (req/s cost of
  spilling);
* **prefetch A/B** (the ISSUE-6 acceptance): at capacity = 50% of the
  unconstrained peak, with a modeled off-chip link calibrated so
  transfer time is comparable to compute, constrained serving runs
  twice — double-buffered prefetch vs inline transfers — and the
  prefetch run must clear **1.3x** the inline req/s with a nonzero
  hidden-transfer fraction.

An executor-level capacity sweep (100% / 75% / floor of the planned
peak) records the traffic curve, asserting zero bytes at full capacity,
monotonically non-decreasing traffic as capacity shrinks, and bitwise
parity at every point — solo **and** batched (prefetch engine on).

A **tile-staging sweep** (the PR-10 acceptance) drives the same model
at a budget *strictly below* the whole-buffer staging floor: the
whole-buffer path must refuse the admission even with ``spill=auto``,
while ``tile_bytes``-streaming serves it live with zero errors and
bitwise-verified outputs — and at equal capacity over the calibrated
link, tiled prefetch must stall no longer than whole-buffer prefetch.

Hard assertions:

* ``spill='never'`` still raises :class:`AdmissionError` (with the
  needed-vs-available diagnostic);
* the same admission under ``spill='auto'`` serves every request with
  **zero errors**, **nonzero** measured traffic, and bitwise-verified
  outputs;
* the full-capacity spill plan is trivial: no traffic;
* the prefetch run hides a nonzero fraction of transfer time (quick
  and full mode) and clears 1.3x inline req/s (full mode; the quick
  smoke keeps a loose sanity floor so CI noise cannot flake it).

Results land in ``benchmarks/results/BENCH_spill.json`` (traffic
bytes, req/s constrained vs unconstrained, stall vs hidden transfer
seconds) and CI uploads them as an artifact + step summary like the
serving/executor benches.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import AdmissionError
from repro.memsim import OffchipLink
from repro.models.suite import get_cell
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import ModelRegistry, run_load
from repro.serving.pool import ArenaPool

pytestmark = pytest.mark.slow

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REQUESTS = 32 if QUICK else 128
CLIENTS = 4
WORKERS = 2
CELL = "randwire-c100-a"
#: prefetch A/B: requests per measured pass, passes per mode (the
#: compared number is each mode's best pass — the minimum-time
#: estimator — because host scheduling noise between passes is larger
#: than the effect of interest; medians are reported alongside)
AB_REQUESTS = 24 if QUICK else 96
AB_REPS = 3 if QUICK else 5
CALIB_REPS = 3 if QUICK else 7
#: modeled link bandwidth = this multiple of (traffic / compute time) —
#: transfer comparable to compute, the regime where overlap matters
LINK_COMPUTE_RATIO = 2.0
BATCH_WIDTH = 4
#: staging tile size for the tile-streaming sweep
TILE_BYTES = 8192
TILE_REPS = 3 if QUICK else 5


def build_registry() -> ModelRegistry:
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(get_cell(CELL).factory()), name=CELL)
    return registry


def measure_capacity_sweep(registry: ModelRegistry) -> list[dict]:
    """Executor-level traffic at 100% / 75% / floor capacity, each
    point bitwise-verified against the reference executor — solo and
    as one stacked ``run_batch`` (the prefetch engine active on both)."""
    model = registry.get(CELL)
    graph = model.graph
    params = init_params(graph, seed=0)
    ref = Executor(graph, params=params)
    feed_set = [random_feeds(graph, seed=1 + i) for i in range(BATCH_WIDTH)]
    want_set = [ref.run(f) for f in feed_set]
    feeds, want = feed_set[0], want_set[0]
    stacked = {
        k: np.stack([np.asarray(f[k]) for f in feed_set]) for k in feeds
    }
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    rows = []
    for label, cap in (
        ("100%", arena),
        ("75%", max(int(arena * 0.75), floor)),
        ("floor", floor),
    ):
        px = model.executor(params=params, capacity_bytes=cap)
        got = px.run(feeds)
        mismatched = sum(
            0 if np.array_equal(want[k], got[k]) else 1 for k in want
        )
        traffic = px.traffic_report()
        px.close()
        bx = model.executor(
            params=params, capacity_bytes=cap, batch_size=BATCH_WIDTH
        )
        got_batch = bx.run_batch(stacked)
        mismatched_batched = sum(
            0 if np.array_equal(want_set[i][k], got_batch[k][i]) else 1
            for i in range(BATCH_WIDTH)
            for k in want_set[i]
        )
        bx.close()
        rows.append(
            {
                "capacity": label,
                "capacity_bytes": cap,
                "spilled_buffers": len(px.spill.spilled),
                "resident_bytes": px.spill.resident_bytes,
                "traffic_bytes": traffic.total_bytes,
                "fetches": traffic.fetches,
                "writebacks": traffic.writebacks,
                "bitwise_mismatches": mismatched,
                "bitwise_mismatches_batched": mismatched_batched,
            }
        )
    return rows


def measure_prefetch_ab(registry: ModelRegistry) -> dict:
    """Constrained serving at 50% of the unconstrained peak: prefetch
    vs inline transfers over a calibrated off-chip link.

    The link bandwidth is set so one run's transfer time is
    ``1/LINK_COMPUTE_RATIO`` of its compute time — slow enough that
    stall shows up in req/s, fast enough that a double-buffered
    schedule can hide it. Each mode runs ``AB_REPS`` measured passes
    (``workers=1`` so the pipeline cannot hide stall behind a second
    request) and each mode's **best** pass is compared (minimum-time
    estimator; host noise between passes exceeds the effect under
    study); one small verified pass per mode proves bitwise parity
    under the link.
    """
    model = registry.get(CELL)
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    cap = max(arena // 2, floor)
    graph = model.graph
    params = init_params(graph, seed=0)
    feeds = random_feeds(graph, seed=1)

    # calibrate: inline spill run without a link -> compute time and
    # traffic of one constrained run
    px = model.executor(params=params, capacity_bytes=cap, prefetch=False)
    px.run(feeds)
    times = []
    for _ in range(CALIB_REPS):
        t0 = time.perf_counter()
        px.run(feeds)
        times.append(time.perf_counter() - t0)
    t_compute = min(times)  # the reproducible (noise-free) estimate
    traffic_bytes = px.traffic_report().total_bytes
    px.close()
    link = OffchipLink(
        bandwidth_bytes_per_s=LINK_COMPUTE_RATIO * traffic_bytes / t_compute
    )

    common = dict(
        clients=2,
        workers=1,
        max_batch=1,
        seed=0,
        budget=cap,
        spill="auto",
        preload=True,
        link=link,
    )
    verified_ok = {}
    reports: dict[bool, list] = {True: [], False: []}
    for mode in (False, True):
        parity = run_load(
            registry, requests=8, verify=True, prefetch=mode, **common
        )
        verified_ok[mode] = parity.verified is True and parity.errors == 0
    for _ in range(AB_REPS):
        for mode in (False, True):
            reports[mode].append(
                run_load(
                    registry, requests=AB_REQUESTS, prefetch=mode, **common
                )
            )

    def best_report(mode: bool):
        return max(reports[mode], key=lambda r: r.rps)

    def median_rps(mode: bool) -> float:
        ranked = sorted(r.rps for r in reports[mode])
        return ranked[len(ranked) // 2]

    inline = best_report(False)
    prefetch = best_report(True)
    return {
        "capacity_bytes": cap,
        "capacity_fraction": cap / arena,
        "link_mbps": link.bandwidth_bytes_per_s / 1e6,
        "calib_compute_s": t_compute,
        "calib_traffic_bytes": traffic_bytes,
        "reps": AB_REPS,
        "inline": inline,
        "prefetch": prefetch,
        "inline_verified": verified_ok[False],
        "prefetch_verified": verified_ok[True],
        "speedup": prefetch.rps / inline.rps if inline.rps else None,
        "speedup_median": (
            median_rps(True) / median_rps(False) if median_rps(False) else None
        ),
    }


def measure_tile_staging(registry: ModelRegistry) -> dict:
    """Tile-streaming vs whole-buffer staging.

    Two measurements:

    * **below-floor serving**: at a budget under the whole-buffer
      staging floor (but over the tile floor), whole-buffer spill
      planning must refuse the admission while ``TILE_BYTES`` streaming
      serves it — zero errors, bitwise-verified;
    * **stall at equal capacity**: at the prefetch-A/B capacity over a
      link calibrated the same way, tiled prefetch must stall no longer
      than whole-buffer prefetch (min over ``TILE_REPS`` passes — tiles
      arrive earlier and range-clipping moves fewer bytes).
    """
    model = registry.get(CELL)
    graph = model.graph
    params = init_params(graph, seed=0)
    feeds = random_feeds(graph, seed=1)
    want = Executor(graph, params=params).run(feeds)
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    tile_floor = model.spill_floor_for(TILE_BYTES)
    below = max(tile_floor, min(floor - 1, tile_floor * 2))

    # the whole-buffer path cannot admit this budget even with spilling
    whole_refusal = None
    try:
        ArenaPool(registry, below, spill="auto").acquire(CELL)
    except AdmissionError as exc:
        whole_refusal = str(exc)

    # tiled executor at the same budget: bitwise, per-tile traffic
    px = model.executor(
        params=params, capacity_bytes=below, tile_bytes=TILE_BYTES
    )
    got = px.run(feeds)
    mismatched = sum(
        0 if np.array_equal(want[k], got[k]) else 1 for k in want
    )
    traffic = px.traffic_report()
    px.close()

    # tiled *serving* strictly below the whole-buffer floor
    served = run_load(
        registry,
        requests=REQUESTS // 2,
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=1,
        seed=0,
        budget=below,
        spill="auto",
        tile_bytes=TILE_BYTES,
        verify=True,
        preload=True,
    )

    # stall A/B at equal capacity: calibrate a link off the inline
    # whole-buffer run (same recipe as measure_prefetch_ab), then race
    # whole-buffer vs tiled prefetch over it
    cap_eq = max(arena // 2, floor)
    px = model.executor(params=params, capacity_bytes=cap_eq, prefetch=False)
    px.run(feeds)
    times = []
    for _ in range(CALIB_REPS):
        t0 = time.perf_counter()
        px.run(feeds)
        times.append(time.perf_counter() - t0)
    t_compute = min(times)
    calib_bytes = px.traffic_report().total_bytes
    px.close()
    link = OffchipLink(
        bandwidth_bytes_per_s=LINK_COMPUTE_RATIO * calib_bytes / t_compute
    )

    stall = {}
    moved = {}
    for label, tile in (("whole", None), ("tiled", TILE_BYTES)):
        ex = model.executor(
            params=params, capacity_bytes=cap_eq, tile_bytes=tile, link=link
        )
        best = None
        for _ in range(TILE_REPS):
            out = ex.run(feeds)
            rep = ex.traffic_report()
            best = rep.stall_s if best is None else min(best, rep.stall_s)
        assert all(np.array_equal(want[k], out[k]) for k in want)
        stall[label] = best
        moved[label] = ex.traffic_report().total_bytes
        ex.close()

    return {
        "tile_bytes": TILE_BYTES,
        "whole_floor_bytes": floor,
        "tile_floor_bytes": tile_floor,
        "below_budget_bytes": below,
        "whole_refusal": whole_refusal,
        "bitwise_mismatches": mismatched,
        "traffic_bytes": traffic.total_bytes,
        "fetches": traffic.fetches,
        "writebacks": traffic.writebacks,
        "traffic_tile_bytes": traffic.tile_bytes,
        "served": served,
        "equal_capacity_bytes": cap_eq,
        "link_mbps": link.bandwidth_bytes_per_s / 1e6,
        "stall_whole_s": stall["whole"],
        "stall_tiled_s": stall["tiled"],
        "moved_whole_bytes": moved["whole"],
        "moved_tiled_bytes": moved["tiled"],
    }


def run() -> dict:
    registry = build_registry()
    model = registry.get(CELL)
    floor, arena = model.spill_floor_bytes, model.arena_bytes
    budget = (floor + arena) // 2

    # the old behaviour: this admission is refused outright
    admission_error = None
    try:
        ArenaPool(registry, budget).acquire(CELL)
    except AdmissionError as exc:
        admission_error = str(exc)

    sweep = measure_capacity_sweep(registry)
    prefetch_ab = measure_prefetch_ab(registry)
    tile_staging = measure_tile_staging(registry)

    common = dict(
        requests=REQUESTS,
        clients=CLIENTS,
        workers=WORKERS,
        max_batch=1,
        seed=0,
        preload=True,
    )
    # warm both paths outside the measured window
    run_load(registry, requests=CLIENTS, clients=CLIENTS, workers=WORKERS,
             budget=budget, spill="auto")
    run_load(registry, requests=CLIENTS, clients=CLIENTS, workers=WORKERS)
    constrained = run_load(
        registry, budget=budget, spill="auto", verify=True, **common
    )
    unconstrained = run_load(registry, verify=True, **common)
    return {
        "model": CELL,
        "arena_bytes": arena,
        "floor_bytes": floor,
        "budget_bytes": budget,
        "admission_error": admission_error,
        "sweep": sweep,
        "prefetch_ab": prefetch_ab,
        "tile_staging": tile_staging,
        "constrained": constrained,
        "unconstrained": unconstrained,
    }


def render(result: dict) -> str:
    constrained = result["constrained"]
    unconstrained = result["unconstrained"]
    ab = result["prefetch_ab"]
    lines = [
        "tiered arenas: off-chip-aware serving with prefetch overlap "
        f"({'quick' if QUICK else 'full'} mode)",
        "",
        f"model {result['model']}: arena "
        f"{result['arena_bytes'] / 1024:.1f}KB, staging floor "
        f"{result['floor_bytes'] / 1024:.1f}KB, serving budget "
        f"{result['budget_bytes'] / 1024:.1f}KB",
        "",
        "spill='never' (the old behaviour):",
        f"  {result['admission_error']}",
        "",
        "executor-level capacity sweep (bitwise-verified at every point, "
        f"solo + batch {BATCH_WIDTH}):",
        f"  {'capacity':>9s} {'spilled':>8s} {'resident KB':>12s} "
        f"{'traffic KB':>11s} {'fetch/wb':>9s}",
    ]
    for row in result["sweep"]:
        lines.append(
            f"  {row['capacity']:>9s} {row['spilled_buffers']:>8d}"
            f" {row['resident_bytes'] / 1024:>12.1f}"
            f" {row['traffic_bytes'] / 1024:>11.1f}"
            f" {row['fetches']:>4d}/{row['writebacks']:<4d}"
        )
    lines += [
        "",
        "prefetch A/B at 50% capacity "
        f"({ab['capacity_bytes'] / 1024:.1f}KB on-chip, modeled link "
        f"{ab['link_mbps']:.0f}MB/s, best of {ab['reps']} passes):",
        f"  inline transfers        : {ab['inline'].rps:9.1f} req/s "
        f"(stall {ab['inline'].spill_stall_s * 1e3:.1f}ms, "
        f"hidden {ab['inline'].spill_hidden_s * 1e3:.1f}ms)",
        f"  double-buffered prefetch: {ab['prefetch'].rps:9.1f} req/s "
        f"(stall {ab['prefetch'].spill_stall_s * 1e3:.1f}ms, "
        f"hidden {ab['prefetch'].spill_hidden_s * 1e3:.1f}ms, "
        f"{100.0 * ab['prefetch'].hidden_fraction:.0f}% hidden)",
        f"  prefetch speedup        : {ab['speedup']:9.2f}x req/s "
        f"(median {ab['speedup_median']:.2f}x; bitwise-verified in "
        "both modes)",
        "",
        *(_render_tile_staging(result["tile_staging"])),
        "",
        "constrained serving (spill=auto over the same admission):",
        constrained.summary(),
        "",
        "unconstrained serving (no budget):",
        unconstrained.summary(),
        "",
        f"spill cost              : {unconstrained.rps / constrained.rps:9.2f}x "
        "req/s unconstrained vs constrained",
    ]
    return "\n".join(lines)


def _render_tile_staging(ts: dict) -> list[str]:
    served = ts["served"]
    return [
        f"tile staging ({ts['tile_bytes']}B tiles): whole-buffer floor "
        f"{ts['whole_floor_bytes'] / 1024:.1f}KB -> tile floor "
        f"{ts['tile_floor_bytes'] / 1024:.1f}KB",
        f"  below-floor budget      : {ts['below_budget_bytes'] / 1024:9.1f}KB "
        "(whole-buffer spill: refused; tiled: serves)",
        f"  tiled serving           : {served.rps:9.1f} req/s, "
        f"{served.errors} errors, verified={served.verified}",
        f"  tiled traffic           : "
        f"{ts['traffic_bytes'] / 1024:9.1f}KB "
        f"({ts['fetches']} fetches, {ts['writebacks']} writebacks)",
        f"  stall at equal capacity : whole "
        f"{ts['stall_whole_s'] * 1e3:.2f}ms vs tiled "
        f"{ts['stall_tiled_s'] * 1e3:.2f}ms "
        f"({ts['equal_capacity_bytes'] / 1024:.1f}KB on-chip, "
        f"{ts['moved_whole_bytes'] / 1024:.1f}KB vs "
        f"{ts['moved_tiled_bytes'] / 1024:.1f}KB moved)",
    ]


def payload(result: dict) -> dict:
    """The machine-readable BENCH_spill.json document."""
    constrained = result["constrained"]
    unconstrained = result["unconstrained"]
    ab = result["prefetch_ab"]

    def load_doc(report) -> dict:
        return {
            "requests": report.requests,
            "req_per_s": report.rps,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
            "errors": report.errors,
            "verified_bitwise": report.verified,
            "spill": report.spill,
            "spill_bytes": report.spill_bytes,
            "spilled_builds": report.pool.spilled_builds,
            "prefetch_builds": report.pool.prefetch_builds,
            "resident_arena_bytes": report.pool.resident_bytes,
            "prefetch": report.prefetch,
            "tile_bytes": report.tile_bytes,
            "spill_stall_s": report.spill_stall_s,
            "spill_hidden_s": report.spill_hidden_s,
            "hidden_fraction": report.hidden_fraction,
        }

    return {
        "quick": QUICK,
        "model": result["model"],
        "arena_bytes": result["arena_bytes"],
        "floor_bytes": result["floor_bytes"],
        "budget_bytes": result["budget_bytes"],
        "admission_error_without_spill": result["admission_error"],
        "capacity_sweep": result["sweep"],
        "prefetch_ab": {
            "capacity_bytes": ab["capacity_bytes"],
            "capacity_fraction": ab["capacity_fraction"],
            "link_mbps": ab["link_mbps"],
            "reps": ab["reps"],
            "inline": load_doc(ab["inline"]),
            "prefetch": load_doc(ab["prefetch"]),
            "inline_verified": ab["inline_verified"],
            "prefetch_verified": ab["prefetch_verified"],
            "req_per_s_prefetch_vs_inline": ab["speedup"],
            "req_per_s_prefetch_vs_inline_median": ab["speedup_median"],
        },
        "tile_staging": {
            key: (
                load_doc(value) if key == "served" else value
            )
            for key, value in result["tile_staging"].items()
        },
        "serving": {
            "constrained": load_doc(constrained),
            "unconstrained": load_doc(unconstrained),
        },
        "req_per_s_unconstrained_vs_constrained": (
            unconstrained.rps / constrained.rps if constrained.rps else None
        ),
    }


def test_spill_smoke(benchmark, save_result, save_json):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("spill_smoke", render(result))
    save_json("spill", payload(result))

    # the old behaviour is still the default, with a useful diagnostic
    assert result["admission_error"] is not None
    assert "spill='auto'" in result["admission_error"]

    # capacity sweep: bitwise everywhere (solo and batched), zero
    # traffic at full capacity, non-decreasing traffic as capacity
    # shrinks
    sweep = result["sweep"]
    assert all(row["bitwise_mismatches"] == 0 for row in sweep)
    assert all(row["bitwise_mismatches_batched"] == 0 for row in sweep)
    assert sweep[0]["traffic_bytes"] == 0 and sweep[0]["spilled_buffers"] == 0
    assert sweep[1]["traffic_bytes"] > 0
    traffics = [row["traffic_bytes"] for row in sweep]
    assert traffics == sorted(traffics)
    for row in sweep:
        assert row["resident_bytes"] <= row["capacity_bytes"]

    # the ISSUE-6 acceptance: at 50% capacity over a calibrated link,
    # double-buffered prefetch hides a nonzero fraction of transfer
    # time and beats inline-spill serving
    ab = result["prefetch_ab"]
    assert ab["inline_verified"] and ab["prefetch_verified"]
    assert ab["inline"].errors == 0 and ab["prefetch"].errors == 0
    assert ab["prefetch"].hidden_fraction > 0.0
    assert ab["prefetch"].spill_hidden_s > 0.0
    assert ab["inline"].spill_hidden_s == 0.0
    assert ab["inline"].spill_stall_s > 0.0
    if QUICK:
        # the quick CI smoke keeps a loose floor so noise cannot flake
        assert ab["speedup"] >= 1.0
    else:
        assert ab["speedup"] >= 1.3

    # the PR-10 acceptance: tile streaming admits and serves strictly
    # below the whole-buffer floor, bitwise, while whole-buffer spill
    # planning refuses the same budget even with spill=auto — and at
    # equal capacity tiled prefetch stalls no longer than whole-buffer
    ts = result["tile_staging"]
    assert ts["below_budget_bytes"] < ts["whole_floor_bytes"]
    assert ts["below_budget_bytes"] >= ts["tile_floor_bytes"]
    assert ts["whole_refusal"] is not None
    assert "even with spilling" in ts["whole_refusal"]
    assert ts["bitwise_mismatches"] == 0
    assert ts["traffic_bytes"] > 0
    assert ts["traffic_tile_bytes"] == TILE_BYTES
    assert ts["served"].errors == 0
    assert ts["served"].verified is True
    assert ts["served"].tile_bytes == TILE_BYTES
    assert ts["served"].spill_bytes > 0
    # range-clipped tiles never move more bytes than whole-buffer
    # windows, and finer granularity never lengthens the stall (5%
    # wall-clock tolerance: stall is measured, not modeled)
    assert ts["moved_tiled_bytes"] <= ts["moved_whole_bytes"]
    assert ts["stall_tiled_s"] <= ts["stall_whole_s"] * 1.05 + 1e-4

    # the ISSUE-5 acceptance assertion: the admission that raised
    # AdmissionError now serves under spill=auto — zero errors, nonzero
    # measured traffic, every output bitwise the reference executor's
    constrained = result["constrained"]
    assert constrained.errors == 0
    assert constrained.verified is True
    assert constrained.spill_bytes > 0
    assert constrained.pool.spilled_builds >= 1

    unconstrained = result["unconstrained"]
    assert unconstrained.errors == 0
    assert unconstrained.verified is True
    assert unconstrained.spill_bytes == 0
    assert constrained.rps > 0


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
