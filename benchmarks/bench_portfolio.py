"""Portfolio batch-compilation throughput vs sequential SERENITY.

Three measurements over the full benchmark suite:

* ``sequential`` — one ``Serenity().compile`` per cell, the pre-portfolio
  workflow (one process, one strategy, no cache);
* ``portfolio cold`` — ``PortfolioCompiler.compile_batch`` with worker
  processes and an empty persistent cache (does strictly more work: it
  races the whole strategy portfolio per graph);
* ``portfolio warm`` — the identical batch again: every (graph,
  strategy) pair must be served from the on-disk cache, making suite
  re-compilation near-instant.

The hard claims asserted here are host-independent: the warm re-run
exceeds a 90% hit rate, reproduces identical winner peaks, and beats
sequential compilation outright. The cold-vs-sequential wall-clock
ratio is reported (it depends on the host's core count — with N
workers the batch parallelises across graphs) but only asserted loosely
on multi-core hosts.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.models.suite import suite_cells
from repro.scheduler.cache import ScheduleCache
from repro.scheduler.portfolio import PortfolioCompiler
from repro.scheduler.serenity import Serenity


def run() -> dict:
    cells = suite_cells()
    workers = min(4, os.cpu_count() or 1)

    graphs = [c.factory() for c in cells]
    t0 = time.perf_counter()
    sequential_peaks = {}
    for cell, graph in zip(cells, graphs):
        sequential_peaks[cell.key] = Serenity().compile(graph).peak_bytes
    sequential_s = time.perf_counter() - t0

    cache = ScheduleCache(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    compiler = PortfolioCompiler(workers=workers, cache=cache)

    cold = compiler.compile_batch([c.factory() for c in cells])
    warm = compiler.compile_batch([c.factory() for c in cells])

    return {
        "cells": cells,
        "workers": workers,
        "sequential_s": sequential_s,
        "sequential_peaks": sequential_peaks,
        "cold": cold,
        "warm": warm,
    }


def render(res: dict) -> str:
    cold, warm = res["cold"], res["warm"]
    lines = [
        "portfolio batch compilation vs sequential SERENITY "
        f"({len(res['cells'])} cells, {res['workers']} workers)",
        "",
        f"  sequential SERENITY     {res['sequential_s']:8.2f}s",
        f"  portfolio cold          {cold.wall_time_s:8.2f}s   "
        f"(x{res['sequential_s'] / cold.wall_time_s:.2f} vs sequential, "
        f"races {len(cold.strategies)} strategies/graph)",
        f"  portfolio warm (cache)  {warm.wall_time_s:8.2f}s   "
        f"(x{res['sequential_s'] / max(warm.wall_time_s, 1e-9):.0f} vs sequential, "
        f"{100.0 * warm.hit_rate:.1f}% hit rate)",
        "",
    ]
    lines.append(f"  {'cell':<18s} {'winner':<14s} {'peak KB':>9s} {'=serenity':>10s}")
    for cell, res_cold in zip(res["cells"], cold.results):
        w = res_cold.winner
        seq = res["sequential_peaks"][cell.key]
        lines.append(
            f"  {cell.key:<18s} {w.strategy:<14s} {w.peak_bytes / 1024:>9.1f}"
            f" {'<=' if w.peak_bytes <= seq else 'WORSE':>10s}"
        )
    return "\n".join(lines)


def test_portfolio_throughput(benchmark, save_result):
    res = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("portfolio_throughput", render(res))

    cold, warm = res["cold"], res["warm"]

    # the portfolio includes SERENITY: it never loses on peak memory
    for cell, result in zip(res["cells"], cold.results):
        assert result.winner.peak_bytes <= res["sequential_peaks"][cell.key]

    # warm-cache rerun: >90% hits, identical peaks, beats sequential
    assert warm.hit_rate > 0.90
    for a, b in zip(cold.results, warm.results):
        assert a.winner.peak_bytes == b.winner.peak_bytes
    assert warm.wall_time_s < res["sequential_s"]

    # on multi-core hosts the cold batch amortises across workers; the
    # portfolio does ~6x the work of sequential, so even x1 parallel
    # efficiency caps the allowed ratio well under that
    if (os.cpu_count() or 1) >= 2:
        assert cold.wall_time_s < 6 * res["sequential_s"]


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(render(run()))
