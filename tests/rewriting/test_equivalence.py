"""Numerical identity of graph rewriting (the paper's 'not an
approximation method' claim), via the NumPy executor."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.rewriting.rewriter import rewrite_graph
from repro.runtime.verify import verify_rewrite


def _assert_identity(graph, seed=0):
    res = rewrite_graph(graph)
    assert res.applied >= 1, "pattern did not fire"
    report = verify_rewrite(graph, res, seed=seed)
    assert report.equivalent, f"max error {report.max_abs_error}"
    return report


class TestChannelWiseIdentity:
    def test_three_branches(self, concat_conv_graph):
        _assert_identity(concat_conv_graph)

    def test_stride_and_padding_variants(self):
        for stride, padding in ((1, "same"), (2, "same"), (1, "valid"), (2, 1)):
            b = GraphBuilder(f"cc-{stride}-{padding}")
            x = b.input("x", (3, 9, 9))
            l = b.conv2d(x, 2, kernel=3, name="l")
            r = b.conv2d(x, 5, kernel=1, name="r")
            cat = b.concat([l, r], name="cat")
            b.conv2d(cat, 4, kernel=3, stride=stride, padding=padding, name="head")
            _assert_identity(b.build())

    def test_without_bias(self):
        b = GraphBuilder("nobias")
        x = b.input("x", (3, 6, 6))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 3, name="r")
        cat = b.concat([l, r], name="cat")
        b.conv2d(cat, 4, kernel=3, use_bias=False, name="head")
        _assert_identity(b.build())

    def test_many_branches(self):
        b = GraphBuilder("wide")
        x = b.input("x", (2, 5, 5))
        branches = [b.conv2d(x, i + 1, name=f"b{i}") for i in range(5)]
        cat = b.concat(branches, name="cat")
        b.conv2d(cat, 3, kernel=3, name="head")
        _assert_identity(b.build())

    @pytest.mark.parametrize("seed", range(3))
    def test_seed_insensitive(self, concat_conv_graph, seed):
        _assert_identity(concat_conv_graph, seed=seed)


class TestKernelWiseIdentity:
    def test_two_branches_multiplier2(self, concat_depthwise_graph):
        _assert_identity(concat_depthwise_graph)

    def test_multiplier_one_strided(self):
        b = GraphBuilder("dw1")
        x = b.input("x", (3, 8, 8))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 4, name="r")
        cat = b.concat([l, r], name="cat")
        b.depthwise_conv2d(cat, kernel=3, stride=2, name="head")
        _assert_identity(b.build())

    def test_three_branches(self):
        b = GraphBuilder("dw3")
        x = b.input("x", (2, 6, 6))
        branches = [b.conv2d(x, i + 2, name=f"b{i}") for i in range(3)]
        cat = b.concat(branches, name="cat")
        b.depthwise_conv2d(cat, kernel=5, name="head")
        _assert_identity(b.build())


class TestCombined:
    def test_both_patterns_in_one_graph(self):
        b = GraphBuilder("both")
        x = b.input("x", (4, 8, 8))
        l = b.conv2d(x, 4, name="l")
        r = b.conv2d(x, 4, name="r")
        c1 = b.concat([l, r], name="c1")
        m = b.conv2d(c1, 6, kernel=3, name="m")
        p = b.conv2d(m, 4, name="p")
        q = b.conv2d(m, 4, name="q")
        c2 = b.concat([p, q], name="c2")
        b.depthwise_conv2d(c2, kernel=3, name="dw")
        _assert_identity(b.build())

    def test_swiftnet_cells_are_identities(self):
        from repro.models.swiftnet import swiftnet_cell_b, swiftnet_cell_c

        for factory in (swiftnet_cell_b, swiftnet_cell_c):
            _assert_identity(factory())

    def test_downstream_consumers_see_identical_values(self):
        """Equivalence holds at the *sink*, i.e. through ops consuming
        the rewritten subgraph's output."""
        b = GraphBuilder("deep")
        x = b.input("x", (3, 6, 6))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 3, name="r")
        cat = b.concat([l, r], name="cat")
        h = b.conv2d(cat, 4, kernel=3, name="head")
        g1 = b.global_avg_pool(h, name="gap")
        b.flatten(g1, name="flat")
        _assert_identity(b.build())
