"""Tensor metadata for the graph IR.

SERENITY never touches tensor *values* at scheduling time; the IR only
carries shapes and dtypes so the scheduler can account for activation
bytes. The NumPy reference executor (:mod:`repro.runtime`) consumes the
same metadata when verifying graph rewrites numerically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError

__all__ = ["DType", "TensorSpec"]


class DType(enum.Enum):
    """Element types supported by the IR.

    The paper's footprint numbers assume a fixed element width per
    network; we default to ``float32`` but the whole stack is
    parameterised so int8-quantised variants can be scheduled too.
    """

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT8 = "int8"
    UINT8 = "uint8"
    INT32 = "int32"

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return int(np.dtype(self.value).itemsize)

    @property
    def numpy(self) -> np.dtype:
        """The equivalent NumPy dtype object."""
        return np.dtype(self.value)

    @classmethod
    def from_any(cls, value: "DType | str | np.dtype") -> "DType":
        """Coerce a string/NumPy dtype/DType into a :class:`DType`."""
        if isinstance(value, cls):
            return value
        return cls(np.dtype(value).name)


@dataclass(frozen=True, slots=True)
class TensorSpec:
    """Shape + dtype of one activation tensor.

    Shapes follow ``(channels, height, width)`` for feature maps (the
    batch dimension is always 1 on edge devices and is omitted), but any
    rank is allowed — e.g. ``(features,)`` for dense layers.
    """

    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32

    def __post_init__(self) -> None:
        if not isinstance(self.shape, tuple):
            object.__setattr__(self, "shape", tuple(self.shape))
        if any((not isinstance(d, int)) or d <= 0 for d in self.shape):
            raise ShapeError(f"invalid tensor shape {self.shape!r}")
        object.__setattr__(self, "dtype", DType.from_any(self.dtype))

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def elements(self) -> int:
        """Number of scalar elements (``prod(shape)``)."""
        return math.prod(self.shape)

    @property
    def bytes(self) -> int:
        """Activation bytes this tensor occupies — the paper's
        ``prod(u.shape)`` scaled by element width."""
        return self.elements * self.dtype.itemsize

    @property
    def kib(self) -> float:
        """Size in KiB (the unit used throughout the paper's figures)."""
        return self.bytes / 1024.0

    def with_shape(self, shape: tuple[int, ...]) -> "TensorSpec":
        """A copy with a different shape, keeping the dtype."""
        return TensorSpec(tuple(shape), self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype.value}"
