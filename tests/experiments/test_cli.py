"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swiftnet-a" in out and "fig10" in out

    def test_schedule_cell(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c"]) == 0
        out = capsys.readouterr().out
        assert "SERENITY peak" in out and "reduction" in out

    def test_schedule_no_rewrite(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c", "--no-rewrite"]) == 0
        assert "rewrites applied        : 0" in capsys.readouterr().out

    def test_schedule_show_schedule(self, capsys):
        assert (
            main(["schedule", "--cell", "swiftnet-c", "--show-schedule"]) == 0
        )
        assert "schedule:" in capsys.readouterr().out

    def test_schedule_saved_graph(self, tmp_path, capsys, diamond_graph):
        from repro.graph.serialization import save_graph

        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert main(["schedule", "--graph", str(path)]) == 0
        assert "diamond" in capsys.readouterr().out

    def test_schedule_requires_source(self, capsys):
        assert main(["schedule"]) == 2

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
