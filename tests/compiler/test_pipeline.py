"""CompilationPipeline and CompiledModel: compile, freeze, round-trip,
and interoperate with the persistent schedule cache."""

import json

import pytest

from repro.compiler import (
    ARTIFACT_FORMAT,
    CompilationPipeline,
    CompiledModel,
    compiled_model_from_report,
)
from repro.exceptions import ExecutionError, GraphError, SchedulingError
from repro.scheduler.cache import ScheduleCache
from repro.scheduler.device import SPARKFUN_EDGE, DeviceSpec
from repro.scheduler.portfolio import PortfolioCompiler
from repro.scheduler.registry import get_strategy
from repro.scheduler.serenity import Serenity, SerenityConfig


class TestPipeline:
    def test_compile_produces_consistent_model(self, diamond_graph):
        model = CompilationPipeline("greedy").compile(diamond_graph)
        model.schedule.validate(model.graph)
        model.plan.validate()
        assert model.strategy == "greedy"
        assert model.arena_bytes == model.plan.arena_bytes
        assert model.meta["source_nodes"] == len(diamond_graph)
        assert model.meta["nodes"] == len(model.graph)
        assert not model.meta["cached"]
        assert model.source_signature == model.signature  # no rewriting

    def test_rewriting_strategy_changes_signature(self, concat_depthwise_graph):
        model = CompilationPipeline("serenity-fast").compile(
            concat_depthwise_graph
        )
        assert len(model.graph) != len(concat_depthwise_graph)
        assert model.source_signature != model.signature

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(SchedulingError, match="unknown strategy"):
            CompilationPipeline("made-up")

    def test_device_verdict_recorded(self, diamond_graph):
        model = CompilationPipeline("greedy", device=SPARKFUN_EDGE).compile(
            diamond_graph
        )
        assert model.device == SPARKFUN_EDGE
        assert model.fits_device is True and model.meta["fits"] is True
        tiny = DeviceSpec("tiny", 16)
        model = CompilationPipeline("greedy", device=tiny).compile(diamond_graph)
        assert model.fits_device is False

    def test_verify_flag_checks_parity(self, diamond_graph):
        model = CompilationPipeline("greedy", verify=True).compile(diamond_graph)
        assert model.arena_bytes > 0

    def test_allocator_choice(self, diamond_graph):
        ff = CompilationPipeline("kahn", allocator="first_fit")
        gbs = CompilationPipeline("kahn", allocator="greedy_by_size")
        assert ff.compile(diamond_graph).plan.strategy == "first_fit"
        assert gbs.compile(diamond_graph).plan.strategy == "greedy_by_size"


class TestCacheInterop:
    def test_pipeline_warms_and_reads_cache(self, tmp_path, diamond_graph):
        cache = ScheduleCache(tmp_path)
        pipe = CompilationPipeline("greedy", cache=cache)
        cold = pipe.compile(diamond_graph)
        assert not cold.meta["cached"] and len(cache) == 1
        warm = pipe.compile(diamond_graph)
        assert warm.meta["cached"]
        assert warm.schedule.order == cold.schedule.order
        assert warm.plan.offsets == cold.plan.offsets

    def test_portfolio_entries_served_to_pipeline(self, tmp_path, diamond_graph):
        """compile-batch warms the exact keys the pipeline looks up."""
        cache = ScheduleCache(tmp_path)
        PortfolioCompiler(["greedy"], cache=cache).compile(diamond_graph)
        model = CompilationPipeline("greedy", cache=cache).compile(diamond_graph)
        assert model.meta["cached"]

    def test_artifact_keyed_by_graph_signature(self, tmp_path, diamond_graph):
        cache = ScheduleCache(tmp_path)
        model = CompilationPipeline("greedy", cache=cache).compile(diamond_graph)
        spec = get_strategy("greedy")
        entry = cache.get(model.source_signature, spec.cache_key)
        assert entry is not None
        assert tuple(entry.order) == model.schedule.order


class TestArtifactRoundTrip:
    def test_save_load_round_trip(self, tmp_path, diamond_graph):
        model = CompilationPipeline("greedy", device=SPARKFUN_EDGE).compile(
            diamond_graph
        )
        path = model.save(tmp_path / "m.json")
        loaded = CompiledModel.load(path)
        assert loaded.graph == model.graph
        assert loaded.schedule.order == model.schedule.order
        assert loaded.plan.offsets == model.plan.offsets
        assert loaded.plan.arena_bytes == model.plan.arena_bytes
        assert loaded.signature == model.signature
        assert loaded.source_signature == model.source_signature
        assert loaded.device == SPARKFUN_EDGE
        assert loaded.strategy == "greedy"

    def test_loaded_model_executes(self, tmp_path, diamond_graph):
        from repro.runtime import random_feeds, verify_execution

        model = CompilationPipeline("serenity-fast").compile(diamond_graph)
        path = model.save(tmp_path / "m.json")
        loaded = CompiledModel.load(path)
        assert verify_execution(loaded).equivalent
        px = loaded.executor()
        px.run(random_feeds(loaded.graph))
        assert px.last_stats.measured_peak_bytes <= loaded.arena_bytes

    def test_spill_plans_round_trip(self, tmp_path):
        """Artifacts carry tiered-arena spill plans per capacity, and a
        loaded artifact serves them without recomputation."""
        from dataclasses import replace

        from repro.models.suite import get_cell

        model = CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        )
        cap = (model.spill_floor_bytes + model.arena_bytes) // 2
        plan = model.spill_plan(cap)
        assert not plan.is_trivial
        model = replace(model, spill_plans=(plan,))
        loaded = CompiledModel.load(model.save(tmp_path / "m.json"))
        assert loaded.spill_plans == (plan,)
        # a carried plan is served as-is (no recompute, same object)
        assert loaded.spill_plan(cap) is loaded.spill_plans[0]
        # and a computed plan for the same capacity is identical
        assert model.spill_plan(cap) == plan

    def test_tiled_spill_plan_memo_keyed_by_tile(self, tmp_path):
        """spill_plan memoizes per (capacity, policy, tile_bytes), and
        an embedded tiled plan is served only to a matching request."""
        from dataclasses import replace

        from repro.models.suite import get_cell

        model = CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        )
        cap = (model.spill_floor_bytes + model.arena_bytes) // 2
        tiled = model.spill_plan(cap, tile_bytes=8192)
        whole = model.spill_plan(cap)
        assert tiled.tile_bytes == 8192 and whole.tile_bytes is None
        assert tiled != whole
        # memoized per key: same object back, never cross-served
        assert model.spill_plan(cap, tile_bytes=8192) is tiled
        assert model.spill_plan(cap) is whole
        # an embedded tiled plan round-trips and only matches tiled asks
        loaded = CompiledModel.load(
            replace(model, spill_plans=(tiled,)).save(tmp_path / "t.json")
        )
        assert loaded.spill_plan(cap, tile_bytes=8192) is loaded.spill_plans[0]
        assert loaded.spill_plan(cap).tile_bytes is None

    def test_tiled_floor_memo(self):
        from repro.allocator.spill import min_capacity_bytes
        from repro.models.suite import get_cell

        model = CompilationPipeline("greedy").compile(
            get_cell("randwire-c10-b").factory()
        )
        assert model.spill_floor_for(None) == model.spill_floor_bytes
        tiled = model.spill_floor_for(8192)
        assert tiled == min_capacity_bytes(
            model.graph, model.schedule, tile_bytes=8192
        )
        assert tiled < model.spill_floor_bytes

    def test_spill_executor_from_capacity(self, diamond_graph):
        from repro.runtime import random_feeds

        model = CompilationPipeline("greedy").compile(diamond_graph)
        px = model.executor(capacity_bytes=model.arena_bytes)
        px.run(random_feeds(model.graph))
        assert px.spill is not None and px.spill.is_trivial
        assert px.traffic_report().eliminated

    def test_format_versioned(self, tmp_path, diamond_graph):
        model = CompilationPipeline("kahn").compile(diamond_graph)
        doc = model.to_doc()
        assert doc["format"] == ARTIFACT_FORMAT
        doc["format"] = "bogus/9"
        with pytest.raises(GraphError, match="unsupported"):
            CompiledModel.from_doc(doc)

    def test_tampered_graph_rejected(self, tmp_path, diamond_graph):
        model = CompilationPipeline("kahn").compile(diamond_graph)
        path = model.save(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        doc["graph"]["nodes"][1]["attrs"]["out_channels"] = 999
        with pytest.raises(GraphError, match="signature"):
            CompiledModel.from_doc(doc)

    def test_tampered_schedule_rejected(self, tmp_path, diamond_graph):
        from repro.exceptions import InvalidScheduleError

        model = CompilationPipeline("kahn").compile(diamond_graph)
        doc = model.to_doc()
        doc["plan"]["schedule"] = list(reversed(doc["plan"]["schedule"]))
        with pytest.raises(InvalidScheduleError):
            CompiledModel.from_doc(doc)


class TestFromReport:
    def test_report_freezes_to_artifact(self, concat_depthwise_graph):
        report = Serenity(SerenityConfig(max_states_per_step=2_000)).compile(
            concat_depthwise_graph
        )
        model = compiled_model_from_report(report)
        assert model.graph == report.scheduled_graph
        assert model.schedule.order == report.schedule.order
        assert model.meta["rewrite_count"] == report.rewrite_count
        assert model.arena_bytes == report.arena_bytes
        from repro.runtime import verify_execution

        assert verify_execution(model).equivalent


class TestSearchStatsSatellite:
    def test_fresh_report_has_stats(self, diamond_graph):
        report = Serenity(SerenityConfig(max_states_per_step=2_000)).compile(
            diamond_graph
        )
        assert not report.from_cache
        assert report.search_stats().states_expanded > 0

    def test_cache_rebuilt_report_fails_loudly(self, tmp_path, monkeypatch):
        from repro.experiments import common
        from repro.models.suite import get_cell

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        common.clear_cache()
        spec = get_cell("swiftnet-c")
        fresh = common.compiled(spec, rewrite=False)
        assert not fresh.from_cache
        common.clear_cache()  # drop the memo; force the persistent layer
        rebuilt = common.compiled(spec, rewrite=False)
        assert rebuilt.from_cache and rebuilt.divide is None
        with pytest.raises(SchedulingError, match="schedule cache"):
            rebuilt.search_stats()
        common.clear_cache()

    def test_verify_failure_raises(self, diamond_graph, monkeypatch):
        """A pipeline whose plan diverges from the reference must not
        hand back an artifact."""

        class Lying:
            equivalent = False
            max_abs_error = 1.0

            def __bool__(self):
                return False

        monkeypatch.setattr(
            "repro.runtime.verify.verify_execution", lambda model: Lying()
        )
        pipe = CompilationPipeline("kahn", verify=True)
        with pytest.raises(ExecutionError, match="diverges"):
            pipe.compile(diamond_graph)
