"""Node and MemorySemantics invariants."""

import pytest

from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec


class TestMemorySemantics:
    def test_default_is_plain(self):
        mem = MemorySemantics()
        assert not mem.aliases
        assert mem.inplace_of is None
        assert not mem.view

    def test_inplace_aliases(self):
        assert MemorySemantics(inplace_of=0).aliases

    def test_view_aliases(self):
        assert MemorySemantics(view=True).aliases

    def test_inplace_and_view_conflict(self):
        with pytest.raises(ValueError):
            MemorySemantics(inplace_of=0, view=True)


class TestNode:
    def _node(self, **kw):
        defaults = dict(
            name="n", op="blob", inputs=("a", "b"), output=TensorSpec((2, 2))
        )
        defaults.update(kw)
        return Node(**defaults)

    def test_output_bytes(self):
        assert self._node().output_bytes == 2 * 2 * 4

    def test_inputs_coerced_to_tuple(self):
        node = self._node(inputs=["a", "b"])
        assert node.inputs == ("a", "b")

    def test_inplace_of_out_of_range(self):
        with pytest.raises(ValueError):
            self._node(memory=MemorySemantics(inplace_of=2))

    def test_inplace_of_valid(self):
        node = self._node(memory=MemorySemantics(inplace_of=1))
        assert node.memory.inplace_of == 1

    def test_replace_changes_field(self):
        node = self._node()
        new = node.replace(name="m")
        assert new.name == "m"
        assert node.name == "n"

    def test_replace_copies_attrs(self):
        node = self._node(attrs={"k": 1})
        new = node.replace()
        new.attrs["k"] = 2
        assert node.attrs["k"] == 1

    def test_str_mentions_op(self):
        assert "blob" in str(self._node())
