"""Fused composite operators.

``fused_sep_conv3x3`` is the RandWire node unit (relu is kept separate;
the depthwise + pointwise pair is fused): one output activation per
graph node, with the depthwise intermediate private to the kernel. This
is the scheduling granularity the paper uses for RandWire graphs — the
graph node *is* the unit of allocation.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops.base import (
    OpSchema,
    conv_output_hw,
    normalize_pair,
    register_op,
    require_chw,
)


def _fused_sep_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    c, h, w = require_chw(inputs[0], "fused_sep_conv3x3")
    kernel = normalize_pair(attrs.get("kernel", 3), "kernel")
    stride = normalize_pair(attrs.get("stride", 1), "stride")
    padding = attrs.get("padding", "same")
    out_channels = int(attrs.get("out_channels", c))
    if out_channels <= 0:
        raise ShapeError("fused_sep_conv3x3 out_channels must be positive")
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return TensorSpec((out_channels, oh, ow), inputs[0].dtype)


def _fused_sep_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    c = inputs[0].shape[0]
    kernel = normalize_pair(attrs.get("kernel", 3), "kernel")
    m, oh, ow = out.shape
    depthwise = c * oh * ow * kernel[0] * kernel[1]
    pointwise = m * oh * ow * c
    return depthwise + pointwise


def _fused_sep_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    c = inputs[0].shape[0]
    kernel = normalize_pair(attrs.get("kernel", 3), "kernel")
    m = out.shape[0]
    bias = m if attrs.get("use_bias", True) else 0
    return c * kernel[0] * kernel[1] + c * m + bias


register_op(
    OpSchema(
        name="fused_sep_conv3x3",
        infer_shape=_fused_sep_shape,
        macs=_fused_sep_macs,
        weights=_fused_sep_weights,
    )
)
