"""Identity graph rewriting (paper Section 3.3)."""

from repro.rewriting.patterns import Match, RewriteRule
from repro.rewriting.rewriter import (
    IdentityGraphRewriter,
    RewriteResult,
    rewrite_graph,
)
from repro.rewriting.extra_rules import (
    EXTRA_RULES,
    ConcatFlattening,
    IdentityElimination,
)
from repro.rewriting.rules import (
    DEFAULT_RULES,
    ChannelWisePartitioning,
    KernelWisePartitioning,
)

__all__ = [
    "Match",
    "RewriteRule",
    "IdentityGraphRewriter",
    "RewriteResult",
    "rewrite_graph",
    "ChannelWisePartitioning",
    "KernelWisePartitioning",
    "DEFAULT_RULES",
    "EXTRA_RULES",
    "ConcatFlattening",
    "IdentityElimination",
]
